//! Additional frontend integration tests: syntax corners, diagnostics and
//! semantic checks exercised end-to-end through `compile` + the verifier.

use spt_frontend::{compile, compile_raw, CompileError};

fn err(src: &str) -> CompileError {
    compile(src).unwrap_err()
}

#[test]
fn operator_precedence_against_reference() {
    // Evaluate a gnarly expression both in minic and natively.
    let src = "fn f(a: int, b: int) -> int {
        return a + b * 3 - a % b + (a << 2) % 7 - (a & b) + (a | 1) ^ (b >> 1);
    }";
    let module = compile(src).unwrap();
    let native =
        |a: i64, b: i64| (a + b * 3 - a % b + ((a << 2) % 7) - (a & b) + (a | 1)) ^ (b >> 1);
    for (a, b) in [(5i64, 3i64), (17, 4), (100, 9), (2, 7)] {
        let r = spt_profile::Interp::new(&module)
            .run(
                "f",
                &[spt_profile::Val::from_i64(a), spt_profile::Val::from_i64(b)],
                &mut spt_profile::NoProfiler,
            )
            .unwrap();
        assert_eq!(r.ret.unwrap().as_i64(), native(a, b), "a={a}, b={b}");
    }
}

#[test]
fn unary_and_logical_semantics() {
    let src = "fn f(x: int) -> int {
        let a = 0;
        if (!(x > 3) && ~x < 0) { a = 1; }
        if (x == 2 || x == 4) { a = a + 2; }
        return a - -x;
    }";
    let module = compile(src).unwrap();
    let native = |x: i64| {
        let mut a = 0i64;
        if (x <= 3) && !x < 0 {
            a = 1;
        }
        if x == 2 || x == 4 {
            a += 2;
        }
        a - -x
    };
    for x in [0i64, 2, 3, 4, 10] {
        let r = spt_profile::Interp::new(&module)
            .run(
                "f",
                &[spt_profile::Val::from_i64(x)],
                &mut spt_profile::NoProfiler,
            )
            .unwrap();
        assert_eq!(r.ret.unwrap().as_i64(), native(x), "x={x}");
    }
}

#[test]
fn float_pipeline_end_to_end() {
    let src = "
        global acc: float = 0.5;
        fn f(n: int) -> float {
            let s = acc;
            for (let i = 0; i < n; i = i + 1) {
                s = s + sqrt(float(i)) * 0.25 + fabs(0.0 - float(i % 3));
            }
            acc = s;
            return s;
        }
    ";
    let module = compile(src).unwrap();
    let r = spt_profile::Interp::new(&module)
        .run(
            "f",
            &[spt_profile::Val::from_i64(10)],
            &mut spt_profile::NoProfiler,
        )
        .unwrap();
    let mut s = 0.5f64;
    for i in 0..10i64 {
        s += (i as f64).sqrt() * 0.25 + (0.0 - (i % 3) as f64).abs();
    }
    assert!((r.ret.unwrap().as_f64() - s).abs() < 1e-12);
}

#[test]
fn diagnostics_carry_positions() {
    let e = err("fn f() -> int {\n    return nope;\n}");
    assert_eq!(e.line, 2);
    assert!(e.col > 0);

    let e = err("fn f( {}");
    assert_eq!(e.line, 1);
}

#[test]
fn duplicate_definitions_rejected() {
    assert!(err("global x: int; global x: int;")
        .message
        .contains("duplicate"));
    assert!(err("fn f() {} fn f() {}").message.contains("duplicate"));
    assert!(err("fn abs(x: int) -> int { return x; }")
        .message
        .contains("reserved"));
}

#[test]
fn array_size_validation() {
    assert!(compile("global a[0]: int;").is_err());
    assert!(compile("global a[1]: int;").is_ok());
}

#[test]
fn deeply_nested_control_flow_compiles_and_runs() {
    let src = "
        fn f(n: int) -> int {
            let s = 0;
            for (let i = 0; i < n; i = i + 1) {
                if (i % 2 == 0) {
                    if (i % 3 == 0) {
                        if (i % 5 == 0) { s = s + 100; } else { s = s + 10; }
                    } else {
                        while (s % 7 != 0) { s = s + 1; }
                    }
                } else {
                    s = s + i;
                }
            }
            return s;
        }
    ";
    let module = compile(src).unwrap();
    let native = |n: i64| {
        let mut s = 0i64;
        for i in 0..n {
            if i % 2 == 0 {
                if i % 3 == 0 {
                    if i % 5 == 0 {
                        s += 100;
                    } else {
                        s += 10;
                    }
                } else {
                    while s % 7 != 0 {
                        s += 1;
                    }
                }
            } else {
                s += i;
            }
        }
        s
    };
    for n in [0i64, 1, 7, 30] {
        let r = spt_profile::Interp::new(&module)
            .run(
                "f",
                &[spt_profile::Val::from_i64(n)],
                &mut spt_profile::NoProfiler,
            )
            .unwrap();
        assert_eq!(r.ret.unwrap().as_i64(), native(n), "n={n}");
    }
}

#[test]
fn shadowing_in_nested_scopes() {
    let src = "
        fn f() -> int {
            let x = 1;
            if (x == 1) {
                let x = 10;
                if (x == 10) {
                    let x = 100;
                    x = x + 1;
                }
                x = x + 2;
            }
            return x;
        }
    ";
    let module = compile(src).unwrap();
    let r = spt_profile::Interp::new(&module)
        .run("f", &[], &mut spt_profile::NoProfiler)
        .unwrap();
    // Inner shadows never touch the outer x.
    assert_eq!(r.ret.unwrap().as_i64(), 1);
}

#[test]
fn compile_raw_keeps_var_slots() {
    let m = compile_raw("fn f() -> int { let x = 1; x = x + 1; return x; }").unwrap();
    assert!(
        !spt_ir::ssa::is_ssa(&m.funcs[0]),
        "raw form keeps VarLoad/VarStore"
    );
    let m2 = compile("fn f() -> int { let x = 1; x = x + 1; return x; }").unwrap();
    assert!(spt_ir::ssa::is_ssa(&m2.funcs[0]));
}

#[test]
fn comments_everywhere() {
    let src = "
        // leading comment
        global /* inline */ g: int; // trailing
        fn f(/* args? none */) -> int {
            /* multi
               line */
            return g; // done
        }
    ";
    assert!(compile(src).is_ok());
}

#[test]
fn for_loop_scoping() {
    // The induction variable is scoped to the loop; reusing the name after
    // is a fresh variable (here: error, since it was never declared again).
    let e = err("fn f() -> int { for (let i = 0; i < 3; i = i + 1) {} return i; }");
    assert!(e.message.contains("unknown name"), "{e}");
}

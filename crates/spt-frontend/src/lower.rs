//! Lowering from the `minic` AST to the SPT IR.
//!
//! Locals become frontend variable slots (`VarLoad`/`VarStore`), later
//! promoted to SSA by [`spt_ir::ssa::mem2reg`]. Globals become memory
//! regions; scalar globals are size-1 regions. Short-circuit `&&`/`||`
//! expand into control flow through a temporary slot.

use crate::ast::*;
use crate::CompileError;
use spt_ir::{
    BinOp, BlockId, CmpOp, FuncBuilder, FuncId, Module, Operand, RegionId, Ty, UnOp, VarId,
};
use std::collections::HashMap;

/// Lowers a parsed [`Program`] into an IR [`Module`] (pre-SSA).
///
/// # Errors
///
/// Returns a [`CompileError`] on type errors, unknown names, duplicate
/// definitions or call-arity mismatches.
pub fn lower(program: &Program) -> Result<Module, CompileError> {
    let mut module = Module::new();

    // Globals.
    let mut globals: HashMap<String, (RegionId, Ty, usize)> = HashMap::new();
    for g in &program.globals {
        if globals.contains_key(&g.name) {
            return Err(CompileError::new(
                format!("duplicate global `{}`", g.name),
                g.line,
                1,
            ));
        }
        let ty = conv_ty(g.ty);
        let region = module.add_global(g.name.clone(), g.size, ty);
        if let Some(v) = g.init {
            let bits = match ty {
                Ty::I64 => (v as i64) as u64,
                Ty::F64 => v.to_bits(),
            };
            module.globals[region.index()].init = Some(vec![bits]);
        }
        globals.insert(g.name.clone(), (region, ty, g.size));
    }

    // Signatures (two-pass for forward references).
    let mut sigs: HashMap<String, (FuncId, Vec<Ty>, Option<Ty>)> = HashMap::new();
    for (i, f) in program.funcs.iter().enumerate() {
        if sigs.contains_key(&f.name) || INTRINSICS.contains(&f.name.as_str()) {
            return Err(CompileError::new(
                format!("duplicate or reserved function name `{}`", f.name),
                f.line,
                1,
            ));
        }
        let params: Vec<Ty> = f.params.iter().map(|(_, t)| conv_ty(*t)).collect();
        sigs.insert(f.name.clone(), (FuncId::new(i), params, f.ret.map(conv_ty)));
    }

    // Bodies.
    for f in &program.funcs {
        let func = lower_func(f, &globals, &sigs)?;
        module.add_func(func);
    }
    Ok(module)
}

const INTRINSICS: [&str; 7] = ["abs", "fabs", "sqrt", "min", "max", "int", "float"];

fn conv_ty(t: TypeAnn) -> Ty {
    match t {
        TypeAnn::Int => Ty::I64,
        TypeAnn::Float => Ty::F64,
    }
}

struct LoopCtx {
    continue_target: BlockId,
    break_target: BlockId,
}

struct Lowerer<'a> {
    b: FuncBuilder,
    scopes: Vec<HashMap<String, (VarId, Ty)>>,
    globals: &'a HashMap<String, (RegionId, Ty, usize)>,
    sigs: &'a HashMap<String, (FuncId, Vec<Ty>, Option<Ty>)>,
    loop_stack: Vec<LoopCtx>,
    ret_ty: Option<Ty>,
    terminated: bool,
}

fn lower_func(
    f: &FuncDef,
    globals: &HashMap<String, (RegionId, Ty, usize)>,
    sigs: &HashMap<String, (FuncId, Vec<Ty>, Option<Ty>)>,
) -> Result<spt_ir::Function, CompileError> {
    let params: Vec<(String, Ty)> = f
        .params
        .iter()
        .map(|(n, t)| (n.clone(), conv_ty(*t)))
        .collect();
    let ret_ty = f.ret.map(conv_ty);
    let mut lw = Lowerer {
        b: FuncBuilder::new(f.name.clone(), params.clone(), ret_ty),
        scopes: vec![HashMap::new()],
        globals,
        sigs,
        loop_stack: Vec::new(),
        ret_ty,
        terminated: false,
    };

    // Copy parameters into mutable slots so they can be reassigned.
    for (i, (name, ty)) in params.iter().enumerate() {
        let slot = lw.b.declare_var(*ty);
        let val = lw.b.param(i);
        lw.b.var_store(slot, val);
        lw.scopes[0].insert(name.clone(), (slot, *ty));
    }

    lw.stmts(&f.body)?;
    if !lw.terminated {
        match ret_ty {
            None => {
                lw.b.ret(None);
            }
            Some(Ty::I64) => {
                lw.b.ret(Some(Operand::const_i64(0)));
            }
            Some(Ty::F64) => {
                lw.b.ret(Some(Operand::const_f64(0.0)));
            }
        }
    }
    Ok(lw.b.finish())
}

impl<'a> Lowerer<'a> {
    fn err(&self, msg: impl Into<String>, line: usize, col: usize) -> CompileError {
        CompileError::new(msg, line, col)
    }

    fn lookup_var(&self, name: &str) -> Option<(VarId, Ty)> {
        for scope in self.scopes.iter().rev() {
            if let Some(&entry) = scope.get(name) {
                return Some(entry);
            }
        }
        None
    }

    /// Starts a fresh block after a terminator so that subsequent (dead)
    /// statements have somewhere to go.
    fn after_terminator(&mut self) {
        let dead = self.b.add_block();
        self.b.switch_to(dead);
        self.terminated = true;
    }

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new());
        for s in body {
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match &s.kind {
            StmtKind::Let(name, ann, e) => {
                let (val, ty) = self.expr(e)?;
                let want = ann.map(conv_ty).unwrap_or(ty);
                let val = self.coerce(val, ty, want, s.line, s.col)?;
                let slot = self.b.declare_var(want);
                self.b.var_store(slot, val);
                match self.scopes.last_mut() {
                    Some(scope) => scope.insert(name.clone(), (slot, want)),
                    // Unreachable: `stmt` is only called inside `block`,
                    // which pushes a scope around its statements.
                    None => {
                        return Err(self.err(
                            format!("`let {name}` outside any scope"),
                            s.line,
                            s.col,
                        ))
                    }
                };
                self.terminated = false;
            }
            StmtKind::Assign(name, e) => {
                let (val, ty) = self.expr(e)?;
                if let Some((slot, want)) = self.lookup_var(name) {
                    let val = self.coerce(val, ty, want, s.line, s.col)?;
                    self.b.var_store(slot, val);
                } else if let Some(&(region, want, _)) = self.globals.get(name) {
                    let val = self.coerce(val, ty, want, s.line, s.col)?;
                    let base = self.b.region_base(region);
                    self.b.store(base, val, region);
                } else {
                    return Err(self.err(format!("unknown variable `{name}`"), s.line, s.col));
                }
                self.terminated = false;
            }
            StmtKind::StoreIndex(name, idx, e) => {
                let Some(&(region, want, _size)) = self.globals.get(name) else {
                    return Err(self.err(format!("unknown array `{name}`"), s.line, s.col));
                };
                let (iv, ity) = self.expr(idx)?;
                if ity != Ty::I64 {
                    return Err(self.err("array index must be int", s.line, s.col));
                }
                let (val, ty) = self.expr(e)?;
                let val = self.coerce(val, ty, want, s.line, s.col)?;
                let base = self.b.region_base(region);
                let addr = self.b.binary(BinOp::Add, base, iv);
                self.b.store(addr, val, region);
                self.terminated = false;
            }
            StmtKind::If(cond, then, els) => {
                let c = self.cond_value(cond)?;
                let then_bb = self.b.add_block();
                let else_bb = self.b.add_block();
                let join = self.b.add_block();
                self.b.branch(c, then_bb, else_bb);

                self.b.switch_to(then_bb);
                self.terminated = false;
                self.stmts(then)?;
                if !self.terminated {
                    self.b.jump(join);
                }

                self.b.switch_to(else_bb);
                self.terminated = false;
                self.stmts(els)?;
                if !self.terminated {
                    self.b.jump(join);
                }

                self.b.switch_to(join);
                self.terminated = false;
            }
            StmtKind::While(cond, body) => {
                let header = self.b.add_block();
                let body_bb = self.b.add_block();
                let exit = self.b.add_block();
                self.b.jump(header);

                self.b.switch_to(header);
                self.terminated = false;
                let c = self.cond_value(cond)?;
                self.b.branch(c, body_bb, exit);

                self.b.switch_to(body_bb);
                self.loop_stack.push(LoopCtx {
                    continue_target: header,
                    break_target: exit,
                });
                self.terminated = false;
                self.stmts(body)?;
                self.loop_stack.pop();
                if !self.terminated {
                    self.b.jump(header);
                }

                self.b.switch_to(exit);
                self.terminated = false;
            }
            StmtKind::For(init, cond, step, body) => {
                // Scope for the induction variable.
                self.scopes.push(HashMap::new());
                self.stmt(init)?;
                let header = self.b.add_block();
                let body_bb = self.b.add_block();
                let step_bb = self.b.add_block();
                let exit = self.b.add_block();
                self.b.jump(header);

                self.b.switch_to(header);
                self.terminated = false;
                let c = self.cond_value(cond)?;
                self.b.branch(c, body_bb, exit);

                self.b.switch_to(body_bb);
                self.loop_stack.push(LoopCtx {
                    continue_target: step_bb,
                    break_target: exit,
                });
                self.terminated = false;
                self.stmts(body)?;
                self.loop_stack.pop();
                if !self.terminated {
                    self.b.jump(step_bb);
                }

                self.b.switch_to(step_bb);
                self.terminated = false;
                self.stmt(step)?;
                if !self.terminated {
                    self.b.jump(header);
                }

                self.b.switch_to(exit);
                self.terminated = false;
                self.scopes.pop();
            }
            StmtKind::Return(e) => {
                match (e, self.ret_ty) {
                    (Some(e), Some(want)) => {
                        let (val, ty) = self.expr(e)?;
                        let val = self.coerce(val, ty, want, s.line, s.col)?;
                        self.b.ret(Some(val));
                    }
                    (None, None) => {
                        self.b.ret(None);
                    }
                    (Some(_), None) => {
                        return Err(self.err(
                            "returning a value from a void function",
                            s.line,
                            s.col,
                        ))
                    }
                    (None, Some(_)) => return Err(self.err("missing return value", s.line, s.col)),
                }
                self.after_terminator();
            }
            StmtKind::Break => {
                let Some(ctx) = self.loop_stack.last() else {
                    return Err(self.err("`break` outside loop", s.line, s.col));
                };
                let target = ctx.break_target;
                self.b.jump(target);
                self.after_terminator();
            }
            StmtKind::Continue => {
                let Some(ctx) = self.loop_stack.last() else {
                    return Err(self.err("`continue` outside loop", s.line, s.col));
                };
                let target = ctx.continue_target;
                self.b.jump(target);
                self.after_terminator();
            }
            StmtKind::ExprStmt(e) => {
                // Void calls are only legal as statements.
                if let ExprKind::Call(name, args) = &e.kind {
                    if !INTRINSICS.contains(&name.as_str()) {
                        self.user_call(name, args, e.line, e.col)?;
                        self.terminated = false;
                        return Ok(());
                    }
                }
                let _ = self.expr(e)?;
                self.terminated = false;
            }
        }
        Ok(())
    }

    /// Lowers an expression used as a branch condition into an `i64` value.
    fn cond_value(&mut self, e: &Expr) -> Result<Operand, CompileError> {
        let (v, ty) = self.expr(e)?;
        match ty {
            Ty::I64 => Ok(v),
            Ty::F64 => Ok(self.b.cmp(CmpOp::Ne, Ty::F64, v, Operand::const_f64(0.0))),
        }
    }

    fn coerce(
        &mut self,
        val: Operand,
        from: Ty,
        to: Ty,
        line: usize,
        col: usize,
    ) -> Result<Operand, CompileError> {
        match (from, to) {
            (a, b) if a == b => Ok(val),
            (Ty::I64, Ty::F64) => Ok(self.b.unary(UnOp::IntToFloat, val)),
            (Ty::F64, Ty::I64) => {
                Err(self.err("implicit float->int conversion; use `int(..)`", line, col))
            }
            _ => unreachable!(),
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<(Operand, Ty), CompileError> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok((Operand::const_i64(*v), Ty::I64)),
            ExprKind::FloatLit(v) => Ok((Operand::const_f64(*v), Ty::F64)),
            ExprKind::Name(name) => {
                if let Some((slot, ty)) = self.lookup_var(name) {
                    Ok((self.b.var_load(slot, ty), ty))
                } else if let Some(&(region, ty, _)) = self.globals.get(name) {
                    let base = self.b.region_base(region);
                    Ok((self.b.load_ty(base, region, ty), ty))
                } else {
                    Err(self.err(format!("unknown name `{name}`"), e.line, e.col))
                }
            }
            ExprKind::Index(name, idx) => {
                let Some(&(region, ty, _)) = self.globals.get(name) else {
                    return Err(self.err(format!("unknown array `{name}`"), e.line, e.col));
                };
                let (iv, ity) = self.expr(idx)?;
                if ity != Ty::I64 {
                    return Err(self.err("array index must be int", e.line, e.col));
                }
                let base = self.b.region_base(region);
                let addr = self.b.binary(BinOp::Add, base, iv);
                Ok((self.b.load_ty(addr, region, ty), ty))
            }
            ExprKind::Unary(op, inner) => {
                let (v, ty) = self.expr(inner)?;
                match op {
                    AstUnOp::Neg => Ok((self.b.unary(UnOp::Neg, v), ty)),
                    AstUnOp::Not => {
                        if ty != Ty::I64 {
                            return Err(self.err("`~` requires int", e.line, e.col));
                        }
                        Ok((self.b.unary(UnOp::Not, v), Ty::I64))
                    }
                    AstUnOp::LogNot => {
                        let c = match ty {
                            Ty::I64 => self.b.cmp(CmpOp::Eq, Ty::I64, v, Operand::const_i64(0)),
                            Ty::F64 => self.b.cmp(CmpOp::Eq, Ty::F64, v, Operand::const_f64(0.0)),
                        };
                        Ok((c, Ty::I64))
                    }
                }
            }
            ExprKind::Binary(op, lhs, rhs) => self.binary(*op, lhs, rhs, e.line, e.col),
            ExprKind::Call(name, args) => self.call(name, args, e.line, e.col),
        }
    }

    fn binary(
        &mut self,
        op: AstBinOp,
        lhs: &Expr,
        rhs: &Expr,
        line: usize,
        col: usize,
    ) -> Result<(Operand, Ty), CompileError> {
        // Short-circuit forms expand into control flow through a slot.
        if matches!(op, AstBinOp::LogAnd | AstBinOp::LogOr) {
            let slot = self.b.declare_var(Ty::I64);
            let lv = self.cond_from(lhs)?;
            self.b.var_store(slot, lv);
            let rhs_bb = self.b.add_block();
            let join = self.b.add_block();
            match op {
                AstBinOp::LogAnd => self.b.branch(lv, rhs_bb, join),
                AstBinOp::LogOr => self.b.branch(lv, join, rhs_bb),
                _ => unreachable!(),
            };
            self.b.switch_to(rhs_bb);
            let rv = self.cond_from(rhs)?;
            self.b.var_store(slot, rv);
            self.b.jump(join);
            self.b.switch_to(join);
            let out = self.b.var_load(slot, Ty::I64);
            return Ok((out, Ty::I64));
        }

        let (mut lv, lty) = self.expr(lhs)?;
        let (mut rv, rty) = self.expr(rhs)?;
        // Promote int to float when mixing.
        let ty = if lty == rty {
            lty
        } else {
            if lty == Ty::I64 {
                lv = self.b.unary(UnOp::IntToFloat, lv);
            } else {
                rv = self.b.unary(UnOp::IntToFloat, rv);
            }
            Ty::F64
        };

        let cmp = |o: CmpOp| -> Option<CmpOp> { Some(o) };
        if let Some(c) = match op {
            AstBinOp::Eq => cmp(CmpOp::Eq),
            AstBinOp::Ne => cmp(CmpOp::Ne),
            AstBinOp::Lt => cmp(CmpOp::Lt),
            AstBinOp::Le => cmp(CmpOp::Le),
            AstBinOp::Gt => cmp(CmpOp::Gt),
            AstBinOp::Ge => cmp(CmpOp::Ge),
            _ => None,
        } {
            return Ok((self.b.cmp(c, ty, lv, rv), Ty::I64));
        }

        let bop = match op {
            AstBinOp::Add => BinOp::Add,
            AstBinOp::Sub => BinOp::Sub,
            AstBinOp::Mul => BinOp::Mul,
            AstBinOp::Div => BinOp::Div,
            AstBinOp::Rem => BinOp::Rem,
            AstBinOp::And => BinOp::And,
            AstBinOp::Or => BinOp::Or,
            AstBinOp::Xor => BinOp::Xor,
            AstBinOp::Shl => BinOp::Shl,
            AstBinOp::Shr => BinOp::Shr,
            _ => unreachable!("comparison handled above"),
        };
        if !bop.supports(ty) {
            return Err(self.err(format!("operator `{bop}` requires int operands"), line, col));
        }
        Ok((self.b.binary_ty(bop, ty, lv, rv), ty))
    }

    /// Evaluates an expression as a boolean `i64` (non-zero = true).
    fn cond_from(&mut self, e: &Expr) -> Result<Operand, CompileError> {
        self.cond_value(e)
    }

    fn call(
        &mut self,
        name: &str,
        args: &[Expr],
        line: usize,
        col: usize,
    ) -> Result<(Operand, Ty), CompileError> {
        match name {
            "abs" => {
                let (v, ty) = self.unary_arg(args, "abs", line, col)?;
                Ok((self.b.unary(UnOp::Abs, v), ty))
            }
            "fabs" => {
                let (v, ty) = self.unary_arg(args, "fabs", line, col)?;
                let v = self.coerce(v, ty, Ty::F64, line, col)?;
                Ok((self.b.unary(UnOp::Abs, v), Ty::F64))
            }
            "sqrt" => {
                let (v, ty) = self.unary_arg(args, "sqrt", line, col)?;
                let v = self.coerce(v, ty, Ty::F64, line, col)?;
                Ok((self.b.unary(UnOp::Sqrt, v), Ty::F64))
            }
            "int" => {
                let (v, ty) = self.unary_arg(args, "int", line, col)?;
                match ty {
                    Ty::I64 => Ok((v, Ty::I64)),
                    Ty::F64 => Ok((self.b.unary(UnOp::FloatToInt, v), Ty::I64)),
                }
            }
            "float" => {
                let (v, ty) = self.unary_arg(args, "float", line, col)?;
                match ty {
                    Ty::F64 => Ok((v, Ty::F64)),
                    Ty::I64 => Ok((self.b.unary(UnOp::IntToFloat, v), Ty::F64)),
                }
            }
            "min" | "max" => {
                if args.len() != 2 {
                    return Err(self.err(format!("`{name}` takes 2 arguments"), line, col));
                }
                let (mut a, aty) = self.expr(&args[0])?;
                let (mut b, bty) = self.expr(&args[1])?;
                let ty = if aty == bty {
                    aty
                } else {
                    if aty == Ty::I64 {
                        a = self.b.unary(UnOp::IntToFloat, a);
                    } else {
                        b = self.b.unary(UnOp::IntToFloat, b);
                    }
                    Ty::F64
                };
                let op = if name == "min" {
                    BinOp::Min
                } else {
                    BinOp::Max
                };
                Ok((self.b.binary_ty(op, ty, a, b), ty))
            }
            _ => {
                let (val, ty) = self.user_call(name, args, line, col)?;
                match (val, ty) {
                    (Some(v), Some(t)) => Ok((v, t)),
                    _ => Err(self.err(
                        format!("void function `{name}` used in expression"),
                        line,
                        col,
                    )),
                }
            }
        }
    }

    fn unary_arg(
        &mut self,
        args: &[Expr],
        name: &str,
        line: usize,
        col: usize,
    ) -> Result<(Operand, Ty), CompileError> {
        if args.len() != 1 {
            return Err(self.err(format!("`{name}` takes 1 argument"), line, col));
        }
        self.expr(&args[0])
    }

    fn user_call(
        &mut self,
        name: &str,
        args: &[Expr],
        line: usize,
        col: usize,
    ) -> Result<(Option<Operand>, Option<Ty>), CompileError> {
        let Some((id, param_tys, ret_ty)) = self.sigs.get(name).cloned() else {
            return Err(self.err(format!("unknown function `{name}`"), line, col));
        };
        if args.len() != param_tys.len() {
            return Err(self.err(
                format!(
                    "`{name}` takes {} arguments, {} given",
                    param_tys.len(),
                    args.len()
                ),
                line,
                col,
            ));
        }
        let mut lowered = Vec::with_capacity(args.len());
        for (arg, want) in args.iter().zip(param_tys.iter()) {
            let (v, ty) = self.expr(arg)?;
            lowered.push(self.coerce(v, ty, *want, line, col)?);
        }
        let val = self.b.call(id, lowered, ret_ty);
        Ok((val, ret_ty))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, compile_raw};

    #[test]
    fn lowers_minimal_function() {
        let m = compile_raw("fn f() -> int { return 1; }").unwrap();
        assert_eq!(m.funcs.len(), 1);
        assert_eq!(m.funcs[0].ret_ty, Some(Ty::I64));
    }

    #[test]
    fn full_pipeline_verifies() {
        let src = "
            global acc: float;
            global data[64]: float;
            fn kernel(n: int) -> float {
                let i = 0;
                let s = 0.0;
                while (i < n) {
                    s = s + fabs(data[i]);
                    i = i + 1;
                }
                acc = s;
                return s;
            }
        ";
        let m = compile(src).unwrap();
        let f = &m.funcs[0];
        assert!(spt_ir::ssa::is_ssa(f));
        assert!(m.global_by_name("acc").is_some());
    }

    #[test]
    fn global_scalar_init() {
        let m = compile_raw("global x: int = 5; global y: float = 2.5;").unwrap();
        assert_eq!(m.globals[0].init, Some(vec![5u64]));
        assert_eq!(m.globals[1].init, Some(vec![2.5f64.to_bits()]));
    }

    #[test]
    fn forward_references_allowed() {
        let src = "fn a() -> int { return b(); } fn b() -> int { return 7; }";
        assert!(compile(src).is_ok());
    }

    #[test]
    fn rejects_unknown_name() {
        let e = compile("fn f() -> int { return nope; }").unwrap_err();
        assert!(e.message.contains("unknown name"));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let e = compile("fn g(x: int) {} fn f() { g(); }").unwrap_err();
        assert!(e.message.contains("arguments"));
    }

    #[test]
    fn rejects_implicit_narrowing() {
        let e = compile("fn f() -> int { let x = 1.5; return x; }").unwrap_err();
        assert!(e.message.contains("float->int"));
    }

    #[test]
    fn promotes_int_to_float() {
        let m = compile("fn f() -> float { return 1 + 2.5; }").unwrap();
        assert_eq!(m.funcs[0].ret_ty, Some(Ty::F64));
    }

    #[test]
    fn rejects_bitwise_on_float() {
        let e = compile("fn f() -> float { return 1.0 & 2.0; }").unwrap_err();
        assert!(e.message.contains("requires int"));
    }

    #[test]
    fn break_continue_in_loops() {
        let src = "
            fn f(n: int) -> int {
                let s = 0;
                for (let i = 0; i < n; i = i + 1) {
                    if (i == 3) { continue; }
                    if (i == 7) { break; }
                    s = s + i;
                }
                return s;
            }
        ";
        assert!(compile(src).is_ok());
    }

    #[test]
    fn rejects_break_outside_loop() {
        let e = compile("fn f() { break; }").unwrap_err();
        assert!(e.message.contains("outside loop"));
    }

    #[test]
    fn short_circuit_produces_control_flow() {
        let m =
            compile("fn f(a: int, b: int) -> int { if (a > 0 && b > 0) { return 1; } return 0; }")
                .unwrap();
        // More than the 4 blocks a plain if would create.
        let reachable_blocks = {
            let cfg = spt_ir::Cfg::compute(&m.funcs[0]);
            cfg.rpo.len()
        };
        assert!(reachable_blocks >= 4);
    }

    #[test]
    fn dead_code_after_return_is_tolerated() {
        let src = "fn f() -> int { return 1; return 2; }";
        assert!(compile(src).is_ok());
    }

    #[test]
    fn void_call_as_statement_only() {
        let e = compile("fn g() {} fn f() -> int { return g(); }").unwrap_err();
        assert!(e.message.contains("void"));
    }

    #[test]
    fn intrinsics_typecheck() {
        let m = compile(
            "fn f(x: float, y: int) -> float { return sqrt(fabs(x)) + float(abs(y)) + min(x, 1.0) + float(max(y, 2)); }",
        )
        .unwrap();
        assert_eq!(m.funcs.len(), 1);
    }

    #[test]
    fn global_array_round_trip_shape() {
        let src = "
            global a[8]: int;
            fn f() {
                a[0] = 1;
                a[1] = a[0] + 1;
            }
        ";
        let m = compile(src).unwrap();
        // One region, loads/stores attributed to it.
        assert_eq!(m.globals.len(), 1);
        let f = &m.funcs[0];
        let mut stores = 0;
        for bb in f.block_ids() {
            for &i in &f.block(bb).insts {
                if let spt_ir::InstKind::Store { region, .. } = f.inst(i).kind {
                    assert_eq!(region, RegionId::new(0));
                    stores += 1;
                }
            }
        }
        assert_eq!(stores, 2);
    }
}

//! `minic` frontend: a small C-like language compiled to the SPT IR.
//!
//! The PLDI 2004 paper implements its framework inside ORC's scalar
//! optimizer, consuming C programs. This crate plays the role of ORC's
//! frontend: it lexes, parses, type-checks and lowers `minic` — a C subset
//! with 64-bit integers/floats, global arrays, `while`/`for`/`if`, and
//! function calls — into the SSA IR of [`spt_ir`].
//!
//! # Language sketch
//!
//! ```text
//! global cost: float;
//! global error[4096]: float;
//!
//! fn kernel(n: int) -> float {
//!     let i = 0;
//!     let acc = 0.0;
//!     while (i < n) {
//!         acc = acc + fabs(error[i]);
//!         i = i + 1;
//!     }
//!     return acc;
//! }
//! ```
//!
//! # Example
//!
//! ```
//! let src = "fn main() -> int { let x = 2; return x * 21; }";
//! let module = spt_frontend::compile(src)?;
//! assert!(module.func_by_name("main").is_some());
//! # Ok::<(), spt_frontend::CompileError>(())
//! ```

// The frontend faces arbitrary (possibly hostile) source text: every
// failure must surface as a `CompileError`, never a panic. Production code
// therefore may not unwrap/expect; tests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

use spt_ir::Module;
use std::fmt;

/// A frontend diagnostic with source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// Human-readable message.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
}

impl CompileError {
    pub(crate) fn new(message: impl Into<String>, line: usize, col: usize) -> Self {
        CompileError {
            message: message.into(),
            line,
            col,
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Compiles `minic` source into an SSA-form IR [`Module`].
///
/// The returned module has been through SSA construction and the standard
/// cleanup pipeline, and passes the IR verifier.
///
/// # Errors
///
/// Returns a [`CompileError`] on any lexical, syntactic or type error.
pub fn compile(source: &str) -> Result<Module, CompileError> {
    let tokens = lexer::lex(source)?;
    let program = parser::parse(&tokens)?;
    let mut module = lower::lower(&program)?;
    for func in &mut module.funcs {
        spt_ir::ssa::mem2reg(func);
        spt_ir::passes::cleanup(func);
        spt_ir::passes::loop_simplify(func);
        spt_ir::passes::cleanup(func);
        spt_ir::passes::loop_simplify(func);
    }
    spt_ir::verify::verify_module(&module).map_err(|e| CompileError::new(e.to_string(), 0, 0))?;
    Ok(module)
}

/// Compiles without running SSA construction or cleanup; useful for tests
/// that want to observe the raw lowered IR.
///
/// # Errors
///
/// Returns a [`CompileError`] on any lexical, syntactic or type error.
pub fn compile_raw(source: &str) -> Result<Module, CompileError> {
    let tokens = lexer::lex(source)?;
    let program = parser::parse(&tokens)?;
    lower::lower(&program)
}

//! Lexer for `minic`.

use crate::CompileError;
use std::fmt;

/// A token kind with payload.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Identifier or keyword candidate.
    Ident(String),
    /// `fn`
    Fn,
    /// `global`
    Global,
    /// `let`
    Let,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `int`
    KwInt,
    /// `float`
    KwFloat,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `->`
    Arrow,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Ident(s) => write!(f, "{s}"),
            other => write!(f, "{}", other.symbol()),
        }
    }
}

impl Tok {
    fn symbol(&self) -> &'static str {
        match self {
            Tok::Fn => "fn",
            Tok::Global => "global",
            Tok::Let => "let",
            Tok::If => "if",
            Tok::Else => "else",
            Tok::While => "while",
            Tok::For => "for",
            Tok::Return => "return",
            Tok::Break => "break",
            Tok::Continue => "continue",
            Tok::KwInt => "int",
            Tok::KwFloat => "float",
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::LBracket => "[",
            Tok::RBracket => "]",
            Tok::Comma => ",",
            Tok::Semi => ";",
            Tok::Colon => ":",
            Tok::Arrow => "->",
            Tok::Assign => "=",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Star => "*",
            Tok::Slash => "/",
            Tok::Percent => "%",
            Tok::Amp => "&",
            Tok::Pipe => "|",
            Tok::Caret => "^",
            Tok::Tilde => "~",
            Tok::Shl => "<<",
            Tok::Shr => ">>",
            Tok::EqEq => "==",
            Tok::NotEq => "!=",
            Tok::Lt => "<",
            Tok::Le => "<=",
            Tok::Gt => ">",
            Tok::Ge => ">=",
            Tok::AndAnd => "&&",
            Tok::OrOr => "||",
            Tok::Bang => "!",
            Tok::Int(_) | Tok::Float(_) | Tok::Ident(_) => "<lit>",
            Tok::Eof => "<eof>",
        }
    }
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Tokenizes `source`.
///
/// # Errors
///
/// Returns a [`CompileError`] on unterminated comments, malformed numbers or
/// unexpected characters.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! push {
        ($tok:expr, $l:expr, $c:expr) => {
            tokens.push(Token {
                tok: $tok,
                line: $l,
                col: $c,
            })
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let (tl, tc) = (line, col);
        let advance = |n: usize, i: &mut usize, line: &mut usize, col: &mut usize| {
            for k in 0..n {
                if chars[*i + k] == '\n' {
                    *line += 1;
                    *col = 1;
                } else {
                    *col += 1;
                }
            }
            *i += n;
        };

        match c {
            ' ' | '\t' | '\r' | '\n' => advance(1, &mut i, &mut line, &mut col),
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    advance(1, &mut i, &mut line, &mut col);
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                advance(2, &mut i, &mut line, &mut col);
                let mut closed = false;
                while i + 1 < chars.len() {
                    if chars[i] == '*' && chars[i + 1] == '/' {
                        advance(2, &mut i, &mut line, &mut col);
                        closed = true;
                        break;
                    }
                    advance(1, &mut i, &mut line, &mut col);
                }
                if !closed {
                    return Err(CompileError::new("unterminated block comment", tl, tc));
                }
            }
            '0'..='9' => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    advance(1, &mut i, &mut line, &mut col);
                }
                let is_float =
                    i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit();
                if is_float {
                    advance(1, &mut i, &mut line, &mut col);
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        advance(1, &mut i, &mut line, &mut col);
                    }
                    let text: String = chars[start..i].iter().collect();
                    let v: f64 = text
                        .parse()
                        .map_err(|_| CompileError::new("malformed float literal", tl, tc))?;
                    push!(Tok::Float(v), tl, tc);
                } else if i < chars.len() && chars[i] == '.' {
                    // `1.` style float
                    advance(1, &mut i, &mut line, &mut col);
                    let text: String = chars[start..i - 1].iter().collect();
                    let v: f64 = text
                        .parse()
                        .map_err(|_| CompileError::new("malformed float literal", tl, tc))?;
                    push!(Tok::Float(v), tl, tc);
                } else {
                    let text: String = chars[start..i].iter().collect();
                    let v: i64 = text
                        .parse()
                        .map_err(|_| CompileError::new("integer literal overflow", tl, tc))?;
                    push!(Tok::Int(v), tl, tc);
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    advance(1, &mut i, &mut line, &mut col);
                }
                let text: String = chars[start..i].iter().collect();
                let tok = match text.as_str() {
                    "fn" => Tok::Fn,
                    "global" => Tok::Global,
                    "let" => Tok::Let,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "for" => Tok::For,
                    "return" => Tok::Return,
                    "break" => Tok::Break,
                    "continue" => Tok::Continue,
                    "int" => Tok::KwInt,
                    "float" => Tok::KwFloat,
                    _ => Tok::Ident(text),
                };
                push!(tok, tl, tc);
            }
            _ => {
                let two: Option<Tok> = if i + 1 < chars.len() {
                    match (c, chars[i + 1]) {
                        ('-', '>') => Some(Tok::Arrow),
                        ('=', '=') => Some(Tok::EqEq),
                        ('!', '=') => Some(Tok::NotEq),
                        ('<', '=') => Some(Tok::Le),
                        ('>', '=') => Some(Tok::Ge),
                        ('<', '<') => Some(Tok::Shl),
                        ('>', '>') => Some(Tok::Shr),
                        ('&', '&') => Some(Tok::AndAnd),
                        ('|', '|') => Some(Tok::OrOr),
                        _ => None,
                    }
                } else {
                    None
                };
                if let Some(t) = two {
                    push!(t, tl, tc);
                    advance(2, &mut i, &mut line, &mut col);
                } else {
                    let one = match c {
                        '(' => Tok::LParen,
                        ')' => Tok::RParen,
                        '{' => Tok::LBrace,
                        '}' => Tok::RBrace,
                        '[' => Tok::LBracket,
                        ']' => Tok::RBracket,
                        ',' => Tok::Comma,
                        ';' => Tok::Semi,
                        ':' => Tok::Colon,
                        '=' => Tok::Assign,
                        '+' => Tok::Plus,
                        '-' => Tok::Minus,
                        '*' => Tok::Star,
                        '/' => Tok::Slash,
                        '%' => Tok::Percent,
                        '&' => Tok::Amp,
                        '|' => Tok::Pipe,
                        '^' => Tok::Caret,
                        '~' => Tok::Tilde,
                        '<' => Tok::Lt,
                        '>' => Tok::Gt,
                        '!' => Tok::Bang,
                        other => {
                            return Err(CompileError::new(
                                format!("unexpected character `{other}`"),
                                tl,
                                tc,
                            ))
                        }
                    };
                    push!(one, tl, tc);
                    advance(1, &mut i, &mut line, &mut col);
                }
            }
        }
    }
    tokens.push(Token {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            toks("fn foo while whilex"),
            vec![
                Tok::Fn,
                Tok::Ident("foo".into()),
                Tok::While,
                Tok::Ident("whilex".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            toks("42 3.5 1. 0"),
            vec![
                Tok::Int(42),
                Tok::Float(3.5),
                Tok::Float(1.0),
                Tok::Int(0),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            toks("-> == != <= >= << >> && || < > = ! ~"),
            vec![
                Tok::Arrow,
                Tok::EqEq,
                Tok::NotEq,
                Tok::Le,
                Tok::Ge,
                Tok::Shl,
                Tok::Shr,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Lt,
                Tok::Gt,
                Tok::Assign,
                Tok::Bang,
                Tok::Tilde,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            toks("1 // comment\n 2 /* multi\nline */ 3"),
            vec![Tok::Int(1), Tok::Int(2), Tok::Int(3), Tok::Eof]
        );
    }

    #[test]
    fn tracks_positions() {
        let tokens = lex("a\n  b").unwrap();
        assert_eq!((tokens[0].line, tokens[0].col), (1, 1));
        assert_eq!((tokens[1].line, tokens[1].col), (2, 3));
    }

    #[test]
    fn rejects_unknown_char() {
        let e = lex("a $ b").unwrap_err();
        assert!(e.message.contains("unexpected character"));
        assert_eq!(e.col, 3);
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn rejects_integer_overflow() {
        assert!(lex("99999999999999999999999").is_err());
    }
}

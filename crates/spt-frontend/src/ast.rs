//! Abstract syntax tree for `minic`.

/// A source type annotation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TypeAnn {
    /// `int` — 64-bit signed integer.
    Int,
    /// `float` — 64-bit float.
    Float,
}

/// Binary operators at the AST level (including short-circuit forms, which
/// lowering expands into control flow).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AstBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    LogAnd,
    /// `||` (short-circuit)
    LogOr,
}

/// Unary operators at the AST level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AstUnOp {
    /// `-`
    Neg,
    /// `~`
    Not,
    /// `!`
    LogNot,
}

/// An expression with source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Expr {
    /// The node.
    pub kind: ExprKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Expression payload.
#[derive(Clone, Debug, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Variable or global scalar reference.
    Name(String),
    /// Global array element read: `name[index]`.
    Index(String, Box<Expr>),
    /// Binary operation.
    Binary(AstBinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(AstUnOp, Box<Expr>),
    /// Function or intrinsic call.
    Call(String, Vec<Expr>),
}

/// A statement with source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Stmt {
    /// The node.
    pub kind: StmtKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Statement payload.
#[derive(Clone, Debug, PartialEq)]
pub enum StmtKind {
    /// `let name (: ty)? = expr;`
    Let(String, Option<TypeAnn>, Expr),
    /// `name = expr;` (local or global scalar)
    Assign(String, Expr),
    /// `name[index] = expr;`
    StoreIndex(String, Expr, Expr),
    /// `if (cond) { .. } else { .. }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) { .. }`
    While(Expr, Vec<Stmt>),
    /// `for (init; cond; step) { .. }` — the countable "DO loop" form.
    For(Box<Stmt>, Expr, Box<Stmt>, Vec<Stmt>),
    /// `return expr?;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// Expression statement (typically a call).
    ExprStmt(Expr),
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// `(name, type)` parameters.
    pub params: Vec<(String, TypeAnn)>,
    /// Return type, if any.
    pub ret: Option<TypeAnn>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// 1-based line of the definition.
    pub line: usize,
}

/// A global declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct GlobalDef {
    /// Global name.
    pub name: String,
    /// Number of cells (1 for scalars).
    pub size: usize,
    /// Element type.
    pub ty: TypeAnn,
    /// Scalar initializer, if present.
    pub init: Option<f64>,
    /// 1-based line of the declaration.
    pub line: usize,
}

/// A parsed program.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// Global declarations in source order.
    pub globals: Vec<GlobalDef>,
    /// Function definitions in source order.
    pub funcs: Vec<FuncDef>,
}

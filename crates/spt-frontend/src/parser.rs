//! Recursive-descent parser for `minic`.

use crate::ast::*;
use crate::lexer::{Tok, Token};
use crate::CompileError;

/// Maximum statement/expression nesting the parser accepts. Recursive
/// descent consumes native stack per nesting level, so pathological inputs
/// (`((((…))))`, thousand-deep `if` pyramids) must be rejected with a clean
/// [`CompileError`] well before the stack would overflow — an overflow
/// aborts the process and cannot be caught by the pipeline's fault
/// isolation. 64 comfortably covers real programs while staying far from
/// the ~2 MiB test-thread stack even in unoptimised builds (where one
/// statement level costs several stack frames), and also bounds the
/// recursion of every downstream AST consumer (lowering, `Drop`).
const MAX_NESTING: usize = 64;

/// Largest global array a program may declare, in elements. Lowering
/// eagerly materialises the data image, so an unchecked `global a[...]`
/// literal would turn one malformed token into a multi-gigabyte
/// allocation.
const MAX_ARRAY_ELEMS: u64 = 1 << 22;

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    depth: usize,
}

/// Parses a token stream into a [`Program`].
///
/// # Errors
///
/// Returns a [`CompileError`] at the first syntax error.
pub fn parse(tokens: &[Token]) -> Result<Program, CompileError> {
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let mut program = Program::default();
    loop {
        match p.peek() {
            Tok::Eof => break,
            Tok::Global => program.globals.push(p.global()?),
            Tok::Fn => program.funcs.push(p.func()?),
            other => {
                return Err(p.error(format!("expected `global` or `fn`, found `{other}`")));
            }
        }
    }
    Ok(program)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn here(&self) -> (usize, usize) {
        let t = &self.tokens[self.pos];
        (t.line, t.col)
    }

    fn error(&self, message: impl Into<String>) -> CompileError {
        let (line, col) = self.here();
        CompileError::new(message, line, col)
    }

    /// Bumps the nesting depth, erroring out before recursion could
    /// exhaust the native stack.
    fn descend(&mut self) -> Result<(), CompileError> {
        self.depth += 1;
        if self.depth > MAX_NESTING {
            return Err(self.error(format!(
                "program nesting exceeds the maximum depth of {MAX_NESTING}"
            )));
        }
        Ok(())
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<(), CompileError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected `{want}`, found `{}`", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found `{other}`"))),
        }
    }

    fn type_ann(&mut self) -> Result<TypeAnn, CompileError> {
        match self.bump() {
            Tok::KwInt => Ok(TypeAnn::Int),
            Tok::KwFloat => Ok(TypeAnn::Float),
            other => Err(self.error(format!("expected type, found `{other}`"))),
        }
    }

    fn global(&mut self) -> Result<GlobalDef, CompileError> {
        let (line, _) = self.here();
        self.expect(&Tok::Global)?;
        let name = self.ident()?;
        let size = if self.peek() == &Tok::LBracket {
            self.bump();
            let n = match self.bump() {
                Tok::Int(v) if v > 0 && (v as u64) <= MAX_ARRAY_ELEMS => v as usize,
                Tok::Int(v) if v > 0 => {
                    return Err(self.error(format!(
                        "array size {v} exceeds the maximum of {MAX_ARRAY_ELEMS} elements"
                    )))
                }
                _ => return Err(self.error("array size must be a positive integer literal")),
            };
            self.expect(&Tok::RBracket)?;
            n
        } else {
            1
        };
        self.expect(&Tok::Colon)?;
        let ty = self.type_ann()?;
        let init = if self.peek() == &Tok::Assign {
            self.bump();
            let neg = if self.peek() == &Tok::Minus {
                self.bump();
                true
            } else {
                false
            };
            let raw = match self.bump() {
                Tok::Int(v) => v as f64,
                Tok::Float(v) => v,
                _ => return Err(self.error("global initializer must be a literal")),
            };
            Some(if neg { -raw } else { raw })
        } else {
            None
        };
        self.expect(&Tok::Semi)?;
        Ok(GlobalDef {
            name,
            size,
            ty,
            init,
            line,
        })
    }

    fn func(&mut self) -> Result<FuncDef, CompileError> {
        let (line, _) = self.here();
        self.expect(&Tok::Fn)?;
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                let pname = self.ident()?;
                self.expect(&Tok::Colon)?;
                let pty = self.type_ann()?;
                params.push((pname, pty));
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        let ret = if self.peek() == &Tok::Arrow {
            self.bump();
            Some(self.type_ann()?)
        } else {
            None
        };
        let body = self.block()?;
        Ok(FuncDef {
            name,
            params,
            ret,
            body,
            line,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &Tok::RBrace {
            if self.peek() == &Tok::Eof {
                return Err(self.error("unexpected end of input in block"));
            }
            stmts.push(self.stmt()?);
        }
        self.bump(); // }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        // Statements recurse through blocks (`if`/`while`/`for` bodies) and
        // else-if chains; bound the depth here so every cycle is covered.
        self.descend()?;
        let r = self.stmt_inner();
        self.depth -= 1;
        r
    }

    fn stmt_inner(&mut self) -> Result<Stmt, CompileError> {
        let (line, col) = self.here();
        let kind = match self.peek().clone() {
            Tok::Let => {
                self.bump();
                let name = self.ident()?;
                let ann = if self.peek() == &Tok::Colon {
                    self.bump();
                    Some(self.type_ann()?)
                } else {
                    None
                };
                self.expect(&Tok::Assign)?;
                let e = self.expr()?;
                self.expect(&Tok::Semi)?;
                StmtKind::Let(name, ann, e)
            }
            Tok::If => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let then = self.block()?;
                let els = if self.peek() == &Tok::Else {
                    self.bump();
                    if self.peek() == &Tok::If {
                        // else-if chain
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                StmtKind::If(cond, then, els)
            }
            Tok::While => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let body = self.block()?;
                StmtKind::While(cond, body)
            }
            Tok::For => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let init = self.simple_stmt()?;
                self.expect(&Tok::Semi)?;
                let cond = self.expr()?;
                self.expect(&Tok::Semi)?;
                let step = self.simple_stmt()?;
                self.expect(&Tok::RParen)?;
                let body = self.block()?;
                StmtKind::For(Box::new(init), cond, Box::new(step), body)
            }
            Tok::Return => {
                self.bump();
                let e = if self.peek() == &Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi)?;
                StmtKind::Return(e)
            }
            Tok::Break => {
                self.bump();
                self.expect(&Tok::Semi)?;
                StmtKind::Break
            }
            Tok::Continue => {
                self.bump();
                self.expect(&Tok::Semi)?;
                StmtKind::Continue
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(&Tok::Semi)?;
                return Ok(s);
            }
        };
        Ok(Stmt { kind, line, col })
    }

    /// Assignment / store / expression statement without trailing `;`
    /// (shared by `for` headers and plain statements).
    fn simple_stmt(&mut self) -> Result<Stmt, CompileError> {
        let (line, col) = self.here();
        // `let` is allowed in for-init position.
        if self.peek() == &Tok::Let {
            self.bump();
            let name = self.ident()?;
            let ann = if self.peek() == &Tok::Colon {
                self.bump();
                Some(self.type_ann()?)
            } else {
                None
            };
            self.expect(&Tok::Assign)?;
            let e = self.expr()?;
            return Ok(Stmt {
                kind: StmtKind::Let(name, ann, e),
                line,
                col,
            });
        }
        // Lookahead to distinguish `x = e`, `a[i] = e`, from expressions.
        if let Tok::Ident(name) = self.peek().clone() {
            match self.peek2().clone() {
                Tok::Assign => {
                    self.bump();
                    self.bump();
                    let e = self.expr()?;
                    return Ok(Stmt {
                        kind: StmtKind::Assign(name, e),
                        line,
                        col,
                    });
                }
                Tok::LBracket => {
                    // Could be a store or an index expression; parse the
                    // index and check for `=`.
                    let save = self.pos;
                    self.bump(); // ident
                    self.bump(); // [
                    let idx = self.expr()?;
                    self.expect(&Tok::RBracket)?;
                    if self.peek() == &Tok::Assign {
                        self.bump();
                        let e = self.expr()?;
                        return Ok(Stmt {
                            kind: StmtKind::StoreIndex(name, idx, e),
                            line,
                            col,
                        });
                    }
                    self.pos = save;
                }
                _ => {}
            }
        }
        let e = self.expr()?;
        Ok(Stmt {
            kind: StmtKind::ExprStmt(e),
            line,
            col,
        })
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_expr(0)
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::OrOr => (AstBinOp::LogOr, 1),
                Tok::AndAnd => (AstBinOp::LogAnd, 2),
                Tok::Pipe => (AstBinOp::Or, 3),
                Tok::Caret => (AstBinOp::Xor, 4),
                Tok::Amp => (AstBinOp::And, 5),
                Tok::EqEq => (AstBinOp::Eq, 6),
                Tok::NotEq => (AstBinOp::Ne, 6),
                Tok::Lt => (AstBinOp::Lt, 7),
                Tok::Le => (AstBinOp::Le, 7),
                Tok::Gt => (AstBinOp::Gt, 7),
                Tok::Ge => (AstBinOp::Ge, 7),
                Tok::Shl => (AstBinOp::Shl, 8),
                Tok::Shr => (AstBinOp::Shr, 8),
                Tok::Plus => (AstBinOp::Add, 9),
                Tok::Minus => (AstBinOp::Sub, 9),
                Tok::Star => (AstBinOp::Mul, 10),
                Tok::Slash => (AstBinOp::Div, 10),
                Tok::Percent => (AstBinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let (line, col) = self.here();
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            lhs = Expr {
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                line,
                col,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, CompileError> {
        // Every expression path funnels through here (parenthesised and
        // unary recursion both re-enter via `expr`), so this single guard
        // bounds all expression nesting.
        self.descend()?;
        let r = self.unary_expr_inner();
        self.depth -= 1;
        r
    }

    fn unary_expr_inner(&mut self) -> Result<Expr, CompileError> {
        let (line, col) = self.here();
        let op = match self.peek() {
            Tok::Minus => Some(AstUnOp::Neg),
            Tok::Tilde => Some(AstUnOp::Not),
            Tok::Bang => Some(AstUnOp::LogNot),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let inner = self.unary_expr()?;
            return Ok(Expr {
                kind: ExprKind::Unary(op, Box::new(inner)),
                line,
                col,
            });
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, CompileError> {
        let (line, col) = self.here();
        let kind = match self.bump() {
            Tok::Int(v) => ExprKind::IntLit(v),
            Tok::Float(v) => ExprKind::FloatLit(v),
            // `int(expr)` / `float(expr)` conversion intrinsics reuse the
            // type keywords.
            t @ (Tok::KwInt | Tok::KwFloat) => {
                self.expect(&Tok::LParen)?;
                let arg = self.expr()?;
                self.expect(&Tok::RParen)?;
                let name = if t == Tok::KwInt { "int" } else { "float" };
                ExprKind::Call(name.to_string(), vec![arg])
            }
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                return Ok(e);
            }
            Tok::Ident(name) => match self.peek() {
                Tok::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if self.peek() == &Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    ExprKind::Call(name, args)
                }
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(&Tok::RBracket)?;
                    ExprKind::Index(name, Box::new(idx))
                }
                _ => ExprKind::Name(name),
            },
            other => {
                return Err(CompileError::new(
                    format!("expected expression, found `{other}`"),
                    line,
                    col,
                ))
            }
        };
        Ok(Expr { kind, line, col })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_globals() {
        let p = parse_src("global a[10]: int; global b: float = 1.5; global c: int = -2;");
        assert_eq!(p.globals.len(), 3);
        assert_eq!(p.globals[0].size, 10);
        assert_eq!(p.globals[1].init, Some(1.5));
        assert_eq!(p.globals[2].init, Some(-2.0));
    }

    #[test]
    fn parses_function_and_loop() {
        let p = parse_src(
            "fn sum(n: int) -> int { let s = 0; for (let i = 0; i < n; i = i + 1) { s = s + i; } return s; }",
        );
        assert_eq!(p.funcs.len(), 1);
        let f = &p.funcs[0];
        assert_eq!(f.params, vec![("n".to_string(), TypeAnn::Int)]);
        assert_eq!(f.ret, Some(TypeAnn::Int));
        assert!(matches!(f.body[1].kind, StmtKind::For(..)));
    }

    #[test]
    fn precedence() {
        let p = parse_src("fn f() -> int { return 1 + 2 * 3; }");
        match &p.funcs[0].body[0].kind {
            StmtKind::Return(Some(e)) => match &e.kind {
                ExprKind::Binary(AstBinOp::Add, _, rhs) => {
                    assert!(matches!(rhs.kind, ExprKind::Binary(AstBinOp::Mul, ..)));
                }
                other => panic!("wrong tree: {other:?}"),
            },
            _ => panic!("expected return"),
        }
    }

    #[test]
    fn array_store_vs_index_expr() {
        let p = parse_src("global a[4]: int; fn f() { a[0] = a[1] + 1; }");
        match &p.funcs[0].body[0].kind {
            StmtKind::StoreIndex(name, _, val) => {
                assert_eq!(name, "a");
                assert!(matches!(val.kind, ExprKind::Binary(..)));
            }
            other => panic!("expected store, got {other:?}"),
        }
    }

    #[test]
    fn else_if_chain() {
        let p = parse_src("fn f(x: int) -> int { if (x > 1) { return 1; } else if (x > 0) { return 2; } else { return 3; } }");
        match &p.funcs[0].body[0].kind {
            StmtKind::If(_, _, els) => {
                assert_eq!(els.len(), 1);
                assert!(matches!(els[0].kind, StmtKind::If(..)));
            }
            _ => panic!("expected if"),
        }
    }

    #[test]
    fn while_with_logical_ops() {
        let p = parse_src("fn f(x: int) { while (x > 0 && x < 10 || x == 42) { x = x - 1; } }");
        match &p.funcs[0].body[0].kind {
            StmtKind::While(cond, _) => {
                assert!(matches!(cond.kind, ExprKind::Binary(AstBinOp::LogOr, ..)));
            }
            _ => panic!("expected while"),
        }
    }

    #[test]
    fn reports_syntax_error_position() {
        let e = parse(&lex("fn f( {").unwrap()).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("expected"));
    }

    #[test]
    fn unary_chains() {
        let p = parse_src("fn f(x: int) -> int { return - - x + !x; }");
        assert_eq!(p.funcs.len(), 1);
    }

    #[test]
    fn call_statement() {
        let p = parse_src("fn g() {} fn f() { g(); }");
        assert!(matches!(p.funcs[1].body[0].kind, StmtKind::ExprStmt(_)));
    }

    #[test]
    fn deep_paren_nesting_is_a_clean_error() {
        let src = format!(
            "fn f() -> int {{ return {}1{}; }}",
            "(".repeat(5000),
            ")".repeat(5000)
        );
        let e = parse(&lex(&src).unwrap()).unwrap_err();
        assert!(e.message.contains("nesting"), "got: {}", e.message);
    }

    #[test]
    fn deep_statement_nesting_is_a_clean_error() {
        let src = format!(
            "fn f() {{ {} {} }}",
            "if (1) {".repeat(5000),
            "}".repeat(5000)
        );
        let e = parse(&lex(&src).unwrap()).unwrap_err();
        assert!(e.message.contains("nesting"), "got: {}", e.message);
    }

    #[test]
    fn moderate_nesting_still_parses() {
        let src = format!(
            "fn f() -> int {{ return {}1{}; }}",
            "(".repeat(40),
            ")".repeat(40)
        );
        parse(&lex(&src).unwrap()).unwrap();
    }

    #[test]
    fn oversized_global_array_is_a_clean_error() {
        let e = parse(&lex("global a[99999999999]: int;").unwrap()).unwrap_err();
        assert!(e.message.contains("exceeds"), "got: {}", e.message);
    }
}

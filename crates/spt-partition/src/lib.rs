//! Optimal SPT loop partitioning (§5 of the paper).
//!
//! Formulation: *find a legal loop partition with minimum misspeculation
//! cost, subject to the pre-fork region size being at most a threshold.* A
//! partition is legal when it preserves all forward intra-iteration
//! dependences — equivalently, when the pre-fork region is a
//! dependence-closure of the violation candidates it contains.
//!
//! The search space is restricted to sets of violation candidates (the only
//! statements whose placement changes the cost), organized by the
//! [`VcDepGraph`]: candidate `N` is a successor of candidate `S` when `N`
//! depends intra-iteration on `S`, so `S` must enter the pre-fork region
//! before `N` can (§5.1). A branch-and-bound enumeration visits candidate
//! sets in topological order — at each step only candidates with a larger
//! topological number may be added, avoiding duplicate visits (§5.2) — with
//! the paper's two pruning heuristics (§5.2.1):
//!
//! 1. **size pruning** — pre-fork size is monotone in the candidate set, so
//!    once a set exceeds the size threshold its whole subtree is dead;
//! 2. **bound pruning** — misspeculation cost is monotone *decreasing* in
//!    the candidate set, so the cost with *all* still-addable candidates
//!    included lower-bounds every descendant; if that bound is no better
//!    than the best found, the subtree is dead.
//!
//! Loops with more than [`SearchConfig::max_vcs`] candidates are skipped,
//! exactly as the paper skips loops with more than 30.

use spt_cost::{LoopCostModel, Partition};

/// The violation-candidate dependence graph (§5.1).
#[derive(Clone, Debug)]
pub struct VcDepGraph {
    /// Violation candidates as dep-graph node indices, ascending (this is a
    /// topological order: intra edges only go forward in node order).
    pub vcs: Vec<usize>,
    /// `preds[k]` = positions (into `vcs`) of candidates that candidate `k`
    /// transitively depends on intra-iteration.
    pub preds: Vec<Vec<usize>>,
    /// Positions of candidates that can never be moved (their closure
    /// contains a pinned node).
    pub immovable: Vec<bool>,
    /// `closures[k]` = the intra-iteration dependence closure of candidate
    /// `k` (sorted dep-graph node indices). The closure of a candidate *set*
    /// is the union of these (closures distribute over union), which is what
    /// lets the search maintain its pre-fork mask incrementally.
    pub closures: Vec<Vec<usize>>,
}

impl VcDepGraph {
    /// Builds the VC-dep graph from a loop cost model. Each candidate's
    /// closure is computed once over shared scratch buffers and stored.
    pub fn build(model: &LoopCostModel) -> Self {
        let vcs: Vec<usize> = model.vcs().to_vec();
        let num_nodes = model.graph.nodes.len();
        // Node -> candidate-position lookup.
        let mut pos_of: Vec<Option<usize>> = vec![None; num_nodes];
        for (k, &vc) in vcs.iter().enumerate() {
            pos_of[vc] = Some(k);
        }
        let pred_adj = model.graph.closure_preds();
        let mut in_set = vec![false; num_nodes];
        let mut work = Vec::new();
        let mut preds: Vec<Vec<usize>> = Vec::with_capacity(vcs.len());
        let mut immovable = Vec::with_capacity(vcs.len());
        let mut closures = Vec::with_capacity(vcs.len());
        for &vc in &vcs {
            let mut closure = Vec::new();
            model
                .graph
                .closure_with(&pred_adj, &[vc], &mut in_set, &mut work, &mut closure);
            immovable.push(!model.graph.closure_is_legal(&closure));
            // Closure and `vcs` are both ascending, so `ps` comes out sorted.
            let mut ps = Vec::new();
            for &n in &closure {
                if n != vc {
                    if let Some(p) = pos_of[n] {
                        ps.push(p);
                    }
                }
            }
            preds.push(ps);
            closures.push(closure);
        }
        VcDepGraph {
            vcs,
            preds,
            immovable,
            closures,
        }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.vcs.len()
    }

    /// Returns `true` when there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.vcs.is_empty()
    }
}

/// The search's incrementally-maintained pre-fork region: the union of the
/// pushed candidates' dependence closures, tracked by per-node reference
/// counts so each pop undoes exactly what the matching push added. `mask`
/// and `size` always equal what `Partition::from_seeds` would compute for
/// the pushed set, without re-walking any closure.
struct DeltaMask {
    mask: Vec<bool>,
    refs: Vec<u32>,
    size: u64,
}

impl DeltaMask {
    fn new(num_nodes: usize) -> Self {
        DeltaMask {
            mask: vec![false; num_nodes],
            refs: vec![0; num_nodes],
            size: 0,
        }
    }

    fn push(&mut self, closure: &[usize], node_cost: &[u64]) {
        for &n in closure {
            if self.refs[n] == 0 {
                self.mask[n] = true;
                self.size += node_cost[n];
            }
            self.refs[n] += 1;
        }
    }

    fn pop(&mut self, closure: &[usize], node_cost: &[u64]) {
        for &n in closure {
            self.refs[n] -= 1;
            if self.refs[n] == 0 {
                self.mask[n] = false;
                self.size -= node_cost[n];
            }
        }
    }
}

/// Search parameters.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Maximum pre-fork region size (absolute, in the cost model's latency
    /// units). The driver derives it as a fraction of the loop body size
    /// (§6.1 criterion 2).
    pub max_prefork_size: u64,
    /// Skip loops with more candidates than this (paper: 30).
    pub max_vcs: usize,
    /// Enable pruning heuristic 1 (size). Disable only for ablation.
    pub prune_size: bool,
    /// Enable pruning heuristic 2 (cost lower bound). Disable only for
    /// ablation.
    pub prune_bound: bool,
    /// Hard cap on visited search nodes (defensive; the paper's cap is the
    /// VC limit).
    pub max_visited: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            max_prefork_size: u64::MAX,
            max_vcs: 30,
            prune_size: true,
            prune_bound: true,
            max_visited: 1_000_000,
        }
    }
}

/// The outcome of an optimal-partition search.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// The best legal partition within the size threshold.
    pub partition: Partition,
    /// Its misspeculation cost.
    pub cost: f64,
    /// Candidate positions chosen into the pre-fork region.
    pub chosen: Vec<usize>,
    /// Search-tree nodes visited (ablation metric).
    pub visited: u64,
    /// Subtrees cut by size pruning.
    pub pruned_size: u64,
    /// Subtrees cut by bound pruning.
    pub pruned_bound: u64,
    /// `true` when the loop was skipped for having too many candidates; the
    /// returned partition is then the empty one.
    pub skipped_too_many_vcs: bool,
    /// `true` when the search stopped because it hit
    /// [`SearchConfig::max_visited`]. The returned partition is then the
    /// best one found so far, *not* necessarily the optimum — callers that
    /// care about optimality (or observability of degraded results) must
    /// check this flag instead of treating the result as exact.
    pub budget_exhausted: bool,
}

/// Finds the minimum-misspeculation-cost legal partition of the loop, via
/// branch-and-bound over violation-candidate sets.
///
/// Search nodes are evaluated *incrementally*: the pre-fork mask is the
/// refcounted union of the chosen candidates' precomputed closures
/// ([`DeltaMask`]), extended on push and undone on pop, and costs come from
/// a single [`spt_cost::CostEvaluator`] arena whose propagation sweep only
/// touches nodes reachable from still-armed candidates. The result is
/// bit-identical to [`optimal_partition_reference`] (skipped survival
/// factors are exactly `1.0`), which remains the differential oracle.
pub fn optimal_partition(model: &LoopCostModel, config: &SearchConfig) -> SearchResult {
    let vc_graph = VcDepGraph::build(model);
    let empty = Partition::empty(&model.graph);
    let empty_cost = model.misspeculation_cost(&empty);

    if vc_graph.len() > config.max_vcs {
        return SearchResult {
            partition: empty,
            cost: empty_cost,
            chosen: Vec::new(),
            visited: 0,
            pruned_size: 0,
            pruned_bound: 0,
            skipped_too_many_vcs: true,
            budget_exhausted: false,
        };
    }

    struct Ctx<'a> {
        model: &'a LoopCostModel,
        vc_graph: &'a VcDepGraph,
        config: &'a SearchConfig,
        eval: spt_cost::CostEvaluator,
        delta: DeltaMask,
        /// Candidate-position membership of the current set (O(1) pred
        /// checks; the set itself stays a stack for `best_set` snapshots).
        in_set: Vec<bool>,
        best_cost: f64,
        best_size: u64,
        best_set: Vec<usize>,
        visited: u64,
        pruned_size: u64,
        pruned_bound: u64,
        exhausted: bool,
    }

    impl Ctx<'_> {
        fn push(&mut self, p: usize) {
            self.delta
                .push(&self.vc_graph.closures[p], &self.model.graph.cost);
            self.in_set[p] = true;
        }

        fn pop(&mut self, p: usize) {
            self.delta
                .pop(&self.vc_graph.closures[p], &self.model.graph.cost);
            self.in_set[p] = false;
        }

        fn cost(&mut self) -> f64 {
            self.model
                .cost_graph()
                .misspeculation_cost_with(&self.delta.mask, &mut self.eval)
        }

        fn consider(&mut self, set: &[usize], cost: f64) {
            let size = self.delta.size;
            let better = cost < self.best_cost - 1e-12
                || (cost < self.best_cost + 1e-12 && size < self.best_size);
            if better {
                self.best_cost = cost;
                self.best_size = size;
                self.best_set = set.to_vec();
            }
        }

        /// Explores descendants of `set` (whose max position is `max_pos`).
        fn search(&mut self, set: &mut Vec<usize>, max_pos: Option<usize>) {
            if self.visited >= self.config.max_visited {
                self.exhausted = true;
                return;
            }
            let start = max_pos.map_or(0, |m| m + 1);
            // Bound pruning: the best any descendant can do is the cost with
            // every still-addable candidate included. Push them all, read the
            // bound, pop them — no from-scratch closure walk.
            if self.config.prune_bound {
                let mut any = false;
                for p in start..self.vc_graph.len() {
                    if !self.vc_graph.immovable[p] {
                        self.push(p);
                        any = true;
                    }
                }
                if any {
                    let bound = self.cost();
                    for p in (start..self.vc_graph.len()).rev() {
                        if !self.vc_graph.immovable[p] {
                            self.pop(p);
                        }
                    }
                    if bound >= self.best_cost - 1e-12 {
                        self.pruned_bound += 1;
                        return;
                    }
                }
            }

            for p in start..self.vc_graph.len() {
                if self.visited >= self.config.max_visited {
                    self.exhausted = true;
                    return;
                }
                if self.vc_graph.immovable[p] {
                    continue;
                }
                // All VC-dep predecessors must already be in the set. (Sets
                // of movable candidates are always legal: each closure is
                // individually pinned-free and closures distribute over
                // union, so no legality re-check is needed here.)
                if !self.vc_graph.preds[p].iter().all(|&q| self.in_set[q]) {
                    continue;
                }
                self.push(p);
                set.push(p);
                self.visited += 1;
                let oversize = self.delta.size > self.config.max_prefork_size;
                if oversize {
                    if self.config.prune_size {
                        // Size is monotone: the whole subtree is dead.
                        self.pruned_size += 1;
                    } else {
                        // Ablation mode: not a candidate answer, but
                        // descendants are still (pointlessly) explored.
                        self.search(set, Some(p));
                    }
                } else {
                    let cost = self.cost();
                    self.consider(set, cost);
                    self.search(set, Some(p));
                }
                set.pop();
                self.pop(p);
            }
        }
    }

    let mut ctx = Ctx {
        model,
        vc_graph: &vc_graph,
        config,
        eval: model.evaluator(),
        delta: DeltaMask::new(model.graph.nodes.len()),
        in_set: vec![false; vc_graph.len()],
        best_cost: empty_cost,
        best_size: 0,
        best_set: Vec::new(),
        visited: 0,
        pruned_size: 0,
        pruned_bound: 0,
        exhausted: false,
    };
    let mut set = Vec::new();
    ctx.search(&mut set, None);

    let chosen = ctx.best_set.clone();
    let seeds: Vec<usize> = chosen.iter().map(|&p| vc_graph.vcs[p]).collect();
    let partition = if seeds.is_empty() {
        Partition::empty(&model.graph)
    } else {
        Partition::from_seeds(&model.graph, &seeds).expect("best set was legal during search")
    };
    SearchResult {
        cost: ctx.best_cost,
        partition,
        chosen,
        visited: ctx.visited,
        pruned_size: ctx.pruned_size,
        pruned_bound: ctx.pruned_bound,
        skipped_too_many_vcs: false,
        budget_exhausted: ctx.exhausted,
    }
}

/// The original from-scratch search: every candidate set is evaluated by
/// re-walking its dependence closure (`Partition::from_seeds`) and running a
/// full propagation sweep. Retained as the differential oracle for
/// [`optimal_partition`] and as the baseline of the `partition_search`
/// criterion benchmark; not used by the compilation pipeline.
pub fn optimal_partition_reference(model: &LoopCostModel, config: &SearchConfig) -> SearchResult {
    let vc_graph = VcDepGraph::build(model);
    let empty = Partition::empty(&model.graph);
    let empty_cost = model.misspeculation_cost(&empty);

    if vc_graph.len() > config.max_vcs {
        return SearchResult {
            partition: empty,
            cost: empty_cost,
            chosen: Vec::new(),
            visited: 0,
            pruned_size: 0,
            pruned_bound: 0,
            skipped_too_many_vcs: true,
            budget_exhausted: false,
        };
    }

    struct Ctx<'a> {
        model: &'a LoopCostModel,
        vc_graph: &'a VcDepGraph,
        config: &'a SearchConfig,
        best_cost: f64,
        best_size: u64,
        best_set: Vec<usize>,
        visited: u64,
        pruned_size: u64,
        pruned_bound: u64,
        exhausted: bool,
    }

    impl Ctx<'_> {
        /// The seeds (dep-graph nodes) for a candidate-position set.
        fn seeds(&self, set: &[usize]) -> Vec<usize> {
            set.iter().map(|&p| self.vc_graph.vcs[p]).collect()
        }

        fn consider(&mut self, set: &[usize], partition: &Partition, cost: f64) {
            let better = cost < self.best_cost - 1e-12
                || (cost < self.best_cost + 1e-12 && partition.size() < self.best_size);
            if better {
                self.best_cost = cost;
                self.best_size = partition.size();
                self.best_set = set.to_vec();
            }
        }

        /// Explores descendants of `set` (whose max position is `max_pos`).
        fn search(&mut self, set: &mut Vec<usize>, max_pos: Option<usize>) {
            if self.visited >= self.config.max_visited {
                self.exhausted = true;
                return;
            }
            // Bound pruning: the best any descendant can do is the cost with
            // every still-addable candidate included.
            if self.config.prune_bound {
                let mut all: Vec<usize> = set.clone();
                for p in max_pos.map_or(0, |m| m + 1)..self.vc_graph.len() {
                    if !self.vc_graph.immovable[p] {
                        all.push(p);
                    }
                }
                if all.len() > set.len() {
                    let seeds = self.seeds(&all);
                    if let Some(part) = Partition::from_seeds(&self.model.graph, &seeds) {
                        let bound = self.model.misspeculation_cost(&part);
                        if bound >= self.best_cost - 1e-12 {
                            self.pruned_bound += 1;
                            return;
                        }
                    }
                }
            }

            let start = max_pos.map_or(0, |m| m + 1);
            for p in start..self.vc_graph.len() {
                if self.visited >= self.config.max_visited {
                    self.exhausted = true;
                    return;
                }
                if self.vc_graph.immovable[p] {
                    continue;
                }
                // All VC-dep predecessors must already be in the set.
                if !self.vc_graph.preds[p].iter().all(|q| set.contains(q)) {
                    continue;
                }
                set.push(p);
                self.visited += 1;
                let seeds = self.seeds(set);
                match Partition::from_seeds(&self.model.graph, &seeds) {
                    Some(partition) => {
                        let oversize = partition.size() > self.config.max_prefork_size;
                        if oversize {
                            if self.config.prune_size {
                                // Size is monotone: the whole subtree is dead.
                                self.pruned_size += 1;
                                set.pop();
                                continue;
                            }
                            // Ablation mode: not a candidate answer, but
                            // descendants are still (pointlessly) explored.
                            self.search(set, Some(p));
                        } else {
                            let cost = self.model.misspeculation_cost(&partition);
                            self.consider(set, &partition, cost);
                            self.search(set, Some(p));
                        }
                    }
                    None => {
                        // Illegal closure; supersets stay illegal.
                    }
                }
                set.pop();
            }
        }
    }

    let mut ctx = Ctx {
        model,
        vc_graph: &vc_graph,
        config,
        best_cost: empty_cost,
        best_size: 0,
        best_set: Vec::new(),
        visited: 0,
        pruned_size: 0,
        pruned_bound: 0,
        exhausted: false,
    };
    let mut set = Vec::new();
    ctx.search(&mut set, None);

    let chosen = ctx.best_set.clone();
    let seeds: Vec<usize> = chosen.iter().map(|&p| vc_graph.vcs[p]).collect();
    let partition = if seeds.is_empty() {
        Partition::empty(&model.graph)
    } else {
        Partition::from_seeds(&model.graph, &seeds).expect("best set was legal during search")
    };
    SearchResult {
        cost: ctx.best_cost,
        partition,
        chosen,
        visited: ctx.visited,
        pruned_size: ctx.pruned_size,
        pruned_bound: ctx.pruned_bound,
        skipped_too_many_vcs: false,
        budget_exhausted: ctx.exhausted,
    }
}

/// A greedy baseline for ablation: repeatedly add the single candidate that
/// most reduces cost, while the size threshold holds. Candidates are probed
/// by pushing them onto the shared [`DeltaMask`] and popping after the cost
/// read, so one round is linear in closure size rather than quadratic in the
/// chosen set.
pub fn greedy_partition(model: &LoopCostModel, config: &SearchConfig) -> SearchResult {
    let vc_graph = VcDepGraph::build(model);
    let node_cost = &model.graph.cost;
    let mut eval = model.evaluator();
    let mut delta = DeltaMask::new(model.graph.nodes.len());
    let mut in_chosen = vec![false; vc_graph.len()];
    let mut chosen: Vec<usize> = Vec::new();
    let mut best_cost = model
        .cost_graph()
        .misspeculation_cost_with(&delta.mask, &mut eval);
    let mut visited = 0u64;
    loop {
        let mut improved: Option<(usize, f64)> = None;
        for p in 0..vc_graph.len() {
            if in_chosen[p] || vc_graph.immovable[p] {
                continue;
            }
            if !vc_graph.preds[p].iter().all(|&q| in_chosen[q]) {
                continue;
            }
            visited += 1;
            delta.push(&vc_graph.closures[p], node_cost);
            if delta.size <= config.max_prefork_size {
                let cost = model
                    .cost_graph()
                    .misspeculation_cost_with(&delta.mask, &mut eval);
                if cost < best_cost - 1e-12 && improved.is_none_or(|(_, c)| cost < c) {
                    improved = Some((p, cost));
                }
            }
            delta.pop(&vc_graph.closures[p], node_cost);
        }
        match improved {
            Some((p, cost)) => {
                delta.push(&vc_graph.closures[p], node_cost);
                in_chosen[p] = true;
                chosen.push(p);
                best_cost = cost;
            }
            None => break,
        }
    }
    let best_partition = if chosen.is_empty() {
        Partition::empty(&model.graph)
    } else {
        let seeds: Vec<usize> = chosen.iter().map(|&p| vc_graph.vcs[p]).collect();
        Partition::from_seeds(&model.graph, &seeds).expect("chosen candidates are movable")
    };
    SearchResult {
        partition: best_partition,
        cost: best_cost,
        chosen,
        visited,
        pruned_size: 0,
        pruned_bound: 0,
        skipped_too_many_vcs: false,
        budget_exhausted: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spt_cost::dep_graph::{DepGraph, DepGraphConfig, Profiles};
    use spt_ir::loops::LoopId;

    fn model_for(src: &str, fname: &str) -> LoopCostModel {
        let module = spt_frontend::compile(src).unwrap();
        let func = module.func_by_name(fname).unwrap();
        let graph = DepGraph::build(
            &module,
            func,
            LoopId::new(0),
            Profiles::default(),
            &DepGraphConfig::default(),
        );
        LoopCostModel::new(graph)
    }

    const INDUCTION: &str = "
        fn f(n: int) -> int {
            let i = 0;
            let s = 0;
            while (i < n) {
                s = s + i * 3;
                i = i + 1;
            }
            return s;
        }
    ";

    #[test]
    fn finds_zero_cost_partition_when_unconstrained() {
        let m = model_for(INDUCTION, "f");
        let r = optimal_partition(&m, &SearchConfig::default());
        assert!(!r.skipped_too_many_vcs);
        assert!(r.cost < 1e-9, "cost = {}", r.cost);
        assert!(!r.partition.is_empty());
        assert!(r.visited > 0);
    }

    #[test]
    fn size_threshold_constrains_result() {
        let m = model_for(INDUCTION, "f");
        let unconstrained = optimal_partition(&m, &SearchConfig::default());
        let tight = SearchConfig {
            max_prefork_size: 1,
            ..SearchConfig::default()
        };
        let r = optimal_partition(&m, &tight);
        assert!(r.partition.size() <= 1);
        assert!(r.cost >= unconstrained.cost - 1e-12);
    }

    #[test]
    fn optimal_matches_exhaustive_without_pruning() {
        let m = model_for(INDUCTION, "f");
        let with = optimal_partition(&m, &SearchConfig::default());
        let without = optimal_partition(
            &m,
            &SearchConfig {
                prune_bound: false,
                prune_size: false,
                ..SearchConfig::default()
            },
        );
        assert!((with.cost - without.cost).abs() < 1e-12);
        assert!(with.visited <= without.visited);
    }

    #[test]
    fn bound_pruning_reduces_visits() {
        // A loop with several independent violation candidates.
        let src = "
            fn f(n: int) -> int {
                let a = 0; let b = 0; let c = 0; let d = 1; let i = 0;
                while (i < n) {
                    a = a + 1;
                    b = b + 2;
                    c = c + 3;
                    d = d * 2;
                    i = i + 1;
                }
                return a + b + c + d;
            }
        ";
        let m = model_for(src, "f");
        let pruned = optimal_partition(&m, &SearchConfig::default());
        let unpruned = optimal_partition(
            &m,
            &SearchConfig {
                prune_bound: false,
                ..SearchConfig::default()
            },
        );
        assert!((pruned.cost - unpruned.cost).abs() < 1e-12, "same optimum");
        assert!(
            pruned.visited < unpruned.visited,
            "pruning must help: {} vs {}",
            pruned.visited,
            unpruned.visited
        );
    }

    #[test]
    fn too_many_vcs_skips() {
        let m = model_for(INDUCTION, "f");
        let r = optimal_partition(
            &m,
            &SearchConfig {
                max_vcs: 0,
                ..SearchConfig::default()
            },
        );
        assert!(r.skipped_too_many_vcs);
        assert!(r.partition.is_empty());
    }

    #[test]
    fn vc_dep_graph_orders_dependent_candidates() {
        // b depends on a (same iteration): a must precede b in any set.
        let src = "
            fn f(n: int) -> int {
                let a = 0; let b = 0; let i = 0;
                while (i < n) {
                    a = a + 1;
                    b = b + a;
                    i = i + 1;
                }
                return b;
            }
        ";
        let m = model_for(src, "f");
        let g = VcDepGraph::build(&m);
        assert!(g.len() >= 2);
        // At least one candidate has a predecessor.
        assert!(g.preds.iter().any(|p| !p.is_empty()));
        // And the search still finds the zero-cost answer.
        let r = optimal_partition(&m, &SearchConfig::default());
        assert!(r.cost < 1e-9);
    }

    #[test]
    fn greedy_never_beats_optimal() {
        let src = "
            global a[512]: int;
            fn f(n: int) -> int {
                let s = 0; let t = 0; let i = 0;
                while (i < n) {
                    t = s / 7 + t;
                    s = s + a[i];
                    i = i + 1;
                }
                return t;
            }
        ";
        let m = model_for(src, "f");
        let cfg = SearchConfig::default();
        let opt = optimal_partition(&m, &cfg);
        let greedy = greedy_partition(&m, &cfg);
        assert!(opt.cost <= greedy.cost + 1e-12);
    }

    #[test]
    fn incremental_matches_reference_exactly() {
        // The incremental search must reproduce the from-scratch oracle
        // bit-for-bit: same cost, same partition, same search statistics.
        let sources = [
            INDUCTION,
            "
            fn f(n: int) -> int {
                let a = 0; let b = 0; let c = 0; let d = 1; let i = 0;
                while (i < n) {
                    a = a + 1;
                    b = b + a;
                    c = c + b;
                    d = d * 2;
                    i = i + 1;
                }
                return a + b + c + d;
            }
            ",
            "
            global t: int;
            fn bump(v: int) -> int { t = t + v; return t; }
            fn f(n: int) -> int {
                let s = 0; let i = 0;
                while (i < n) {
                    s = s + bump(i);
                    i = i + 1;
                }
                return s;
            }
            ",
        ];
        for src in sources {
            let m = model_for(src, "f");
            for max_size in [1u64, 4, u64::MAX] {
                let cfg = SearchConfig {
                    max_prefork_size: max_size,
                    ..SearchConfig::default()
                };
                let inc = optimal_partition(&m, &cfg);
                let refr = optimal_partition_reference(&m, &cfg);
                assert_eq!(inc.cost.to_bits(), refr.cost.to_bits(), "cost");
                assert_eq!(inc.chosen, refr.chosen, "chosen set");
                assert_eq!(inc.partition.mask(), refr.partition.mask(), "mask");
                assert_eq!(inc.partition.size(), refr.partition.size(), "size");
                assert_eq!(inc.visited, refr.visited, "visited");
                assert_eq!(inc.pruned_size, refr.pruned_size, "pruned_size");
                assert_eq!(inc.pruned_bound, refr.pruned_bound, "pruned_bound");
            }
        }
    }

    #[test]
    fn pinned_candidates_are_never_chosen() {
        let src = "
            global t: int;
            fn bump(v: int) -> int { t = t + v; return t; }
            fn f(n: int) -> int {
                let s = 0;
                let i = 0;
                while (i < n) {
                    s = s + bump(i);
                    i = i + 1;
                }
                return s;
            }
        ";
        let m = model_for(src, "f");
        let r = optimal_partition(&m, &SearchConfig::default());
        // The call's cross deps can't be removed, so cost stays positive,
        // but the induction update can still move.
        assert!(r.cost > 0.0);
        let module = spt_frontend::compile(src).unwrap();
        let f = module.func(module.func_by_name("f").unwrap());
        for n in r.partition.nodes() {
            assert!(
                !matches!(f.inst(m.graph.nodes[n]).kind, spt_ir::InstKind::Call { .. }),
                "pinned call moved into pre-fork region"
            );
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use spt_cost::dep_graph::{DepGraph, DepGraphConfig, Profiles};
    use spt_ir::loops::LoopId;

    /// Generates a random scalar-update loop in minic and checks search
    /// invariants on it.
    fn random_loop_source(updates: &[(usize, i64)]) -> String {
        let mut body = String::new();
        let mut decls = String::new();
        let n_vars = updates.iter().map(|&(v, _)| v).max().unwrap_or(0) + 1;
        for v in 0..n_vars {
            decls.push_str(&format!("let x{v} = {v};\n"));
        }
        for &(v, k) in updates {
            let src = (v + 1) % n_vars;
            body.push_str(&format!("x{v} = x{v} + x{src} * {k};\n"));
        }
        let mut ret = String::from("0");
        for v in 0..n_vars {
            ret.push_str(&format!(" + x{v}"));
        }
        format!(
            "fn f(n: int) -> int {{ {decls} let i = 0; while (i < n) {{ {body} i = i + 1; }} return {ret}; }}"
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The search result never exceeds the size bound, and its cost never
        /// exceeds the empty partition's.
        #[test]
        fn search_respects_constraints(
            updates in proptest::collection::vec((0usize..4, 1i64..5), 1..5),
            max_size in 1u64..40,
        ) {
            let src = random_loop_source(&updates);
            let module = spt_frontend::compile(&src).unwrap();
            let func = module.func_by_name("f").unwrap();
            let graph = DepGraph::build(
                &module, func, LoopId::new(0),
                Profiles::default(), &DepGraphConfig::default(),
            );
            let model = LoopCostModel::new(graph);
            let empty_cost =
                model.misspeculation_cost(&spt_cost::Partition::empty(&model.graph));
            let cfg = SearchConfig { max_prefork_size: max_size, ..SearchConfig::default() };
            let r = optimal_partition(&model, &cfg);
            prop_assert!(r.partition.size() <= max_size || r.partition.is_empty());
            prop_assert!(r.cost <= empty_cost + 1e-9);
        }

        /// The incremental delta-stack evaluation agrees with the
        /// from-scratch path — partition mask, size, cost, and re-execution
        /// probabilities — over a random push/pop sequence.
        #[test]
        fn incremental_evaluation_matches_from_scratch(
            updates in proptest::collection::vec((0usize..5, 1i64..6), 1..7),
            ops in proptest::collection::vec(0usize..16, 1..32),
        ) {
            let src = random_loop_source(&updates);
            let module = spt_frontend::compile(&src).unwrap();
            let func = module.func_by_name("f").unwrap();
            let graph = DepGraph::build(
                &module, func, LoopId::new(0),
                Profiles::default(), &DepGraphConfig::default(),
            );
            let model = LoopCostModel::new(graph);
            let vc_graph = VcDepGraph::build(&model);
            let movable: Vec<usize> =
                (0..vc_graph.len()).filter(|&p| !vc_graph.immovable[p]).collect();
            prop_assert!(!movable.is_empty() || vc_graph.is_empty() || !ops.is_empty());
            if movable.is_empty() {
                return Ok(());
            }
            let mut eval = model.evaluator();
            let mut delta = DeltaMask::new(model.graph.nodes.len());
            let mut stack: Vec<usize> = Vec::new();
            for &op in &ops {
                // Even ops push a (possibly repeated) candidate, odd ops pop.
                if op % 2 == 0 || stack.is_empty() {
                    let p = movable[op % movable.len()];
                    delta.push(&vc_graph.closures[p], &model.graph.cost);
                    stack.push(p);
                } else {
                    let p = stack.pop().unwrap();
                    delta.pop(&vc_graph.closures[p], &model.graph.cost);
                }
                // From-scratch oracle over the distinct members of the stack.
                let mut seeds: Vec<usize> =
                    stack.iter().map(|&p| vc_graph.vcs[p]).collect();
                seeds.sort_unstable();
                seeds.dedup();
                let scratch = if seeds.is_empty() {
                    spt_cost::Partition::empty(&model.graph)
                } else {
                    spt_cost::Partition::from_seeds(&model.graph, &seeds).unwrap()
                };
                prop_assert_eq!(&delta.mask[..], scratch.mask(), "mask after {:?}", &stack);
                prop_assert_eq!(delta.size, scratch.size(), "size after {:?}", &stack);
                let c_inc = model
                    .cost_graph()
                    .misspeculation_cost_with(&delta.mask, &mut eval);
                let c_ref = model.misspeculation_cost(&scratch);
                prop_assert!((c_inc - c_ref).abs() < 1e-12, "{c_inc} vs {c_ref}");
                let v_inc = model
                    .cost_graph()
                    .reexec_probs_into(&delta.mask, &mut eval)
                    .to_vec();
                let v_ref = model.reexec_probs(&scratch);
                for (a, b) in v_inc.iter().zip(&v_ref) {
                    prop_assert!((a - b).abs() < 1e-12, "{a} vs {b}");
                }
            }
        }

        /// The incremental search and the from-scratch reference agree on
        /// random loops and size bounds.
        #[test]
        fn search_matches_reference(
            updates in proptest::collection::vec((0usize..4, 1i64..5), 1..5),
            max_size in 1u64..60,
        ) {
            let src = random_loop_source(&updates);
            let module = spt_frontend::compile(&src).unwrap();
            let func = module.func_by_name("f").unwrap();
            let graph = DepGraph::build(
                &module, func, LoopId::new(0),
                Profiles::default(), &DepGraphConfig::default(),
            );
            let model = LoopCostModel::new(graph);
            let cfg = SearchConfig { max_prefork_size: max_size, ..SearchConfig::default() };
            let inc = optimal_partition(&model, &cfg);
            let refr = optimal_partition_reference(&model, &cfg);
            prop_assert_eq!(inc.cost.to_bits(), refr.cost.to_bits());
            prop_assert_eq!(inc.chosen, refr.chosen);
            prop_assert_eq!(inc.partition.mask(), refr.partition.mask());
            prop_assert_eq!(inc.visited, refr.visited);
        }

        /// Pruning never changes the optimum (both heuristics are exact).
        #[test]
        fn pruning_is_exact(
            updates in proptest::collection::vec((0usize..4, 1i64..5), 1..5),
            max_size in 1u64..60,
        ) {
            let src = random_loop_source(&updates);
            let module = spt_frontend::compile(&src).unwrap();
            let func = module.func_by_name("f").unwrap();
            let graph = DepGraph::build(
                &module, func, LoopId::new(0),
                Profiles::default(), &DepGraphConfig::default(),
            );
            let model = LoopCostModel::new(graph);
            let base = SearchConfig { max_prefork_size: max_size, ..SearchConfig::default() };
            let none = SearchConfig {
                prune_bound: false, prune_size: false, ..base.clone()
            };
            let with = optimal_partition(&model, &base);
            let without = optimal_partition(&model, &none);
            prop_assert!((with.cost - without.cost).abs() < 1e-9,
                "pruned {} vs unpruned {}", with.cost, without.cost);
        }
    }
}

//! Optimal SPT loop partitioning (§5 of the paper).
//!
//! Formulation: *find a legal loop partition with minimum misspeculation
//! cost, subject to the pre-fork region size being at most a threshold.* A
//! partition is legal when it preserves all forward intra-iteration
//! dependences — equivalently, when the pre-fork region is a
//! dependence-closure of the violation candidates it contains.
//!
//! The search space is restricted to sets of violation candidates (the only
//! statements whose placement changes the cost), organized by the
//! [`VcDepGraph`]: candidate `N` is a successor of candidate `S` when `N`
//! depends intra-iteration on `S`, so `S` must enter the pre-fork region
//! before `N` can (§5.1). A branch-and-bound enumeration visits candidate
//! sets in topological order — at each step only candidates with a larger
//! topological number may be added, avoiding duplicate visits (§5.2) — with
//! the paper's two pruning heuristics (§5.2.1):
//!
//! 1. **size pruning** — pre-fork size is monotone in the candidate set, so
//!    once a set exceeds the size threshold its whole subtree is dead;
//! 2. **bound pruning** — misspeculation cost is monotone *decreasing* in
//!    the candidate set, so the cost with *all* still-addable candidates
//!    included lower-bounds every descendant; if that bound is no better
//!    than the best found, the subtree is dead.
//!
//! Loops with more than [`SearchConfig::max_vcs`] candidates are skipped,
//! exactly as the paper skips loops with more than 30.

use spt_cost::{LoopCostModel, Partition};

/// The violation-candidate dependence graph (§5.1).
#[derive(Clone, Debug)]
pub struct VcDepGraph {
    /// Violation candidates as dep-graph node indices, ascending (this is a
    /// topological order: intra edges only go forward in node order).
    pub vcs: Vec<usize>,
    /// `preds[k]` = positions (into `vcs`) of candidates that candidate `k`
    /// transitively depends on intra-iteration.
    pub preds: Vec<Vec<usize>>,
    /// Positions of candidates that can never be moved (their closure
    /// contains a pinned node).
    pub immovable: Vec<bool>,
}

impl VcDepGraph {
    /// Builds the VC-dep graph from a loop cost model.
    pub fn build(model: &LoopCostModel) -> Self {
        let vcs: Vec<usize> = model.vcs().to_vec();
        let pos_of = |node: usize| vcs.iter().position(|&v| v == node);
        let mut preds: Vec<Vec<usize>> = Vec::with_capacity(vcs.len());
        let mut immovable = Vec::with_capacity(vcs.len());
        for &vc in &vcs {
            let closure = model.graph.closure(&[vc]);
            immovable.push(!model.graph.closure_is_legal(&closure));
            let mut ps = Vec::new();
            for &n in &closure {
                if n != vc {
                    if let Some(p) = pos_of(n) {
                        ps.push(p);
                    }
                }
            }
            ps.sort_unstable();
            preds.push(ps);
        }
        VcDepGraph {
            vcs,
            preds,
            immovable,
        }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.vcs.len()
    }

    /// Returns `true` when there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.vcs.is_empty()
    }
}

/// Search parameters.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Maximum pre-fork region size (absolute, in the cost model's latency
    /// units). The driver derives it as a fraction of the loop body size
    /// (§6.1 criterion 2).
    pub max_prefork_size: u64,
    /// Skip loops with more candidates than this (paper: 30).
    pub max_vcs: usize,
    /// Enable pruning heuristic 1 (size). Disable only for ablation.
    pub prune_size: bool,
    /// Enable pruning heuristic 2 (cost lower bound). Disable only for
    /// ablation.
    pub prune_bound: bool,
    /// Hard cap on visited search nodes (defensive; the paper's cap is the
    /// VC limit).
    pub max_visited: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            max_prefork_size: u64::MAX,
            max_vcs: 30,
            prune_size: true,
            prune_bound: true,
            max_visited: 1_000_000,
        }
    }
}

/// The outcome of an optimal-partition search.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// The best legal partition within the size threshold.
    pub partition: Partition,
    /// Its misspeculation cost.
    pub cost: f64,
    /// Candidate positions chosen into the pre-fork region.
    pub chosen: Vec<usize>,
    /// Search-tree nodes visited (ablation metric).
    pub visited: u64,
    /// Subtrees cut by size pruning.
    pub pruned_size: u64,
    /// Subtrees cut by bound pruning.
    pub pruned_bound: u64,
    /// `true` when the loop was skipped for having too many candidates; the
    /// returned partition is then the empty one.
    pub skipped_too_many_vcs: bool,
}

/// Finds the minimum-misspeculation-cost legal partition of the loop, via
/// branch-and-bound over violation-candidate sets.
pub fn optimal_partition(model: &LoopCostModel, config: &SearchConfig) -> SearchResult {
    let vc_graph = VcDepGraph::build(model);
    let empty = Partition::empty(&model.graph);
    let empty_cost = model.misspeculation_cost(&empty);

    if vc_graph.len() > config.max_vcs {
        return SearchResult {
            partition: empty,
            cost: empty_cost,
            chosen: Vec::new(),
            visited: 0,
            pruned_size: 0,
            pruned_bound: 0,
            skipped_too_many_vcs: true,
        };
    }

    struct Ctx<'a> {
        model: &'a LoopCostModel,
        vc_graph: &'a VcDepGraph,
        config: &'a SearchConfig,
        best_cost: f64,
        best_size: u64,
        best_set: Vec<usize>,
        visited: u64,
        pruned_size: u64,
        pruned_bound: u64,
    }

    impl Ctx<'_> {
        /// The seeds (dep-graph nodes) for a candidate-position set.
        fn seeds(&self, set: &[usize]) -> Vec<usize> {
            set.iter().map(|&p| self.vc_graph.vcs[p]).collect()
        }

        fn consider(&mut self, set: &[usize], partition: &Partition, cost: f64) {
            let better = cost < self.best_cost - 1e-12
                || (cost < self.best_cost + 1e-12 && partition.size() < self.best_size);
            if better {
                self.best_cost = cost;
                self.best_size = partition.size();
                self.best_set = set.to_vec();
            }
        }

        /// Explores descendants of `set` (whose max position is `max_pos`).
        fn search(&mut self, set: &mut Vec<usize>, max_pos: Option<usize>) {
            if self.visited >= self.config.max_visited {
                return;
            }
            // Bound pruning: the best any descendant can do is the cost with
            // every still-addable candidate included.
            if self.config.prune_bound {
                let mut all: Vec<usize> = set.clone();
                for p in max_pos.map_or(0, |m| m + 1)..self.vc_graph.len() {
                    if !self.vc_graph.immovable[p] {
                        all.push(p);
                    }
                }
                if all.len() > set.len() {
                    let seeds = self.seeds(&all);
                    if let Some(part) = Partition::from_seeds(&self.model.graph, &seeds) {
                        let bound = self.model.misspeculation_cost(&part);
                        if bound >= self.best_cost - 1e-12 {
                            self.pruned_bound += 1;
                            return;
                        }
                    }
                }
            }

            let start = max_pos.map_or(0, |m| m + 1);
            for p in start..self.vc_graph.len() {
                if self.visited >= self.config.max_visited {
                    return;
                }
                if self.vc_graph.immovable[p] {
                    continue;
                }
                // All VC-dep predecessors must already be in the set.
                if !self.vc_graph.preds[p].iter().all(|q| set.contains(q)) {
                    continue;
                }
                set.push(p);
                self.visited += 1;
                let seeds = self.seeds(set);
                match Partition::from_seeds(&self.model.graph, &seeds) {
                    Some(partition) => {
                        let oversize = partition.size() > self.config.max_prefork_size;
                        if oversize {
                            if self.config.prune_size {
                                // Size is monotone: the whole subtree is dead.
                                self.pruned_size += 1;
                                set.pop();
                                continue;
                            }
                            // Ablation mode: not a candidate answer, but
                            // descendants are still (pointlessly) explored.
                            self.search(set, Some(p));
                        } else {
                            let cost = self.model.misspeculation_cost(&partition);
                            self.consider(set, &partition, cost);
                            self.search(set, Some(p));
                        }
                    }
                    None => {
                        // Illegal closure; supersets stay illegal.
                    }
                }
                set.pop();
            }
        }
    }

    let mut ctx = Ctx {
        model,
        vc_graph: &vc_graph,
        config,
        best_cost: empty_cost,
        best_size: 0,
        best_set: Vec::new(),
        visited: 0,
        pruned_size: 0,
        pruned_bound: 0,
    };
    let mut set = Vec::new();
    ctx.search(&mut set, None);

    let chosen = ctx.best_set.clone();
    let seeds: Vec<usize> = chosen.iter().map(|&p| vc_graph.vcs[p]).collect();
    let partition = if seeds.is_empty() {
        Partition::empty(&model.graph)
    } else {
        Partition::from_seeds(&model.graph, &seeds).expect("best set was legal during search")
    };
    SearchResult {
        cost: ctx.best_cost,
        partition,
        chosen,
        visited: ctx.visited,
        pruned_size: ctx.pruned_size,
        pruned_bound: ctx.pruned_bound,
        skipped_too_many_vcs: false,
    }
}

/// A greedy baseline for ablation: repeatedly add the single candidate that
/// most reduces cost, while the size threshold holds.
pub fn greedy_partition(model: &LoopCostModel, config: &SearchConfig) -> SearchResult {
    let vc_graph = VcDepGraph::build(model);
    let mut chosen: Vec<usize> = Vec::new();
    let mut best_partition = Partition::empty(&model.graph);
    let mut best_cost = model.misspeculation_cost(&best_partition);
    let mut visited = 0u64;
    loop {
        let mut improved: Option<(usize, Partition, f64)> = None;
        for p in 0..vc_graph.len() {
            if chosen.contains(&p) || vc_graph.immovable[p] {
                continue;
            }
            if !vc_graph.preds[p].iter().all(|q| chosen.contains(q)) {
                continue;
            }
            let mut candidate = chosen.clone();
            candidate.push(p);
            let seeds: Vec<usize> = candidate.iter().map(|&q| vc_graph.vcs[q]).collect();
            visited += 1;
            if let Some(part) = Partition::from_seeds(&model.graph, &seeds) {
                if part.size() > config.max_prefork_size {
                    continue;
                }
                let cost = model.misspeculation_cost(&part);
                if cost < best_cost - 1e-12 && improved.as_ref().is_none_or(|(_, _, c)| cost < *c)
                {
                    improved = Some((p, part, cost));
                }
            }
        }
        match improved {
            Some((p, part, cost)) => {
                chosen.push(p);
                best_partition = part;
                best_cost = cost;
            }
            None => break,
        }
    }
    SearchResult {
        partition: best_partition,
        cost: best_cost,
        chosen,
        visited,
        pruned_size: 0,
        pruned_bound: 0,
        skipped_too_many_vcs: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spt_cost::dep_graph::{DepGraph, DepGraphConfig, Profiles};
    use spt_ir::loops::LoopId;

    fn model_for(src: &str, fname: &str) -> LoopCostModel {
        let module = spt_frontend::compile(src).unwrap();
        let func = module.func_by_name(fname).unwrap();
        let graph = DepGraph::build(
            &module,
            func,
            LoopId::new(0),
            Profiles::default(),
            &DepGraphConfig::default(),
        );
        LoopCostModel::new(graph)
    }

    const INDUCTION: &str = "
        fn f(n: int) -> int {
            let i = 0;
            let s = 0;
            while (i < n) {
                s = s + i * 3;
                i = i + 1;
            }
            return s;
        }
    ";

    #[test]
    fn finds_zero_cost_partition_when_unconstrained() {
        let m = model_for(INDUCTION, "f");
        let r = optimal_partition(&m, &SearchConfig::default());
        assert!(!r.skipped_too_many_vcs);
        assert!(r.cost < 1e-9, "cost = {}", r.cost);
        assert!(!r.partition.is_empty());
        assert!(r.visited > 0);
    }

    #[test]
    fn size_threshold_constrains_result() {
        let m = model_for(INDUCTION, "f");
        let unconstrained = optimal_partition(&m, &SearchConfig::default());
        let tight = SearchConfig {
            max_prefork_size: 1,
            ..SearchConfig::default()
        };
        let r = optimal_partition(&m, &tight);
        assert!(r.partition.size() <= 1);
        assert!(r.cost >= unconstrained.cost - 1e-12);
    }

    #[test]
    fn optimal_matches_exhaustive_without_pruning() {
        let m = model_for(INDUCTION, "f");
        let with = optimal_partition(&m, &SearchConfig::default());
        let without = optimal_partition(
            &m,
            &SearchConfig {
                prune_bound: false,
                prune_size: false,
                ..SearchConfig::default()
            },
        );
        assert!((with.cost - without.cost).abs() < 1e-12);
        assert!(with.visited <= without.visited);
    }

    #[test]
    fn bound_pruning_reduces_visits() {
        // A loop with several independent violation candidates.
        let src = "
            fn f(n: int) -> int {
                let a = 0; let b = 0; let c = 0; let d = 1; let i = 0;
                while (i < n) {
                    a = a + 1;
                    b = b + 2;
                    c = c + 3;
                    d = d * 2;
                    i = i + 1;
                }
                return a + b + c + d;
            }
        ";
        let m = model_for(src, "f");
        let pruned = optimal_partition(&m, &SearchConfig::default());
        let unpruned = optimal_partition(
            &m,
            &SearchConfig {
                prune_bound: false,
                ..SearchConfig::default()
            },
        );
        assert!((pruned.cost - unpruned.cost).abs() < 1e-12, "same optimum");
        assert!(
            pruned.visited < unpruned.visited,
            "pruning must help: {} vs {}",
            pruned.visited,
            unpruned.visited
        );
    }

    #[test]
    fn too_many_vcs_skips() {
        let m = model_for(INDUCTION, "f");
        let r = optimal_partition(
            &m,
            &SearchConfig {
                max_vcs: 0,
                ..SearchConfig::default()
            },
        );
        assert!(r.skipped_too_many_vcs);
        assert!(r.partition.is_empty());
    }

    #[test]
    fn vc_dep_graph_orders_dependent_candidates() {
        // b depends on a (same iteration): a must precede b in any set.
        let src = "
            fn f(n: int) -> int {
                let a = 0; let b = 0; let i = 0;
                while (i < n) {
                    a = a + 1;
                    b = b + a;
                    i = i + 1;
                }
                return b;
            }
        ";
        let m = model_for(src, "f");
        let g = VcDepGraph::build(&m);
        assert!(g.len() >= 2);
        // At least one candidate has a predecessor.
        assert!(g.preds.iter().any(|p| !p.is_empty()));
        // And the search still finds the zero-cost answer.
        let r = optimal_partition(&m, &SearchConfig::default());
        assert!(r.cost < 1e-9);
    }

    #[test]
    fn greedy_never_beats_optimal() {
        let src = "
            global a[512]: int;
            fn f(n: int) -> int {
                let s = 0; let t = 0; let i = 0;
                while (i < n) {
                    t = s / 7 + t;
                    s = s + a[i];
                    i = i + 1;
                }
                return t;
            }
        ";
        let m = model_for(src, "f");
        let cfg = SearchConfig::default();
        let opt = optimal_partition(&m, &cfg);
        let greedy = greedy_partition(&m, &cfg);
        assert!(opt.cost <= greedy.cost + 1e-12);
    }

    #[test]
    fn pinned_candidates_are_never_chosen() {
        let src = "
            global t: int;
            fn bump(v: int) -> int { t = t + v; return t; }
            fn f(n: int) -> int {
                let s = 0;
                let i = 0;
                while (i < n) {
                    s = s + bump(i);
                    i = i + 1;
                }
                return s;
            }
        ";
        let m = model_for(src, "f");
        let r = optimal_partition(&m, &SearchConfig::default());
        // The call's cross deps can't be removed, so cost stays positive,
        // but the induction update can still move.
        assert!(r.cost > 0.0);
        let module = spt_frontend::compile(src).unwrap();
        let f = module.func(module.func_by_name("f").unwrap());
        for n in r.partition.nodes() {
            assert!(
                !matches!(f.inst(m.graph.nodes[n]).kind, spt_ir::InstKind::Call { .. }),
                "pinned call moved into pre-fork region"
            );
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use spt_cost::dep_graph::{DepGraph, DepGraphConfig, Profiles};
    use spt_ir::loops::LoopId;

    /// Generates a random scalar-update loop in minic and checks search
    /// invariants on it.
    fn random_loop_source(updates: &[(usize, i64)]) -> String {
        let mut body = String::new();
        let mut decls = String::new();
        let n_vars = updates.iter().map(|&(v, _)| v).max().unwrap_or(0) + 1;
        for v in 0..n_vars {
            decls.push_str(&format!("let x{v} = {v};\n"));
        }
        for &(v, k) in updates {
            let src = (v + 1) % n_vars;
            body.push_str(&format!("x{v} = x{v} + x{src} * {k};\n"));
        }
        let mut ret = String::from("0");
        for v in 0..n_vars {
            ret.push_str(&format!(" + x{v}"));
        }
        format!(
            "fn f(n: int) -> int {{ {decls} let i = 0; while (i < n) {{ {body} i = i + 1; }} return {ret}; }}"
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The search result never exceeds the size bound, and its cost never
        /// exceeds the empty partition's.
        #[test]
        fn search_respects_constraints(
            updates in proptest::collection::vec((0usize..4, 1i64..5), 1..5),
            max_size in 1u64..40,
        ) {
            let src = random_loop_source(&updates);
            let module = spt_frontend::compile(&src).unwrap();
            let func = module.func_by_name("f").unwrap();
            let graph = DepGraph::build(
                &module, func, LoopId::new(0),
                Profiles::default(), &DepGraphConfig::default(),
            );
            let model = LoopCostModel::new(graph);
            let empty_cost =
                model.misspeculation_cost(&spt_cost::Partition::empty(&model.graph));
            let cfg = SearchConfig { max_prefork_size: max_size, ..SearchConfig::default() };
            let r = optimal_partition(&model, &cfg);
            prop_assert!(r.partition.size() <= max_size || r.partition.is_empty());
            prop_assert!(r.cost <= empty_cost + 1e-9);
        }

        /// Pruning never changes the optimum (both heuristics are exact).
        #[test]
        fn pruning_is_exact(
            updates in proptest::collection::vec((0usize..4, 1i64..5), 1..5),
            max_size in 1u64..60,
        ) {
            let src = random_loop_source(&updates);
            let module = spt_frontend::compile(&src).unwrap();
            let func = module.func_by_name("f").unwrap();
            let graph = DepGraph::build(
                &module, func, LoopId::new(0),
                Profiles::default(), &DepGraphConfig::default(),
            );
            let model = LoopCostModel::new(graph);
            let base = SearchConfig { max_prefork_size: max_size, ..SearchConfig::default() };
            let none = SearchConfig {
                prune_bound: false, prune_size: false, ..base.clone()
            };
            let with = optimal_partition(&model, &base);
            let without = optimal_partition(&model, &none);
            prop_assert!((with.cost - without.cost).abs() < 1e-9,
                "pruned {} vs unpruned {}", with.cost, without.cost);
        }
    }
}

//! Additional partition-search integration tests: visited-node caps,
//! dependent-candidate ordering, and threshold interactions.

use spt_cost::dep_graph::{DepGraph, DepGraphConfig, Profiles};
use spt_cost::LoopCostModel;
use spt_ir::loops::LoopId;
use spt_partition::{optimal_partition, SearchConfig, VcDepGraph};

fn model_with_k_vcs(k: usize) -> LoopCostModel {
    let mut decls = String::new();
    let mut body = String::new();
    let mut ret = String::from("0");
    for v in 0..k {
        decls.push_str(&format!("let x{v} = {v};\n"));
        body.push_str(&format!("x{v} = x{v} + i % {};\n", v + 2));
        ret.push_str(&format!(" + x{v}"));
    }
    let src = format!(
        "fn f(n: int) -> int {{ {decls} let i = 0; while (i < n) {{ {body} i = i + 1; }} return {ret}; }}"
    );
    let module = spt_frontend::compile(&src).unwrap();
    let func = module.func_by_name("f").unwrap();
    let graph = DepGraph::build(
        &module,
        func,
        LoopId::new(0),
        Profiles::default(),
        &DepGraphConfig::default(),
    );
    LoopCostModel::new(graph)
}

#[test]
fn visited_cap_bounds_the_search() {
    let model = model_with_k_vcs(14);
    let capped = SearchConfig {
        max_visited: 50,
        prune_bound: false,
        prune_size: false,
        ..SearchConfig::default()
    };
    let r = optimal_partition(&model, &capped);
    assert!(
        r.visited <= 60,
        "cap respected (approximately): {}",
        r.visited
    );
    // Still returns *a* legal answer no worse than doing nothing.
    let empty_cost = model.misspeculation_cost(&spt_cost::Partition::empty(&model.graph));
    assert!(r.cost <= empty_cost + 1e-9);
}

#[test]
fn chained_candidates_enter_in_dependency_order() {
    // x0 <- x1 <- x2 dependency chain within the iteration.
    let src = "
        fn f(n: int) -> int {
            let x0 = 1; let x1 = 1; let x2 = 1; let i = 0;
            while (i < n) {
                x0 = x0 + 1;
                x1 = x1 + x0;
                x2 = x2 + x1;
                i = i + 1;
            }
            return x2;
        }
    ";
    let module = spt_frontend::compile(src).unwrap();
    let func = module.func_by_name("f").unwrap();
    let graph = DepGraph::build(
        &module,
        func,
        LoopId::new(0),
        Profiles::default(),
        &DepGraphConfig::default(),
    );
    let model = LoopCostModel::new(graph);
    let vc_graph = VcDepGraph::build(&model);
    // The chain forces at least two candidates to have predecessors.
    let with_preds = vc_graph.preds.iter().filter(|p| !p.is_empty()).count();
    assert!(with_preds >= 2, "{:?}", vc_graph.preds);
    // Zero-cost optimum still reachable.
    let r = optimal_partition(&model, &SearchConfig::default());
    assert!(r.cost < 1e-9, "cost = {}", r.cost);
    // And the chosen set is closed under VC-dep predecessors.
    for &p in &r.chosen {
        for &q in &vc_graph.preds[p] {
            assert!(r.chosen.contains(&q), "{:?} missing pred {q}", r.chosen);
        }
    }
}

#[test]
fn zero_size_threshold_forces_empty_partition() {
    let model = model_with_k_vcs(4);
    let r = optimal_partition(
        &model,
        &SearchConfig {
            max_prefork_size: 0,
            ..SearchConfig::default()
        },
    );
    assert!(r.partition.is_empty());
    assert!(r.pruned_size > 0, "every child pruned by size");
}

#[test]
fn search_statistics_are_consistent() {
    let model = model_with_k_vcs(8);
    let r = optimal_partition(&model, &SearchConfig::default());
    assert!(!r.skipped_too_many_vcs);
    assert!(r.visited >= r.chosen.len() as u64);
    // Chosen positions are strictly increasing (topological order).
    for w in r.chosen.windows(2) {
        assert!(w[0] < w[1], "{:?}", r.chosen);
    }
}

//! Function-granular analysis units: the cacheable product of pass-1 loop
//! analysis for one function.
//!
//! The incremental pipeline (see `spt-core`) keys these on
//! `Function::content_hash` plus a context hash folding everything an
//! analysis reads beyond the function's own IR — configuration knobs, the
//! globals table, callee effect summaries and the function's slice of the
//! edge/dependence profiles. A [`FuncAnalysisUnit`] therefore reproduces the
//! analysis results *bit-identically*: every field of a [`LoopFragment`]
//! maps one-to-one onto the pipeline's per-loop analysis record, with `f64`
//! costs carried as bit patterns so a decode → report path is byte-equal to
//! a recompute → report path.
//!
//! Encoding follows the sim-memo codec's conventions: magic, format
//! version, varint fields, and a trailing FNV checksum; any damage decodes
//! to an error that the artifact cache maps to [`crate::LoadOutcome::Corrupt`]
//! (evict + warn + recompute, never a panic).

use crate::codec::{get_varint, put_varint, Fnv};

/// Magic prefix of function-analysis-unit artifact files.
const FUNC_UNIT_MAGIC: &[u8; 8] = b"SPTFUNCA";

/// Bumped on any change to [`LoopFragment`]'s meaning or encoding; folded
/// into every function-unit cache key so stale-format entries simply miss.
pub const FUNC_UNIT_FORMAT_VERSION: u32 = 1;

/// The analysis result of one loop, in cache-stable form. Fields mirror the
/// pipeline's internal per-loop analysis record (headers/instructions by
/// index, cost by `f64` bit pattern, move/replicate sets sorted).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LoopFragment {
    /// Header block index within the function.
    pub header: u32,
    /// Nesting depth (0 = outermost).
    pub depth: u64,
    /// Header block index of the parent loop, if nested.
    pub parent_header: Option<u32>,
    /// Static body size in cost-model units.
    pub body_size: u64,
    /// Number of value communications the dependence graph found.
    pub num_vcs: u64,
    /// `f64::to_bits` of the best partition's estimated mis-speculation cost.
    pub cost_bits: u64,
    /// Size of the pre-fork region under the best partition.
    pub prefork_size: u64,
    /// Instruction indices moved into the pre-fork region, sorted.
    pub move_insts: Vec<u32>,
    /// Instruction indices replicated into the pre-fork region, sorted.
    pub replicate_insts: Vec<u32>,
    /// The loop had more VCs than the search admits and was skipped.
    pub skipped_too_many_vcs: bool,
    /// Canonical loop shape (preheader + single latch) and a legal live-out
    /// closure — a transformation precondition.
    pub canonical: bool,
    /// Partition-search states visited.
    pub search_visited: u64,
    /// The search hit its visited-state budget (deterministic for a given
    /// budget, so safe to cache; the warning diagnostic is regenerated from
    /// this flag on a cache hit).
    pub search_budget_exhausted: bool,
}

/// Every loop analysis of one function, in loop-forest discovery order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FuncAnalysisUnit {
    /// Per-loop fragments, ordered as the function's loop forest iterates.
    pub fragments: Vec<LoopFragment>,
}

impl FuncAnalysisUnit {
    /// Approximate resident size, for byte-budgeted memory tiers.
    pub fn approx_bytes(&self) -> u64 {
        self.fragments
            .iter()
            .map(|f| 96 + 4 * (f.move_insts.len() + f.replicate_insts.len()) as u64)
            .sum::<u64>()
            + 32
    }

    /// Serializes the unit bit-exactly (see the module docs for framing).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.fragments.len() * 64);
        out.extend_from_slice(FUNC_UNIT_MAGIC);
        put_varint(&mut out, FUNC_UNIT_FORMAT_VERSION as u64);
        put_varint(&mut out, self.fragments.len() as u64);
        for f in &self.fragments {
            put_varint(&mut out, f.header as u64);
            put_varint(&mut out, f.depth);
            match f.parent_header {
                Some(p) => {
                    out.push(1);
                    put_varint(&mut out, p as u64);
                }
                None => out.push(0),
            }
            put_varint(&mut out, f.body_size);
            put_varint(&mut out, f.num_vcs);
            put_varint(&mut out, f.cost_bits);
            put_varint(&mut out, f.prefork_size);
            put_varint(&mut out, f.move_insts.len() as u64);
            for &i in &f.move_insts {
                put_varint(&mut out, i as u64);
            }
            put_varint(&mut out, f.replicate_insts.len() as u64);
            for &i in &f.replicate_insts {
                put_varint(&mut out, i as u64);
            }
            let flags = (f.skipped_too_many_vcs as u8)
                | ((f.canonical as u8) << 1)
                | ((f.search_budget_exhausted as u8) << 2);
            out.push(flags);
            put_varint(&mut out, f.search_visited);
        }
        let mut h = Fnv::new();
        h.update(&out);
        out.extend_from_slice(&h.finish().to_le_bytes());
        out
    }

    /// Inverse of [`FuncAnalysisUnit::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first framing/checksum/version problem.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, String> {
        if buf.len() < FUNC_UNIT_MAGIC.len() + 8 {
            return Err("function unit truncated".into());
        }
        if &buf[..FUNC_UNIT_MAGIC.len()] != FUNC_UNIT_MAGIC {
            return Err("bad function unit magic".into());
        }
        let (body, tail) = buf.split_at(buf.len() - 8);
        let mut h = Fnv::new();
        h.update(body);
        let mut raw = [0u8; 8];
        raw.copy_from_slice(tail);
        if h.finish() != u64::from_le_bytes(raw) {
            return Err("function unit checksum mismatch".into());
        }

        let mut pos = FUNC_UNIT_MAGIC.len();
        let take = |pos: &mut usize| get_varint(body, pos).ok_or("function unit truncated");
        let version = take(&mut pos)?;
        if version != FUNC_UNIT_FORMAT_VERSION as u64 {
            return Err(format!(
                "stale function unit version {version} (expected {FUNC_UNIT_FORMAT_VERSION})"
            ));
        }
        let nfrags = take(&mut pos)? as usize;
        let mut fragments = Vec::with_capacity(nfrags.min(1 << 16));
        for _ in 0..nfrags {
            let header = take(&mut pos)? as u32;
            let depth = take(&mut pos)?;
            let parent_header = match body.get(pos).copied().ok_or("function unit truncated")? {
                0 => {
                    pos += 1;
                    None
                }
                1 => {
                    pos += 1;
                    Some(take(&mut pos)? as u32)
                }
                _ => return Err("bad parent tag in function unit".into()),
            };
            let body_size = take(&mut pos)?;
            let num_vcs = take(&mut pos)?;
            let cost_bits = take(&mut pos)?;
            let prefork_size = take(&mut pos)?;
            let nmove = take(&mut pos)? as usize;
            let mut move_insts = Vec::with_capacity(nmove.min(1 << 20));
            for _ in 0..nmove {
                move_insts.push(take(&mut pos)? as u32);
            }
            let nrep = take(&mut pos)? as usize;
            let mut replicate_insts = Vec::with_capacity(nrep.min(1 << 20));
            for _ in 0..nrep {
                replicate_insts.push(take(&mut pos)? as u32);
            }
            let flags = body.get(pos).copied().ok_or("function unit truncated")?;
            pos += 1;
            if flags > 0b111 {
                return Err("bad flags byte in function unit".into());
            }
            let search_visited = take(&mut pos)?;
            fragments.push(LoopFragment {
                header,
                depth,
                parent_header,
                body_size,
                num_vcs,
                cost_bits,
                prefork_size,
                move_insts,
                replicate_insts,
                skipped_too_many_vcs: flags & 1 != 0,
                canonical: flags & 2 != 0,
                search_visited,
                search_budget_exhausted: flags & 4 != 0,
            });
        }
        if pos != body.len() {
            return Err("function unit has trailing bytes".into());
        }
        Ok(FuncAnalysisUnit { fragments })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FuncAnalysisUnit {
        FuncAnalysisUnit {
            fragments: vec![
                LoopFragment {
                    header: 3,
                    depth: 0,
                    parent_header: None,
                    body_size: 120,
                    num_vcs: 7,
                    cost_bits: 3.5f64.to_bits(),
                    prefork_size: 11,
                    move_insts: vec![1, 4, 9],
                    replicate_insts: vec![2],
                    skipped_too_many_vcs: false,
                    canonical: true,
                    search_visited: 4096,
                    search_budget_exhausted: false,
                },
                LoopFragment {
                    header: 7,
                    depth: 1,
                    parent_header: Some(3),
                    body_size: 0,
                    num_vcs: 0,
                    cost_bits: f64::INFINITY.to_bits(),
                    prefork_size: 0,
                    move_insts: vec![],
                    replicate_insts: vec![],
                    skipped_too_many_vcs: true,
                    canonical: false,
                    search_visited: u64::MAX,
                    search_budget_exhausted: true,
                },
            ],
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let u = sample();
        assert_eq!(FuncAnalysisUnit::from_bytes(&u.to_bytes()).as_ref(), Ok(&u));
        let empty = FuncAnalysisUnit::default();
        assert_eq!(
            FuncAnalysisUnit::from_bytes(&empty.to_bytes()).as_ref(),
            Ok(&empty)
        );
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = sample().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x5a;
        assert!(FuncAnalysisUnit::from_bytes(&bytes).is_err());
        let whole = sample().to_bytes();
        assert!(FuncAnalysisUnit::from_bytes(&whole[..whole.len() - 3]).is_err());
        assert!(FuncAnalysisUnit::from_bytes(b"junk").is_err());
    }
}

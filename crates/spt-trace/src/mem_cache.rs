//! Sharded, byte-bounded in-memory LRU for hot compilation artifacts.
//!
//! The compile daemon keeps decoded frontend modules, whole compiled units
//! (transformed module + report renderings), captured traces, `SimResult`s
//! and per-function analysis/emission units *hot* in front of the on-disk
//! `.spt-cache/`: a warm probe costs one shard lock and an `Arc` clone
//! instead of file I/O plus deserialization. Keys are 64-bit content
//! addresses (FNV over the artifact kind, `Module::content_hash` or
//! `Function::content_hash`, configuration hash, entry, and inputs — see
//! `spt-serve`'s service layer and `spt-core`'s incremental cache), so an
//! entry is immutable: a changed input is a new key, never an in-place
//! update.
//!
//! Layout: `shards` independent [`Mutex`]-guarded maps; a key's shard is
//! picked by its high bits (the low bits already position entries within the
//! map). Each shard enforces `budget / shards` bytes by evicting its
//! least-recently-used entries — recency is a per-shard logical clock bumped
//! on every hit, and eviction scans for the minimum, which is linear but
//! cheap at the entry counts a shard holds (artifacts are kilobytes to
//! megabytes, so a shard's budget caps it at a few hundred entries).
//! An artifact larger than a whole shard budget is simply not admitted
//! (counted as an oversize rejection): the cache is an accelerator and must
//! never be forced over its bound by one giant value.
//!
//! Counters (hits, misses, insertions, evictions, oversize rejections,
//! resident bytes/entries) are per-shard and lock-protected alongside the
//! data, so a [`ShardStats`] snapshot is always internally consistent.

use std::collections::HashMap;
use std::sync::Mutex;

/// One cached value: the artifact plus its billed size.
struct Entry<V> {
    value: V,
    bytes: u64,
    last_used: u64,
}

/// A shard: its map, recency clock, byte occupancy and counters.
struct Shard<V> {
    map: HashMap<u64, Entry<V>>,
    clock: u64,
    bytes: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    oversize_rejections: u64,
}

impl<V> Default for Shard<V> {
    fn default() -> Self {
        Shard {
            map: HashMap::new(),
            clock: 0,
            bytes: 0,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
            oversize_rejections: 0,
        }
    }
}

/// Counter snapshot of one shard (or the whole cache, summed).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Probes that found their key.
    pub hits: u64,
    /// Probes that did not.
    pub misses: u64,
    /// Values admitted.
    pub insertions: u64,
    /// Values removed to make room.
    pub evictions: u64,
    /// Values refused because they exceed a whole shard's budget.
    pub oversize_rejections: u64,
    /// Resident artifact bytes.
    pub bytes: u64,
    /// Resident entries.
    pub entries: u64,
}

impl ShardStats {
    /// Accumulates `other` into `self` (for whole-cache totals).
    fn absorb(&mut self, other: &ShardStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.oversize_rejections += other.oversize_rejections;
        self.bytes += other.bytes;
        self.entries += other.entries;
    }
}

/// The sharded byte-bounded LRU. `V` is cloned out on hit, so callers use
/// cheap handles (`Arc<...>`) as values.
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
    shard_budget: u64,
}

impl<V: Clone> ShardedLru<V> {
    /// A cache of `shards` shards splitting `total_budget_bytes` evenly.
    /// `shards` is clamped to at least 1; a zero budget disables admission
    /// entirely (every insert is an oversize rejection), which keeps the
    /// bound trivially enforced rather than special-cased.
    pub fn new(shards: usize, total_budget_bytes: u64) -> Self {
        let shards = shards.max(1);
        ShardedLru {
            shard_budget: total_budget_bytes / shards as u64,
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard byte budget.
    pub fn shard_budget(&self) -> u64 {
        self.shard_budget
    }

    fn shard_for(&self, key: u64) -> &Mutex<Shard<V>> {
        // High bits pick the shard: HashMap already consumes the low bits,
        // and FNV mixes the whole word, so either end is well distributed.
        let idx = (key >> 48) as usize % self.shards.len();
        &self.shards[idx]
    }

    /// Looks up `key`, refreshing its recency on hit.
    pub fn get(&self, key: u64) -> Option<V> {
        let mut shard = lock(self.shard_for(key));
        shard.clock += 1;
        let clock = shard.clock;
        match shard.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = clock;
                let v = entry.value.clone();
                shard.hits += 1;
                Some(v)
            }
            None => {
                shard.misses += 1;
                None
            }
        }
    }

    /// Admits `value` under `key`, evicting least-recently-used entries
    /// until the shard fits its budget. Values larger than the whole shard
    /// budget are rejected. Re-inserting an existing key replaces the value
    /// (keys are content addresses, so the bytes can only be identical —
    /// replacement keeps the accounting exact anyway).
    pub fn insert(&self, key: u64, value: V, bytes: u64) {
        let mut shard = lock(self.shard_for(key));
        if bytes > self.shard_budget {
            shard.oversize_rejections += 1;
            return;
        }
        shard.clock += 1;
        let clock = shard.clock;
        if let Some(old) = shard.map.remove(&key) {
            shard.bytes -= old.bytes;
        }
        while shard.bytes + bytes > self.shard_budget {
            let Some((&victim, _)) = shard.map.iter().min_by_key(|(k, e)| (e.last_used, **k))
            else {
                break;
            };
            if let Some(evicted) = shard.map.remove(&victim) {
                shard.bytes -= evicted.bytes;
                shard.evictions += 1;
            }
        }
        shard.bytes += bytes;
        shard.insertions += 1;
        shard.map.insert(
            key,
            Entry {
                value,
                bytes,
                last_used: clock,
            },
        );
    }

    /// Counter snapshot of shard `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn shard_stats(&self, idx: usize) -> ShardStats {
        let shard = lock(&self.shards[idx]);
        ShardStats {
            hits: shard.hits,
            misses: shard.misses,
            insertions: shard.insertions,
            evictions: shard.evictions,
            oversize_rejections: shard.oversize_rejections,
            bytes: shard.bytes,
            entries: shard.map.len() as u64,
        }
    }

    /// Whole-cache totals (summed over shards).
    pub fn stats(&self) -> ShardStats {
        let mut total = ShardStats::default();
        for i in 0..self.shards.len() {
            total.absorb(&self.shard_stats(i));
        }
        total
    }
}

/// Locks a shard, ignoring poisoning: a panicking holder can only have been
/// inside `get`/`insert`, both of which leave the map and its accounting
/// consistent at every await-free step that can panic (allocator aborts
/// aside, which kill the process anyway).
fn lock<V>(m: &Mutex<Shard<V>>) -> std::sync::MutexGuard<'_, Shard<V>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_counters() {
        let cache: ShardedLru<u32> = ShardedLru::new(4, 4096);
        assert_eq!(cache.get(1), None);
        cache.insert(1, 11, 8);
        assert_eq!(cache.get(1), Some(11));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert_eq!(s.bytes, 8);
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn byte_budget_is_enforced_per_shard() {
        // One shard so the arithmetic is exact.
        let cache: ShardedLru<u64> = ShardedLru::new(1, 100);
        for k in 0..10 {
            cache.insert(k, k, 30);
        }
        let s = cache.stats();
        assert!(s.bytes <= 100, "resident {} bytes over budget", s.bytes);
        assert_eq!(s.entries, 3);
        assert_eq!(s.evictions, 7);
    }

    #[test]
    fn lru_evicts_the_coldest() {
        let cache: ShardedLru<u64> = ShardedLru::new(1, 90);
        cache.insert(1, 1, 30);
        cache.insert(2, 2, 30);
        cache.insert(3, 3, 30);
        // Touch 1 so 2 is now the coldest.
        assert_eq!(cache.get(1), Some(1));
        cache.insert(4, 4, 30);
        assert_eq!(cache.get(2), None, "coldest entry should be the victim");
        assert_eq!(cache.get(1), Some(1));
        assert_eq!(cache.get(3), Some(3));
        assert_eq!(cache.get(4), Some(4));
    }

    #[test]
    fn oversize_values_are_rejected_not_admitted() {
        let cache: ShardedLru<u64> = ShardedLru::new(2, 64); // 32/shard
        cache.insert(5, 5, 33);
        assert_eq!(cache.get(5), None);
        let s = cache.stats();
        assert_eq!(s.oversize_rejections, 1);
        assert_eq!(s.bytes, 0);
    }

    #[test]
    fn reinsert_replaces_without_double_billing() {
        let cache: ShardedLru<u64> = ShardedLru::new(1, 100);
        cache.insert(7, 1, 40);
        cache.insert(7, 1, 40);
        let s = cache.stats();
        assert_eq!(s.bytes, 40);
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn zero_budget_admits_nothing() {
        let cache: ShardedLru<u64> = ShardedLru::new(4, 0);
        cache.insert(9, 9, 1);
        assert_eq!(cache.get(9), None);
        assert_eq!(cache.stats().bytes, 0);
    }

    #[test]
    fn keys_spread_over_shards() {
        let cache: ShardedLru<u64> = ShardedLru::new(8, 8 << 20);
        // Mix keys the way the service does (FNV output): high bits vary.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for i in 0..256u64 {
            h = (h ^ i).wrapping_mul(0x100_0000_01b3);
            cache.insert(h, i, 16);
        }
        let populated = (0..8).filter(|&i| cache.shard_stats(i).entries > 0).count();
        assert!(populated >= 6, "only {populated}/8 shards populated");
    }
}

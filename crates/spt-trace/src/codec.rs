//! Byte-level encoding primitives for the on-disk trace format: LEB128
//! varints, zigzag mapping for signed deltas, and an FNV-1a running hash
//! used both as the artifact-key mixer and as the file checksum.

/// FNV-1a offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
pub const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Incremental FNV-1a hasher over byte slices.
#[derive(Clone, Copy, Debug)]
pub struct Fnv(pub u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(FNV_OFFSET)
    }
}

impl Fnv {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    pub fn finish(self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.update(bytes);
    h.finish()
}

/// Map a signed value onto an unsigned one so that small magnitudes (of
/// either sign) become small varints.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append `v` to `out` as an LEB128 varint (1..=10 bytes).
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode one LEB128 varint from `buf` starting at `*pos`, advancing `*pos`.
/// Returns `None` on truncation or a varint longer than 10 bytes.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip() {
        let samples = [
            0u64,
            1,
            127,
            128,
            255,
            16_384,
            u32::MAX as u64,
            u64::MAX,
            0x8000_0000_0000_0000,
        ];
        let mut buf = Vec::new();
        for &s in &samples {
            put_varint(&mut buf, s);
        }
        let mut pos = 0;
        for &s in &samples {
            assert_eq!(get_varint(&buf, &mut pos), Some(s));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_truncated_is_none() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert_eq!(get_varint(&buf, &mut pos), None);
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 123_456, -987_654] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes stay small.
        assert!(zigzag(-1) <= 2);
        assert!(zigzag(1) <= 2);
    }

    #[test]
    fn fnv_matches_one_shot() {
        let mut h = Fnv::new();
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.finish(), fnv1a(b"hello world"));
    }
}

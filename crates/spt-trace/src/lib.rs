//! Capture-once / replay-many execution backend.
//!
//! The pipeline and the bench harnesses execute the *same* program many
//! times: once to profile, once per candidate configuration to simulate,
//! and again on every re-run of a bench binary. This crate amortizes that:
//!
//! 1. **Capture** ([`CaptureProfiler`]): one interpreter run records the
//!    dynamic event streams — taken branch directions, load/store cells,
//!    watched def values — as a compact, delta-encoded [`Trace`].
//! 2. **Replay** ([`replay_profile`], [`replay_sim`]): a linear scan of the
//!    trace re-derives the full profile (every `Profiler` hook in original
//!    order) or drives the SPT baseline simulator under any
//!    [`MachineConfig`](spt_sim::MachineConfig), bit-identically to direct
//!    execution and without re-evaluating any arithmetic.
//! 3. **Cache** ([`ArtifactCache`]): traces and simulation memos persist in
//!    a content-addressed directory (`.spt-cache/` by convention), keyed by
//!    module IR hash + entry + inputs + format version, so repeated runs
//!    skip capture entirely.
//!
//! Correctness is anchored by oracles: `tests/trace_equivalence.rs` at the
//! workspace root pins replay output bit-identical to `Interp`,
//! `ReferenceInterp` and `SptSimulator` over the whole benchmark suite.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod capture;
pub mod codec;
pub mod func_unit;
pub mod mem_cache;
pub mod replay_profile;
pub mod replay_sim;
pub mod trace;

pub use cache::{sim_from_bytes, sim_to_bytes, ArtifactCache, CacheCounters, LoadOutcome};
pub use capture::{svp_watch_set, CaptureProfiler, WatchSet};
pub use func_unit::{FuncAnalysisUnit, LoopFragment, FUNC_UNIT_FORMAT_VERSION};
pub use mem_cache::{ShardStats, ShardedLru};
pub use replay_profile::{replay_profile, ReplayError, ReplayLimits};
pub use replay_sim::{has_spt_markers, replay_sim};
pub use trace::{Trace, TraceCursor, TRACE_FORMAT_VERSION};

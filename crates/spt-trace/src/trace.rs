//! The in-memory trace record and its on-disk serialization.
//!
//! A [`Trace`] is everything needed to re-derive control flow and memory
//! behavior of one `DecodedModule` execution without re-evaluating values:
//! taken branch directions (bit-packed), load addresses and store
//! address/value pairs (delta+zigzag varint on disk), watched def values,
//! plus the run header (entry, args, return value, retire/cycle totals)
//! used to validate a replay against the original run.

use crate::codec::{get_varint, put_varint, unzigzag, zigzag, Fnv};

/// Bump when the serialized layout or the capture semantics change; stale
/// files then miss the cache instead of decoding garbage.
pub const TRACE_FORMAT_VERSION: u32 = 1;

/// Magic prefix of every trace artifact file.
pub const TRACE_MAGIC: &[u8; 8] = b"SPTTRACE";

/// One captured execution of a module entry function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// `Module::content_hash()` of the module the trace was captured on.
    pub module_hash: u64,
    /// Entry function name.
    pub entry: String,
    /// Entry arguments (raw `Val` bits).
    pub args: Vec<u64>,
    /// Hash of the watched-def set the capture recorded values for.
    pub watch_hash: u64,
    /// Return value of the run (raw bits), if the entry returned one.
    pub ret: Option<u64>,
    /// Total retired instructions of the original run.
    pub insts_retired: u64,
    /// Total statically-weighted cycles of the original run.
    pub weighted_cycles: u64,
    /// Taken/not-taken branch outcomes, bit-packed little-endian per word.
    pub branch_words: Vec<u64>,
    /// Number of valid bits in `branch_words`.
    pub branch_len: u64,
    /// Load cell addresses, in retire order.
    pub loads: Vec<i64>,
    /// Store (cell address, raw value) pairs, in retire order.
    pub stores: Vec<(i64, u64)>,
    /// Values of watched defs, in def order.
    pub defs: Vec<u64>,
}

/// Append one bit to a packed word vector.
pub fn push_bit(words: &mut Vec<u64>, len: &mut u64, bit: bool) {
    let word = (*len / 64) as usize;
    if word == words.len() {
        words.push(0);
    }
    if bit {
        words[word] |= 1u64 << (*len % 64);
    }
    *len += 1;
}

/// Read bit `idx` of a packed word vector. `idx` must be in range.
pub fn get_bit(words: &[u64], idx: u64) -> bool {
    (words[(idx / 64) as usize] >> (idx % 64)) & 1 == 1
}

impl Trace {
    /// Serialize to the on-disk byte format (magic, version, header,
    /// delta-encoded payload, trailing FNV-1a checksum).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            64 + self.branch_words.len() * 8
                + self.loads.len() * 3
                + self.stores.len() * 5
                + self.defs.len() * 3,
        );
        out.extend_from_slice(TRACE_MAGIC);
        put_varint(&mut out, TRACE_FORMAT_VERSION as u64);
        out.extend_from_slice(&self.module_hash.to_le_bytes());
        put_varint(&mut out, self.entry.len() as u64);
        out.extend_from_slice(self.entry.as_bytes());
        put_varint(&mut out, self.args.len() as u64);
        for &a in &self.args {
            put_varint(&mut out, a);
        }
        out.extend_from_slice(&self.watch_hash.to_le_bytes());
        match self.ret {
            Some(v) => {
                out.push(1);
                put_varint(&mut out, v);
            }
            None => out.push(0),
        }
        put_varint(&mut out, self.insts_retired);
        put_varint(&mut out, self.weighted_cycles);

        put_varint(&mut out, self.branch_len);
        for &w in &self.branch_words {
            out.extend_from_slice(&w.to_le_bytes());
        }

        put_varint(&mut out, self.loads.len() as u64);
        let mut prev = 0i64;
        for &a in &self.loads {
            put_varint(&mut out, zigzag(a.wrapping_sub(prev)));
            prev = a;
        }

        put_varint(&mut out, self.stores.len() as u64);
        let mut prev = 0i64;
        for &(a, v) in &self.stores {
            put_varint(&mut out, zigzag(a.wrapping_sub(prev)));
            prev = a;
            put_varint(&mut out, v);
        }

        put_varint(&mut out, self.defs.len() as u64);
        for &v in &self.defs {
            put_varint(&mut out, v);
        }

        let mut h = Fnv::new();
        h.update(&out);
        out.extend_from_slice(&h.finish().to_le_bytes());
        out
    }

    /// Decode an on-disk trace. Any structural problem — bad magic, stale
    /// format version, truncation, checksum mismatch — is an `Err` with a
    /// human-readable reason; callers treat all of them as cache corruption
    /// and fall back to capture.
    pub fn from_bytes(buf: &[u8]) -> Result<Trace, String> {
        if buf.len() < TRACE_MAGIC.len() + 8 {
            return Err("trace file truncated".into());
        }
        if &buf[..TRACE_MAGIC.len()] != TRACE_MAGIC {
            return Err("bad trace magic".into());
        }
        let (body, tail) = buf.split_at(buf.len() - 8);
        let mut h = Fnv::new();
        h.update(body);
        let stored = u64::from_le_bytes([
            tail[0], tail[1], tail[2], tail[3], tail[4], tail[5], tail[6], tail[7],
        ]);
        if h.finish() != stored {
            return Err("trace checksum mismatch".into());
        }

        let mut pos = TRACE_MAGIC.len();
        let take = |pos: &mut usize| get_varint(body, pos).ok_or("trace file truncated");
        let take_u64 = |pos: &mut usize| -> Result<u64, &'static str> {
            let end = pos.checked_add(8).ok_or("trace file truncated")?;
            let bytes = body.get(*pos..end).ok_or("trace file truncated")?;
            *pos = end;
            let mut raw = [0u8; 8];
            raw.copy_from_slice(bytes);
            Ok(u64::from_le_bytes(raw))
        };

        let version = take(&mut pos)?;
        if version != TRACE_FORMAT_VERSION as u64 {
            return Err(format!(
                "stale trace format version {version} (expected {TRACE_FORMAT_VERSION})"
            ));
        }
        let module_hash = take_u64(&mut pos)?;
        let entry_len = take(&mut pos)? as usize;
        let entry_end = pos.checked_add(entry_len).ok_or("trace file truncated")?;
        let entry_bytes = body.get(pos..entry_end).ok_or("trace file truncated")?;
        let entry = std::str::from_utf8(entry_bytes)
            .map_err(|_| "trace entry name not utf-8")?
            .to_owned();
        pos = entry_end;

        let nargs = take(&mut pos)? as usize;
        let mut args = Vec::with_capacity(nargs.min(1 << 16));
        for _ in 0..nargs {
            args.push(take(&mut pos)?);
        }
        let watch_hash = take_u64(&mut pos)?;
        let ret = match body.get(pos).copied().ok_or("trace file truncated")? {
            0 => {
                pos += 1;
                None
            }
            1 => {
                pos += 1;
                Some(take(&mut pos)?)
            }
            _ => return Err("bad ret tag in trace".into()),
        };
        let insts_retired = take(&mut pos)?;
        let weighted_cycles = take(&mut pos)?;

        let branch_len = take(&mut pos)?;
        let nwords = (branch_len as usize).div_ceil(64);
        let mut branch_words = Vec::with_capacity(nwords.min(1 << 22));
        for _ in 0..nwords {
            branch_words.push(take_u64(&mut pos)?);
        }

        let nloads = take(&mut pos)? as usize;
        let mut loads = Vec::with_capacity(nloads.min(1 << 22));
        let mut prev = 0i64;
        for _ in 0..nloads {
            prev = prev.wrapping_add(unzigzag(take(&mut pos)?));
            loads.push(prev);
        }

        let nstores = take(&mut pos)? as usize;
        let mut stores = Vec::with_capacity(nstores.min(1 << 22));
        let mut prev = 0i64;
        for _ in 0..nstores {
            prev = prev.wrapping_add(unzigzag(take(&mut pos)?));
            let v = take(&mut pos)?;
            stores.push((prev, v));
        }

        let ndefs = take(&mut pos)? as usize;
        let mut defs = Vec::with_capacity(ndefs.min(1 << 22));
        for _ in 0..ndefs {
            defs.push(take(&mut pos)?);
        }

        if pos != body.len() {
            return Err("trailing bytes in trace file".into());
        }
        Ok(Trace {
            module_hash,
            entry,
            args,
            watch_hash,
            ret,
            insts_retired,
            weighted_cycles,
            branch_words,
            branch_len,
            loads,
            stores,
            defs,
        })
    }

    /// Approximate in-memory footprint in bytes (the quantity the
    /// `ResourceBudget` trace cap is charged against).
    pub fn approx_bytes(&self) -> u64 {
        self.branch_words.len() as u64 * 8
            + self.loads.len() as u64 * 8
            + self.stores.len() as u64 * 16
            + self.defs.len() as u64 * 8
    }
}

/// Linear reader over a [`Trace`]'s four event streams.
pub struct TraceCursor<'a> {
    trace: &'a Trace,
    branch_idx: u64,
    load_idx: usize,
    store_idx: usize,
    def_idx: usize,
}

impl<'a> TraceCursor<'a> {
    pub fn new(trace: &'a Trace) -> Self {
        TraceCursor {
            trace,
            branch_idx: 0,
            load_idx: 0,
            store_idx: 0,
            def_idx: 0,
        }
    }

    pub fn next_branch(&mut self) -> Option<bool> {
        if self.branch_idx >= self.trace.branch_len {
            return None;
        }
        let bit = get_bit(&self.trace.branch_words, self.branch_idx);
        self.branch_idx += 1;
        Some(bit)
    }

    pub fn next_load(&mut self) -> Option<i64> {
        let v = self.trace.loads.get(self.load_idx).copied()?;
        self.load_idx += 1;
        Some(v)
    }

    pub fn next_store(&mut self) -> Option<(i64, u64)> {
        let v = self.trace.stores.get(self.store_idx).copied()?;
        self.store_idx += 1;
        Some(v)
    }

    pub fn next_def(&mut self) -> Option<u64> {
        let v = self.trace.defs.get(self.def_idx).copied()?;
        self.def_idx += 1;
        Some(v)
    }

    /// True when every stream has been read to its end — a replay that
    /// finishes with events left over diverged from the captured run.
    pub fn fully_consumed(&self) -> bool {
        self.branch_idx == self.trace.branch_len
            && self.load_idx == self.trace.loads.len()
            && self.store_idx == self.trace.stores.len()
            && self.def_idx == self.trace.defs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut branch_words = Vec::new();
        let mut branch_len = 0;
        for i in 0..131u64 {
            push_bit(&mut branch_words, &mut branch_len, i % 3 == 0);
        }
        Trace {
            module_hash: 0xdead_beef_1234_5678,
            entry: "main".into(),
            args: vec![40, u64::MAX],
            watch_hash: 7,
            ret: Some(99),
            insts_retired: 12_345,
            weighted_cycles: 67_890,
            branch_words,
            branch_len,
            loads: vec![100, 101, 99, 4000, 0],
            stores: vec![(50, 1), (51, u64::MAX), (10, 0)],
            defs: vec![0, 1, u64::MAX / 3],
        }
    }

    #[test]
    fn round_trip() {
        let t = sample();
        let bytes = t.to_bytes();
        assert_eq!(Trace::from_bytes(&bytes).as_ref(), Ok(&t));
    }

    #[test]
    fn bit_packing_round_trip() {
        let t = sample();
        for i in 0..t.branch_len {
            assert_eq!(get_bit(&t.branch_words, i), i % 3 == 0);
        }
    }

    #[test]
    fn truncated_rejected() {
        let bytes = sample().to_bytes();
        for cut in [0, 4, TRACE_MAGIC.len() + 3, bytes.len() - 1] {
            assert!(Trace::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn corrupt_rejected() {
        let mut bytes = sample().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(Trace::from_bytes(&bytes).is_err());
    }

    #[test]
    fn stale_version_rejected() {
        // Rebuild the file with a bumped version byte and a valid checksum:
        // decode must still refuse it, by version.
        let mut bytes = sample().to_bytes();
        bytes.truncate(bytes.len() - 8);
        assert_eq!(bytes[TRACE_MAGIC.len()], TRACE_FORMAT_VERSION as u8);
        bytes[TRACE_MAGIC.len()] = TRACE_FORMAT_VERSION as u8 + 1;
        let mut h = Fnv::new();
        h.update(&bytes);
        let sum = h.finish();
        bytes.extend_from_slice(&sum.to_le_bytes());
        let err = Trace::from_bytes(&bytes).unwrap_err();
        assert!(err.contains("stale trace format version"), "{err}");
    }

    #[test]
    fn cursor_consumes_all_streams() {
        let t = sample();
        let mut c = TraceCursor::new(&t);
        assert!(!c.fully_consumed());
        let mut branches = 0;
        while c.next_branch().is_some() {
            branches += 1;
        }
        assert_eq!(branches, t.branch_len);
        for &l in &t.loads {
            assert_eq!(c.next_load(), Some(l));
        }
        for &s in &t.stores {
            assert_eq!(c.next_store(), Some(s));
        }
        for &d in &t.defs {
            assert_eq!(c.next_def(), Some(d));
        }
        assert!(c.fully_consumed());
        assert_eq!(c.next_load(), None);
    }
}

//! The content-addressed on-disk artifact cache (`.spt-cache/`).
//!
//! Artifacts are keyed by a hash over everything that determines their
//! content: module IR content hash, entry name, arguments, watched-def set,
//! memory-image override, machine configuration (for simulation memos) and
//! the trace format version. A key therefore *is* the artifact identity —
//! files are immutable once written, and any IR or input change produces a
//! new key rather than invalidating in place.
//!
//! Robustness contract: a missing file is a [`LoadOutcome::Miss`]; any
//! unreadable, truncated, corrupt or stale-version file is a
//! [`LoadOutcome::Corrupt`] that callers treat as "warn and fall back to
//! direct execution" — never a panic, never a poisoned result. A corrupt
//! file is additionally **evicted on detection**: keys are content
//! addresses, so the only way a key can hold bad bytes is a torn or damaged
//! write, and deleting it turns every subsequent probe into a clean
//! [`LoadOutcome::Miss`] that re-captures and re-stores — one bad file can
//! never permanently poison its key. Stores are atomic (unique temp file +
//! rename) so parallel writers and killed processes can only ever leave
//! whole files or invisible temp droppings, and store errors are silently
//! ignored (the cache is an accelerator, not a source of truth).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use spt_sim::{LoopSimStats, MachineConfig, SimResult};

use crate::codec::{get_varint, put_varint, Fnv};
use crate::func_unit::{FuncAnalysisUnit, FUNC_UNIT_FORMAT_VERSION};
use crate::trace::{Trace, TRACE_FORMAT_VERSION};

/// Magic prefix of simulation-memo artifact files.
const SIM_MAGIC: &[u8; 8] = b"SPTSIMRS";

/// Uniquifier for temp-file names within one process.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Observable eviction/store counters of one [`ArtifactCache`] (shared by
/// all clones of it, so a service handing cache handles to worker threads
/// still sees one coherent set of numbers).
#[derive(Debug, Default)]
pub struct CacheCounters {
    /// Files deleted because their contents failed validation.
    pub corrupt_evictions: AtomicU64,
    /// Files deleted by byte-budget enforcement (oldest-first).
    pub budget_evictions: AtomicU64,
    /// Successful artifact stores.
    pub stores: AtomicU64,
}

impl CacheCounters {
    /// Total evictions, both corrupt-entry and budget-driven.
    pub fn evictions(&self) -> u64 {
        self.corrupt_evictions.load(Ordering::Relaxed)
            + self.budget_evictions.load(Ordering::Relaxed)
    }
}

/// Result of a cache probe.
#[derive(Clone, Debug, PartialEq)]
pub enum LoadOutcome<T> {
    /// The artifact was present and decoded cleanly.
    Hit(T),
    /// No artifact under this key.
    Miss,
    /// An artifact exists but cannot be trusted (truncated, corrupt, stale
    /// format version, unreadable). Callers warn and fall back to direct
    /// execution.
    Corrupt(String),
}

/// A directory of immutable, content-addressed execution artifacts.
#[derive(Clone, Debug)]
pub struct ArtifactCache {
    dir: PathBuf,
    /// Total on-disk byte budget; `None` leaves the directory unbounded
    /// (the historical behavior).
    byte_budget: Option<u64>,
    counters: Arc<CacheCounters>,
}

impl ArtifactCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ArtifactCache {
            dir: dir.into(),
            byte_budget: None,
            counters: Arc::new(CacheCounters::default()),
        }
    }

    /// A cache rooted at `dir` whose total file size is kept at or below
    /// `budget` bytes: every store re-checks the directory and deletes the
    /// oldest artifacts (by modification time, then name) until the total
    /// fits. A budget smaller than a single artifact may evict the artifact
    /// that was just written — the cache is an accelerator, so an
    /// over-budget store simply never sticks.
    pub fn with_byte_budget(dir: impl Into<PathBuf>, budget: u64) -> Self {
        let mut cache = Self::new(dir);
        cache.byte_budget = Some(budget);
        cache
    }

    /// Installs (or with `None` removes) the on-disk byte budget.
    pub fn set_byte_budget(&mut self, budget: Option<u64>) {
        self.byte_budget = budget;
    }

    /// The shared eviction/store counters (one set per cache lineage: every
    /// clone of this cache reports into the same counters).
    pub fn counters(&self) -> &Arc<CacheCounters> {
        &self.counters
    }

    /// Total bytes currently held by artifact files under the cache root
    /// (temp droppings excluded). 0 when the directory does not exist.
    pub fn disk_bytes(&self) -> u64 {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        entries
            .flatten()
            .filter(|e| !e.file_name().to_string_lossy().starts_with(".tmp-"))
            .filter_map(|e| e.metadata().ok())
            .map(|m| m.len())
            .sum()
    }

    /// The cache root.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Key for an interpreter trace: module IR, entry, args, watched-def
    /// set, initial-memory override and format version all participate.
    pub fn trace_key(
        module_hash: u64,
        entry: &str,
        args: &[u64],
        watch_hash: u64,
        memory_hash: u64,
    ) -> u64 {
        let mut h = Fnv::new();
        h.update(b"trace");
        h.update_u64(TRACE_FORMAT_VERSION as u64);
        h.update_u64(module_hash);
        h.update(entry.as_bytes());
        h.update_u64(args.len() as u64);
        for &a in args {
            h.update_u64(a);
        }
        h.update_u64(watch_hash);
        h.update_u64(memory_hash);
        h.finish()
    }

    /// Key for a simulation-result memo. The machine configuration enters
    /// through its canonical `Debug` rendering, so any parameter change —
    /// including future fields — changes the key.
    pub fn sim_key(module_hash: u64, entry: &str, args: &[i64], machine: &MachineConfig) -> u64 {
        let mut h = Fnv::new();
        h.update(b"sim");
        h.update_u64(TRACE_FORMAT_VERSION as u64);
        h.update_u64(module_hash);
        h.update(entry.as_bytes());
        h.update_u64(args.len() as u64);
        for &a in args {
            h.update_u64(a as u64);
        }
        h.update(format!("{machine:?}").as_bytes());
        h.finish()
    }

    /// Content hash of an initial-memory override (0 when the module's own
    /// initial image is used).
    pub fn memory_hash(memory: Option<&[u64]>) -> u64 {
        match memory {
            None => 0,
            Some(m) => {
                let mut h = Fnv::new();
                h.update_u64(m.len() as u64);
                for &w in m {
                    h.update_u64(w);
                }
                h.finish()
            }
        }
    }

    fn path_for(&self, kind: &str, key: u64) -> PathBuf {
        self.dir.join(format!("{kind}-{key:016x}.bin"))
    }

    /// Write `bytes` at `path` atomically; errors are ignored by contract.
    /// With a byte budget configured, the store is followed by budget
    /// enforcement, so the directory never stays over budget past one call.
    fn store_bytes(&self, path: &Path, bytes: &[u8]) {
        if std::fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        if std::fs::write(&tmp, bytes).is_ok() && std::fs::rename(&tmp, path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        } else {
            self.counters.stores.fetch_add(1, Ordering::Relaxed);
        }
        self.enforce_budget();
    }

    /// Deletes the oldest artifacts (modification time, then name, so ties
    /// within one mtime granule break deterministically) until the directory
    /// total fits the configured byte budget. No-op without a budget.
    fn enforce_budget(&self) {
        let Some(budget) = self.byte_budget else {
            return;
        };
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let mut files: Vec<(std::time::SystemTime, PathBuf, u64)> = entries
            .flatten()
            .filter(|e| !e.file_name().to_string_lossy().starts_with(".tmp-"))
            .filter_map(|e| {
                let meta = e.metadata().ok()?;
                let mtime = meta.modified().ok()?;
                Some((mtime, e.path(), meta.len()))
            })
            .collect();
        let mut total: u64 = files.iter().map(|(_, _, len)| len).sum();
        if total <= budget {
            return;
        }
        files.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        for (_, path, len) in files {
            if total <= budget {
                break;
            }
            if std::fs::remove_file(&path).is_ok() {
                self.counters
                    .budget_evictions
                    .fetch_add(1, Ordering::Relaxed);
                total = total.saturating_sub(len);
            }
        }
    }

    fn load_bytes(&self, path: &Path) -> LoadOutcome<Vec<u8>> {
        match std::fs::read(path) {
            Ok(bytes) => {
                Self::stamp_access(path);
                LoadOutcome::Hit(bytes)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => LoadOutcome::Miss,
            Err(e) => {
                self.evict(path);
                LoadOutcome::Corrupt(format!("unreadable cache file: {e}"))
            }
        }
    }

    /// Bumps the file's modification time to "now" on a successful load, so
    /// [`ArtifactCache::enforce_budget`]'s oldest-mtime eviction order is a
    /// least-recently-*used* order rather than creation order — a hot entry
    /// that is read on every run keeps renewing its lease. Errors are ignored
    /// by the usual accelerator contract (a read-only cache directory simply
    /// degrades back to FIFO eviction).
    fn stamp_access(path: &Path) {
        let _ = std::fs::File::options()
            .append(true)
            .open(path)
            .and_then(|f| f.set_modified(std::time::SystemTime::now()));
    }

    /// Deletes a cache file whose contents failed validation. Files are
    /// immutable once written, so a bad file can only be a torn/damaged
    /// write; removing it makes the next probe a clean [`LoadOutcome::Miss`]
    /// instead of returning the same corruption forever. Deletion errors are
    /// ignored by the same contract as store errors.
    fn evict(&self, path: &Path) {
        if std::fs::remove_file(path).is_ok() {
            self.counters
                .corrupt_evictions
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Probe for a trace under `key`.
    pub fn load_trace(&self, key: u64) -> LoadOutcome<Trace> {
        let path = self.path_for("trace", key);
        match self.load_bytes(&path) {
            LoadOutcome::Hit(bytes) => match Trace::from_bytes(&bytes) {
                Ok(t) => LoadOutcome::Hit(t),
                Err(e) => {
                    self.evict(&path);
                    LoadOutcome::Corrupt(format!("{}: {e}", path.display()))
                }
            },
            LoadOutcome::Miss => LoadOutcome::Miss,
            LoadOutcome::Corrupt(e) => LoadOutcome::Corrupt(e),
        }
    }

    /// Store a trace under `key`.
    pub fn store_trace(&self, key: u64, trace: &Trace) {
        self.store_bytes(&self.path_for("trace", key), &trace.to_bytes());
    }

    /// Probe for a simulation-result memo under `key`.
    pub fn load_sim(&self, key: u64) -> LoadOutcome<SimResult> {
        let path = self.path_for("sim", key);
        match self.load_bytes(&path) {
            LoadOutcome::Hit(bytes) => match decode_sim(&bytes) {
                Ok(r) => LoadOutcome::Hit(r),
                Err(e) => {
                    self.evict(&path);
                    LoadOutcome::Corrupt(format!("{}: {e}", path.display()))
                }
            },
            LoadOutcome::Miss => LoadOutcome::Miss,
            LoadOutcome::Corrupt(e) => LoadOutcome::Corrupt(e),
        }
    }

    /// Store a simulation-result memo under `key`.
    pub fn store_sim(&self, key: u64, result: &SimResult) {
        self.store_bytes(&self.path_for("sim", key), &encode_sim(result));
    }

    /// Key for a function-granular analysis unit: the function's own content
    /// hash, its index in the module (instruction/block indices in the unit
    /// are function-local, but profile slices are keyed by function id), and
    /// a context hash folding everything else the analysis reads (config,
    /// globals, callee effect summaries, profile slice — computed by the
    /// pipeline's incremental layer). The format version participates so a
    /// codec change retires old entries to clean misses.
    pub fn func_unit_key(function_hash: u64, func_index: u64, context_hash: u64) -> u64 {
        let mut h = Fnv::new();
        h.update(b"func");
        h.update_u64(FUNC_UNIT_FORMAT_VERSION as u64);
        h.update_u64(function_hash);
        h.update_u64(func_index);
        h.update_u64(context_hash);
        h.finish()
    }

    /// Probe for a function-analysis unit under `key`.
    pub fn load_func_unit(&self, key: u64) -> LoadOutcome<FuncAnalysisUnit> {
        let path = self.path_for("func", key);
        match self.load_bytes(&path) {
            LoadOutcome::Hit(bytes) => match FuncAnalysisUnit::from_bytes(&bytes) {
                Ok(u) => LoadOutcome::Hit(u),
                Err(e) => {
                    self.evict(&path);
                    LoadOutcome::Corrupt(format!("{}: {e}", path.display()))
                }
            },
            LoadOutcome::Miss => LoadOutcome::Miss,
            LoadOutcome::Corrupt(e) => LoadOutcome::Corrupt(e),
        }
    }

    /// Store a function-analysis unit under `key`.
    pub fn store_func_unit(&self, key: u64, unit: &FuncAnalysisUnit) {
        self.store_bytes(&self.path_for("func", key), &unit.to_bytes());
    }
}

/// Canonical bit-exact byte encoding of a [`SimResult`] — the same format
/// the sim-memo artifact files use. The compile service's wire protocol
/// reuses it so daemon-served results are byte-comparable to local ones.
pub fn sim_to_bytes(result: &SimResult) -> Vec<u8> {
    encode_sim(result)
}

/// Inverse of [`sim_to_bytes`].
///
/// # Errors
///
/// Returns a description of the first framing/checksum/version problem.
pub fn sim_from_bytes(bytes: &[u8]) -> Result<SimResult, String> {
    decode_sim(bytes)
}

/// Serialize a [`SimResult`] bit-exactly (f64 rates via `to_bits`, loop
/// stats sorted by tag so the encoding is canonical).
fn encode_sim(r: &SimResult) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + r.memory.len() * 3);
    out.extend_from_slice(SIM_MAGIC);
    put_varint(&mut out, TRACE_FORMAT_VERSION as u64);
    match r.ret {
        Some(v) => {
            out.push(1);
            put_varint(&mut out, v);
        }
        None => out.push(0),
    }
    put_varint(&mut out, r.cycles);
    put_varint(&mut out, r.insts);
    put_varint(&mut out, r.memory.len() as u64);
    for &w in &r.memory {
        put_varint(&mut out, w);
    }
    let mut tags: Vec<u32> = r.loops.keys().copied().collect();
    tags.sort_unstable();
    put_varint(&mut out, tags.len() as u64);
    for tag in tags {
        let s = r.loops[&tag];
        put_varint(&mut out, tag as u64);
        for f in [
            s.forks,
            s.commits,
            s.kills,
            s.free_insts,
            s.reexec_insts,
            s.reexec_cycles,
            s.main_insts,
            s.loop_cycles,
            s.seq_cycles,
            s.wasted_insts,
        ] {
            put_varint(&mut out, f);
        }
    }
    out.extend_from_slice(&r.cache_hit_rate.to_bits().to_le_bytes());
    out.extend_from_slice(&r.branch_miss_rate.to_bits().to_le_bytes());
    let mut h = Fnv::new();
    h.update(&out);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out
}

fn decode_sim(buf: &[u8]) -> Result<SimResult, String> {
    if buf.len() < SIM_MAGIC.len() + 8 {
        return Err("sim memo truncated".into());
    }
    if &buf[..SIM_MAGIC.len()] != SIM_MAGIC {
        return Err("bad sim memo magic".into());
    }
    let (body, tail) = buf.split_at(buf.len() - 8);
    let mut h = Fnv::new();
    h.update(body);
    let mut raw = [0u8; 8];
    raw.copy_from_slice(tail);
    if h.finish() != u64::from_le_bytes(raw) {
        return Err("sim memo checksum mismatch".into());
    }

    let mut pos = SIM_MAGIC.len();
    let take = |pos: &mut usize| get_varint(body, pos).ok_or("sim memo truncated");
    let version = take(&mut pos)?;
    if version != TRACE_FORMAT_VERSION as u64 {
        return Err(format!(
            "stale sim memo version {version} (expected {TRACE_FORMAT_VERSION})"
        ));
    }
    let ret = match body.get(pos).copied().ok_or("sim memo truncated")? {
        0 => {
            pos += 1;
            None
        }
        1 => {
            pos += 1;
            Some(take(&mut pos)?)
        }
        _ => return Err("bad ret tag in sim memo".into()),
    };
    let cycles = take(&mut pos)?;
    let insts = take(&mut pos)?;
    let mem_len = take(&mut pos)? as usize;
    let mut memory = Vec::with_capacity(mem_len.min(1 << 24));
    for _ in 0..mem_len {
        memory.push(take(&mut pos)?);
    }
    let nloops = take(&mut pos)? as usize;
    let mut loops = std::collections::HashMap::with_capacity(nloops.min(1 << 16));
    for _ in 0..nloops {
        let tag = take(&mut pos)? as u32;
        let mut f = [0u64; 10];
        for slot in &mut f {
            *slot = take(&mut pos)?;
        }
        loops.insert(
            tag,
            LoopSimStats {
                forks: f[0],
                commits: f[1],
                kills: f[2],
                free_insts: f[3],
                reexec_insts: f[4],
                reexec_cycles: f[5],
                main_insts: f[6],
                loop_cycles: f[7],
                seq_cycles: f[8],
                wasted_insts: f[9],
            },
        );
    }
    let need = pos + 16;
    if body.len() != need {
        return Err("sim memo truncated".into());
    }
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&body[pos..pos + 8]);
    let cache_hit_rate = f64::from_bits(u64::from_le_bytes(raw));
    raw.copy_from_slice(&body[pos + 8..pos + 16]);
    let branch_miss_rate = f64::from_bits(u64::from_le_bytes(raw));

    Ok(SimResult {
        ret,
        cycles,
        insts,
        memory,
        loops,
        cache_hit_rate,
        branch_miss_rate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "spt-cache-test-{}-{}-{tag}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_sim() -> SimResult {
        let mut loops = std::collections::HashMap::new();
        loops.insert(
            3u32,
            LoopSimStats {
                forks: 1,
                commits: 2,
                kills: 3,
                free_insts: 4,
                reexec_insts: 5,
                reexec_cycles: 6,
                main_insts: 7,
                loop_cycles: 8,
                seq_cycles: 9,
                wasted_insts: 10,
            },
        );
        loops.insert(1u32, LoopSimStats::default());
        SimResult {
            ret: Some(42),
            cycles: 1000,
            insts: 500,
            memory: vec![1, 2, 3, u64::MAX],
            loops,
            cache_hit_rate: 0.987654321,
            branch_miss_rate: 0.0123456789,
        }
    }

    fn sim_eq(a: &SimResult, b: &SimResult) -> bool {
        a.ret == b.ret
            && a.cycles == b.cycles
            && a.insts == b.insts
            && a.memory == b.memory
            && a.loops == b.loops
            && a.cache_hit_rate.to_bits() == b.cache_hit_rate.to_bits()
            && a.branch_miss_rate.to_bits() == b.branch_miss_rate.to_bits()
    }

    #[test]
    fn sim_memo_round_trip() {
        let r = sample_sim();
        let decoded = decode_sim(&encode_sim(&r)).unwrap();
        assert!(sim_eq(&r, &decoded));
    }

    #[test]
    fn sim_store_and_load() {
        let cache = ArtifactCache::new(temp_dir("simrt"));
        let r = sample_sim();
        assert!(matches!(cache.load_sim(7), LoadOutcome::Miss));
        cache.store_sim(7, &r);
        match cache.load_sim(7) {
            LoadOutcome::Hit(got) => assert!(sim_eq(&r, &got)),
            other => panic!("expected hit, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_file_is_reported_not_fatal_and_evicted() {
        let cache = ArtifactCache::new(temp_dir("corrupt"));
        let r = sample_sim();
        cache.store_sim(9, &r);
        let path = cache.path_for("sim", 9);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x5a;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(cache.load_sim(9), LoadOutcome::Corrupt(_)));
        // Detection evicted the bad file: the second probe is a clean Miss
        // (one torn write can never permanently poison its key) and a
        // re-store makes the key healthy again.
        assert!(!path.exists(), "corrupt sim memo should have been deleted");
        assert!(matches!(cache.load_sim(9), LoadOutcome::Miss));
        cache.store_sim(9, &r);
        assert!(matches!(cache.load_sim(9), LoadOutcome::Hit(_)));
        // Truncation too.
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert!(matches!(cache.load_sim(9), LoadOutcome::Corrupt(_)));
        assert!(matches!(cache.load_sim(9), LoadOutcome::Miss));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_trace_is_evicted_to_miss() {
        let cache = ArtifactCache::new(temp_dir("corrupt-trace"));
        let path = cache.path_for("trace", 11);
        std::fs::create_dir_all(cache.dir()).unwrap();
        std::fs::write(&path, b"not a trace at all").unwrap();
        assert!(matches!(cache.load_trace(11), LoadOutcome::Corrupt(_)));
        assert!(!path.exists(), "corrupt trace should have been deleted");
        assert!(matches!(cache.load_trace(11), LoadOutcome::Miss));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn byte_budget_evicts_least_recently_used_first() {
        let dir = temp_dir("budget");
        let r = sample_sim();
        let one = encode_sim(&r).len() as u64;
        // Room for roughly two artifacts.
        let cache = ArtifactCache::with_byte_budget(&dir, one * 2 + one / 2);
        cache.store_sim(1, &r);
        // Distinct mtimes so the eviction order is unambiguous even on
        // coarse-granularity filesystems.
        std::thread::sleep(std::time::Duration::from_millis(20));
        cache.store_sim(2, &r);
        std::thread::sleep(std::time::Duration::from_millis(20));
        // A hit renews key 1's lease (access stamp), so the cold key 2 —
        // not the oldest-created key 1 — is the next victim.
        assert!(matches!(cache.load_sim(1), LoadOutcome::Hit(_)));
        std::thread::sleep(std::time::Duration::from_millis(20));
        cache.store_sim(3, &r);
        assert!(
            cache.disk_bytes() <= one * 2 + one / 2,
            "directory over budget: {} bytes",
            cache.disk_bytes()
        );
        assert!(cache.counters().budget_evictions.load(Ordering::Relaxed) >= 1);
        assert!(matches!(cache.load_sim(2), LoadOutcome::Miss));
        assert!(matches!(cache.load_sim(1), LoadOutcome::Hit(_)));
        assert!(matches!(cache.load_sim(3), LoadOutcome::Hit(_)));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn load_hits_bump_the_access_stamp() {
        let cache = ArtifactCache::new(temp_dir("stamp"));
        let r = sample_sim();
        cache.store_sim(5, &r);
        let path = cache.path_for("sim", 5);
        let created = std::fs::metadata(&path).unwrap().modified().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(matches!(cache.load_sim(5), LoadOutcome::Hit(_)));
        let touched = std::fs::metadata(&path).unwrap().modified().unwrap();
        assert!(
            touched > created,
            "hit must renew the entry's mtime lease ({created:?} -> {touched:?})"
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn func_unit_store_and_load() {
        let cache = ArtifactCache::new(temp_dir("funcunit"));
        let unit = FuncAnalysisUnit {
            fragments: vec![crate::func_unit::LoopFragment {
                header: 2,
                canonical: true,
                cost_bits: 1.25f64.to_bits(),
                move_insts: vec![0, 3],
                ..Default::default()
            }],
        };
        let key = ArtifactCache::func_unit_key(0xabcd, 1, 0x1234);
        assert!(matches!(cache.load_func_unit(key), LoadOutcome::Miss));
        cache.store_func_unit(key, &unit);
        assert_eq!(
            match cache.load_func_unit(key) {
                LoadOutcome::Hit(u) => u,
                other => panic!("expected hit, got {other:?}"),
            },
            unit
        );
        // Corruption degrades to Corrupt then Miss, like every other kind.
        let path = cache.path_for("func", key);
        std::fs::write(&path, b"scribble").unwrap();
        assert!(matches!(cache.load_func_unit(key), LoadOutcome::Corrupt(_)));
        assert!(matches!(cache.load_func_unit(key), LoadOutcome::Miss));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn unbudgeted_cache_never_evicts_on_store() {
        let cache = ArtifactCache::new(temp_dir("nobudget"));
        let r = sample_sim();
        for k in 0..8 {
            cache.store_sim(k, &r);
        }
        assert_eq!(cache.counters().budget_evictions.load(Ordering::Relaxed), 0);
        assert_eq!(cache.counters().stores.load(Ordering::Relaxed), 8);
        for k in 0..8 {
            assert!(matches!(cache.load_sim(k), LoadOutcome::Hit(_)));
        }
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_evictions_are_counted() {
        let cache = ArtifactCache::new(temp_dir("corrupt-count"));
        let r = sample_sim();
        cache.store_sim(4, &r);
        let path = cache.path_for("sim", 4);
        std::fs::write(&path, b"garbage").unwrap();
        assert!(matches!(cache.load_sim(4), LoadOutcome::Corrupt(_)));
        assert_eq!(
            cache.counters().corrupt_evictions.load(Ordering::Relaxed),
            1
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn sim_bytes_round_trip_public() {
        let r = sample_sim();
        let bytes = sim_to_bytes(&r);
        let decoded = sim_from_bytes(&bytes).unwrap();
        assert!(sim_eq(&r, &decoded));
        assert!(sim_from_bytes(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn keys_separate_inputs() {
        let k1 = ArtifactCache::trace_key(1, "main", &[5], 0, 0);
        assert_ne!(k1, ArtifactCache::trace_key(2, "main", &[5], 0, 0));
        assert_ne!(k1, ArtifactCache::trace_key(1, "other", &[5], 0, 0));
        assert_ne!(k1, ArtifactCache::trace_key(1, "main", &[6], 0, 0));
        assert_ne!(k1, ArtifactCache::trace_key(1, "main", &[5], 1, 0));
        assert_ne!(k1, ArtifactCache::trace_key(1, "main", &[5], 0, 1));
        let m1 = MachineConfig::default();
        let mut m2 = MachineConfig::default();
        m2.fork_overhead += 1;
        assert_ne!(
            ArtifactCache::sim_key(1, "main", &[5], &m1),
            ArtifactCache::sim_key(1, "main", &[5], &m2)
        );
        let f1 = ArtifactCache::func_unit_key(10, 0, 99);
        assert_ne!(f1, ArtifactCache::func_unit_key(11, 0, 99));
        assert_ne!(f1, ArtifactCache::func_unit_key(10, 1, 99));
        assert_ne!(f1, ArtifactCache::func_unit_key(10, 0, 98));
    }
}

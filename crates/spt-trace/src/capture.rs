//! Trace capture: a [`Profiler`] adapter that records the dynamic event
//! streams of one interpreter run while transparently forwarding every hook
//! to an inner profiler, plus the watched-def set describing which def
//! values the trace must carry.

use spt_ir::{Cfg, DomTree, FuncId, InstId, LoopForest, Module, Operand, Ty};
use spt_profile::{InterpResult, LoopActivation, LoopEvent, Profiler, Val};

use crate::codec::Fnv;
use crate::trace::{push_bit, Trace};

/// The set of instructions whose def values a trace records.
///
/// Replay produces `Val(0)` for every unwatched non-load def, so any
/// collector that inspects def *values* (the value profiler) must have its
/// targets inside this set. The set is identified by a content hash so the
/// artifact-cache key changes when the watched set does.
#[derive(Clone, Debug, Default)]
pub struct WatchSet {
    /// Per-function dense membership, indexed by `InstId` index.
    funcs: Vec<Vec<bool>>,
    /// The sorted, deduplicated member list.
    pairs: Vec<(FuncId, InstId)>,
    hash: u64,
}

impl WatchSet {
    /// The empty watch set (no def values recorded).
    pub fn empty() -> Self {
        WatchSet {
            funcs: Vec::new(),
            pairs: Vec::new(),
            hash: Fnv::new().finish(),
        }
    }

    fn from_pairs(mut pairs: Vec<(FuncId, InstId)>) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        let mut h = Fnv::new();
        let mut funcs: Vec<Vec<bool>> = Vec::new();
        for &(f, i) in &pairs {
            h.update_u64(f.index() as u64);
            h.update_u64(i.index() as u64);
            if f.index() >= funcs.len() {
                funcs.resize(f.index() + 1, Vec::new());
            }
            let fv = &mut funcs[f.index()];
            if i.index() >= fv.len() {
                fv.resize(i.index() + 1, false);
            }
            fv[i.index()] = true;
        }
        WatchSet {
            funcs,
            pairs,
            hash: h.finish(),
        }
    }

    /// The watched instructions, sorted.
    pub fn pairs(&self) -> &[(FuncId, InstId)] {
        &self.pairs
    }

    pub fn contains(&self, func: FuncId, inst: InstId) -> bool {
        self.funcs
            .get(func.index())
            .and_then(|fv| fv.get(inst.index()).copied())
            .unwrap_or(false)
    }

    /// Content hash identifying the set (part of the trace cache key).
    pub fn hash(&self) -> u64 {
        self.hash
    }
}

/// The watched-def set for SVP value profiling on `module`: every latch-edge
/// `I64` carrier of every single-latch loop header phi, in every function.
///
/// This is a superset of the pipeline's `svp_targets` selection (which only
/// filters this population *down* by cost heuristics), so one captured trace
/// can serve any later value-profiling pass over the same module.
pub fn svp_watch_set(module: &Module) -> WatchSet {
    let mut pairs = Vec::new();
    for fid in module.func_ids() {
        let func = module.func(fid);
        let cfg = Cfg::compute(func);
        let dom = DomTree::compute(&cfg);
        let forest = LoopForest::compute(func, &cfg, &dom);
        for lid in forest.ids() {
            let l = forest.get(lid);
            let latch = match l.latches.as_slice() {
                [single] => *single,
                _ => continue,
            };
            for &i in &func.block(l.header).insts {
                if let spt_ir::InstKind::Phi { args } = &func.inst(i).kind {
                    if func.inst(i).ty != Some(Ty::I64) {
                        continue;
                    }
                    for (pred, v) in args {
                        if *pred == latch {
                            if let Operand::Inst(carrier) = v {
                                pairs.push((fid, *carrier));
                            }
                        }
                    }
                }
            }
        }
    }
    WatchSet::from_pairs(pairs)
}

/// A profiler adapter that captures a [`Trace`] while forwarding every hook
/// to `inner` unchanged — capture is observationally transparent to the
/// inner collector.
///
/// If the recorded streams exceed `max_bytes` the capture marks itself
/// poisoned, frees its buffers, and stops recording; forwarding continues so
/// the inner profiler's results are unaffected (budget fallback, not error).
pub struct CaptureProfiler<P> {
    inner: P,
    watch: WatchSet,
    max_bytes: u64,
    poisoned: bool,
    branch_words: Vec<u64>,
    branch_len: u64,
    loads: Vec<i64>,
    stores: Vec<(i64, u64)>,
    defs: Vec<u64>,
}

impl<P: Profiler> CaptureProfiler<P> {
    pub fn new(inner: P, watch: WatchSet, max_bytes: u64) -> Self {
        CaptureProfiler {
            inner,
            watch,
            max_bytes,
            poisoned: false,
            branch_words: Vec::new(),
            branch_len: 0,
            loads: Vec::new(),
            stores: Vec::new(),
            defs: Vec::new(),
        }
    }

    fn approx_bytes(&self) -> u64 {
        self.branch_words.len() as u64 * 8
            + self.loads.len() as u64 * 8
            + self.stores.len() as u64 * 16
            + self.defs.len() as u64 * 8
    }

    fn charge(&mut self) {
        if !self.poisoned && self.approx_bytes() > self.max_bytes {
            self.poisoned = true;
            self.branch_words = Vec::new();
            self.branch_len = 0;
            self.loads = Vec::new();
            self.stores = Vec::new();
            self.defs = Vec::new();
        }
    }

    /// True once the memory budget was exceeded and recording stopped.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Finish the capture: package the recorded streams plus the run header
    /// into a [`Trace`] and hand back the inner profiler. Returns `None` for
    /// the trace when the budget was exceeded mid-run.
    pub fn finish(
        self,
        result: &InterpResult,
        module_hash: u64,
        entry: &str,
        args: &[Val],
    ) -> (Option<Trace>, P) {
        let trace = if self.poisoned {
            None
        } else {
            Some(Trace {
                module_hash,
                entry: entry.to_owned(),
                args: args.iter().map(|v| v.0).collect(),
                watch_hash: self.watch.hash(),
                ret: result.ret.map(|v| v.0),
                insts_retired: result.insts_retired,
                weighted_cycles: result.weighted_cycles,
                branch_words: self.branch_words,
                branch_len: self.branch_len,
                loads: self.loads,
                stores: self.stores,
                defs: self.defs,
            })
        };
        (trace, self.inner)
    }

    /// The inner profiler, for inspection mid-run.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Profiler> Profiler for CaptureProfiler<P> {
    fn on_block(&mut self, func: FuncId, from: Option<spt_ir::BlockId>, to: spt_ir::BlockId) {
        self.inner.on_block(func, from, to);
    }

    fn on_inst(&mut self, func: FuncId, inst: InstId, latency: u64, loops: &[LoopActivation]) {
        self.inner.on_inst(func, inst, latency, loops);
    }

    fn on_load(
        &mut self,
        func: FuncId,
        inst: InstId,
        addr: i64,
        value: Val,
        loops: &[LoopActivation],
    ) {
        if !self.poisoned {
            self.loads.push(addr);
            self.charge();
        }
        self.inner.on_load(func, inst, addr, value, loops);
    }

    fn on_store(
        &mut self,
        func: FuncId,
        inst: InstId,
        addr: i64,
        value: Val,
        loops: &[LoopActivation],
    ) {
        if !self.poisoned {
            self.stores.push((addr, value.0));
            self.charge();
        }
        self.inner.on_store(func, inst, addr, value, loops);
    }

    fn on_def(&mut self, func: FuncId, inst: InstId, value: Val, loops: &[LoopActivation]) {
        if !self.poisoned && self.watch.contains(func, inst) {
            self.defs.push(value.0);
            self.charge();
        }
        self.inner.on_def(func, inst, value, loops);
    }

    fn on_branch(&mut self, func: FuncId, inst: InstId, taken: bool) {
        if !self.poisoned {
            push_bit(&mut self.branch_words, &mut self.branch_len, taken);
            if self.branch_len % 64 == 1 {
                self.charge();
            }
        }
        self.inner.on_branch(func, inst, taken);
    }

    fn on_loop(&mut self, func: FuncId, event: LoopEvent, loops: &[LoopActivation]) {
        self.inner.on_loop(func, event, loops);
    }

    fn on_call_enter(&mut self, caller: FuncId, inst: InstId, callee: FuncId) {
        self.inner.on_call_enter(caller, inst, callee);
    }

    fn on_call_exit(&mut self, caller: FuncId, inst: InstId, callee: FuncId) {
        self.inner.on_call_exit(caller, inst, callee);
    }
}

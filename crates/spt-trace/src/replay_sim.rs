//! Trace-driven baseline simulation: reproduces the SPT simulator's
//! sequential (marker-free) run — cycles, cache behavior, branch-predictor
//! behavior, retired-instruction count, final memory — from a captured
//! trace, under *any* [`MachineConfig`].
//!
//! This works because the architectural instruction stream of a sequential
//! run is config-invariant: the machine parameters only affect *timing*,
//! and every timing input (load/store cell, branch direction keyed by
//! instruction id) is either static or recorded in the trace. The walker
//! mirrors `Thread::step` + the driver loop exactly: one step per pending
//! phi delivery (latency 0), `cache.access(..).max(1)` loads,
//! `cache.access(..).clamp(1, 4)` stores, mispredict penalties on branches,
//! fuel checked before each step.
//!
//! Modules carrying `SPT_FORK`/`SPT_KILL` markers are refused
//! ([`ReplayError::Unsupported`]): speculative episodes interleave two cores
//! and are not replayable from a sequential trace.

use spt_ir::{BlockId, DKind, DecodedModule, FuncId};
use spt_sim::{BranchPredictor, Cache, MachineConfig, SimResult};
use std::collections::HashMap;

use crate::replay_profile::ReplayError;
use crate::trace::{Trace, TraceCursor};

use spt_sim::SimError;

fn malformed(msg: String) -> ReplayError {
    ReplayError::Sim(SimError::Exec(spt_sim::thread::ExecError::Malformed(msg)))
}

/// True when the module contains SPT fork/kill markers (then only the full
/// simulator, not trace replay, can execute it).
pub fn has_spt_markers(decoded: &DecodedModule) -> bool {
    decoded.funcs.iter().any(|df| {
        df.insts
            .iter()
            .any(|di| matches!(di.kind, DKind::SptFork { .. } | DKind::SptKill { .. }))
    })
}

struct RFrame {
    func: FuncId,
    block: BlockId,
    pos: u32,
    end: u32,
    /// Phi deliveries still owed for the last transfer into `block`; each
    /// is one zero-latency step, exactly like `Thread`'s pending queue.
    pending: u32,
}

/// Replay `trace` over `decoded` under `machine`, producing a [`SimResult`]
/// bit-identical to `SptSimulator::with_config(machine)` directly executing
/// the same marker-free module.
pub fn replay_sim(
    decoded: &DecodedModule,
    entry: FuncId,
    trace: &Trace,
    machine: &MachineConfig,
    initial_memory: Vec<u64>,
) -> Result<SimResult, ReplayError> {
    if has_spt_markers(decoded) {
        return Err(ReplayError::Unsupported(
            "module carries SPT fork/kill markers; trace replay models the sequential baseline only"
                .into(),
        ));
    }

    let mut cursor = TraceCursor::new(trace);
    let mut memory = initial_memory;
    let mut cycle: u64 = 0;
    let mut insts: u64 = 0;
    let mut cache = Cache::new(machine.cache.clone());
    let mut predictor = BranchPredictor::new();

    let edf = decoded.func(entry);
    let eb = &edf.blocks[edf.entry.index()];
    let mut frames = vec![RFrame {
        func: entry,
        block: edf.entry,
        pos: eb.body_start,
        end: eb.body_end,
        pending: 0,
    }];

    loop {
        // Mirror of the driver loop: fuel checked before every step.
        if insts > machine.fuel {
            return Err(SimError::OutOfFuel.into());
        }
        let depth = frames.len();
        let Some(frame) = frames.last_mut() else {
            return Err(malformed("step on finished thread".into()));
        };
        let func_id = frame.func;
        let df = decoded.func(func_id);

        if frame.pending > 0 {
            frame.pending -= 1;
            insts += 1;
            continue;
        }

        if frame.pos >= frame.end {
            return Err(malformed(format!(
                "fell off block {} in {}",
                frame.block, df.name
            )));
        }
        let inst_id = df.stream[frame.pos as usize];
        frame.pos += 1;
        let di = &df.insts[inst_id.index()];
        let mut latency = di.latency;

        match &di.kind {
            DKind::Param { .. }
            | DKind::BinI64 { .. }
            | DKind::BinF64 { .. }
            | DKind::UnI64 { .. }
            | DKind::UnF64 { .. }
            | DKind::IntToFloat { .. }
            | DKind::FloatToInt { .. }
            | DKind::CmpI64 { .. }
            | DKind::CmpF64 { .. }
            | DKind::Copy { .. }
            | DKind::Const { .. } => {}
            DKind::SkippedPhi => {
                return Err(malformed(format!(
                    "unscheduled phi {inst_id} executed directly"
                )));
            }
            DKind::Load { .. } => {
                let cell = cursor
                    .next_load()
                    .ok_or_else(|| ReplayError::Desync("load stream exhausted".into()))?;
                if cell < 0 || cell as usize >= memory.len() {
                    return Err(
                        SimError::Exec(spt_sim::thread::ExecError::OutOfBounds(cell)).into(),
                    );
                }
                latency = cache.access(cell as u64).max(1);
            }
            DKind::Store { .. } => {
                let (cell, bits) = cursor
                    .next_store()
                    .ok_or_else(|| ReplayError::Desync("store stream exhausted".into()))?;
                if cell < 0 || cell as usize >= memory.len() {
                    return Err(
                        SimError::Exec(spt_sim::thread::ExecError::OutOfBounds(cell)).into(),
                    );
                }
                memory[cell as usize] = bits;
                latency = cache.access(cell as u64).clamp(1, 4);
            }
            DKind::Call { callee, .. } => {
                if depth >= machine.max_depth {
                    return Err(SimError::Exec(spt_sim::thread::ExecError::StackOverflow).into());
                }
                let callee_df = decoded.func(*callee);
                let entry_block = &callee_df.blocks[callee_df.entry.index()];
                frames.push(RFrame {
                    func: *callee,
                    block: callee_df.entry,
                    pos: entry_block.body_start,
                    end: entry_block.body_end,
                    pending: 0,
                });
            }
            DKind::Unsupported => {
                return Err(malformed("non-SSA IR in simulator".into()));
            }
            DKind::Jump { target } => {
                transfer(frame, df, *target);
            }
            DKind::Branch {
                then_bb, else_bb, ..
            } => {
                let taken = cursor
                    .next_branch()
                    .ok_or_else(|| ReplayError::Desync("branch stream exhausted".into()))?;
                let target = if taken { *then_bb } else { *else_bb };
                if predictor.mispredicted(func_id, inst_id, taken) {
                    latency += machine.branch_mispredict_penalty;
                }
                transfer(frame, df, target);
            }
            DKind::Ret { .. } => {
                frames.pop();
                if frames.is_empty() {
                    cycle += latency;
                    insts += 1;
                    break;
                }
            }
            DKind::SptFork { .. } | DKind::SptKill { .. } => {
                return Err(ReplayError::Unsupported(
                    "SPT marker reached during sequential trace replay".into(),
                ));
            }
        }

        cycle += latency;
        insts += 1;
    }

    if !cursor.fully_consumed() {
        return Err(ReplayError::Desync(
            "simulation replay finished with unconsumed trace events".into(),
        ));
    }
    if insts != trace.insts_retired {
        return Err(ReplayError::Desync(format!(
            "retired-instruction totals diverged: replayed {insts} vs trace {}",
            trace.insts_retired
        )));
    }

    Ok(SimResult {
        ret: trace.ret,
        cycles: cycle,
        insts,
        memory,
        loops: HashMap::new(),
        cache_hit_rate: cache.hit_rate(),
        branch_miss_rate: predictor.miss_rate(),
    })
}

/// Mirror of the executor's intra-function transfer: point the frame at the
/// target block's body and owe one pending step per leading phi.
fn transfer(frame: &mut RFrame, df: &spt_ir::DecodedFunc, target: BlockId) {
    let tb = &df.blocks[target.index()];
    frame.pending = tb.phis.len() as u32;
    frame.block = target;
    frame.pos = tb.body_start;
    frame.end = tb.body_end;
}

//! Trace-driven profile derivation: re-fires the exact profiler hook
//! sequence of a captured interpreter run from one linear trace scan,
//! without re-evaluating any arithmetic.
//!
//! The walker mirrors `Interp::call` arm for arm — same loop bookkeeping,
//! same hook order, same retire/fuel accounting, same malformed-IR checks —
//! but takes branch directions, load addresses, store pairs and watched def
//! values from the trace streams instead of computing them. Unwatched def
//! values are reported as `Val(0)` (loads report their exact value, since
//! the memory image is replayed precisely); any collector that consumes def
//! *values* must therefore have its targets inside the capture's
//! [`WatchSet`](crate::WatchSet).

use spt_ir::{BlockId, DKind, DecodedFunc, DecodedModule, FuncId, InstId};
use spt_profile::{InterpError, InterpResult, LoopActivation, LoopEvent, Profiler, Val};
use spt_sim::SimError;

use crate::capture::WatchSet;
use crate::trace::{Trace, TraceCursor};

/// Replay failure modes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// A failure direct interpretation would also have produced (fuel,
    /// stack depth, out-of-bounds, malformed IR). Propagate as a real error.
    Interp(InterpError),
    /// A failure direct simulation would also have produced.
    Sim(SimError),
    /// The trace does not match this module/run — a stream ran dry, had
    /// events left over, or the retire totals disagree. Callers fall back
    /// to capture.
    Desync(String),
    /// The module cannot be replayed by this backend (e.g. it carries SPT
    /// fork/kill markers the baseline replayer does not model).
    Unsupported(String),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Interp(e) => write!(f, "replay: {e}"),
            ReplayError::Sim(e) => write!(f, "replay: {e}"),
            ReplayError::Desync(m) => write!(f, "trace desync: {m}"),
            ReplayError::Unsupported(m) => write!(f, "trace replay unsupported: {m}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<InterpError> for ReplayError {
    fn from(e: InterpError) -> Self {
        ReplayError::Interp(e)
    }
}

impl From<SimError> for ReplayError {
    fn from(e: SimError) -> Self {
        ReplayError::Sim(e)
    }
}

/// Execution limits mirrored from the interpreter.
#[derive(Clone, Copy, Debug)]
pub struct ReplayLimits {
    /// Maximum retired instructions.
    pub fuel: u64,
    /// Maximum call depth.
    pub max_depth: usize,
}

impl Default for ReplayLimits {
    fn default() -> Self {
        // Same defaults as `Interp::new`.
        ReplayLimits {
            fuel: 500_000_000,
            max_depth: 256,
        }
    }
}

/// Derive a full profile from `trace` by replaying it over `decoded`,
/// firing every hook of `profiler` in the exact order direct interpretation
/// would. Returns the run's [`InterpResult`] (bit-identical to the original
/// on success).
pub fn replay_profile<P: Profiler>(
    decoded: &DecodedModule,
    entry: FuncId,
    trace: &Trace,
    watch: &WatchSet,
    initial_memory: Vec<u64>,
    profiler: &mut P,
    limits: ReplayLimits,
) -> Result<InterpResult, ReplayError> {
    if watch.hash() != trace.watch_hash {
        return Err(ReplayError::Desync(format!(
            "watch-set hash {:#x} does not match trace {:#x}",
            watch.hash(),
            trace.watch_hash
        )));
    }
    let mut r = Replayer {
        decoded,
        cursor: TraceCursor::new(trace),
        watch,
        profiler,
        memory: initial_memory,
        insts_retired: 0,
        weighted_cycles: 0,
        next_activation: 0,
        limits,
    };
    r.call(entry, 0)?;
    if !r.cursor.fully_consumed() {
        return Err(ReplayError::Desync(
            "replay finished with unconsumed trace events".into(),
        ));
    }
    if r.insts_retired != trace.insts_retired || r.weighted_cycles != trace.weighted_cycles {
        return Err(ReplayError::Desync(format!(
            "retire totals diverged: replayed {}/{} cycles vs trace {}/{}",
            r.insts_retired, r.weighted_cycles, trace.insts_retired, trace.weighted_cycles
        )));
    }
    Ok(InterpResult {
        ret: trace.ret.map(Val),
        insts_retired: r.insts_retired,
        weighted_cycles: r.weighted_cycles,
        memory: r.memory,
    })
}

struct Replayer<'a, P: Profiler> {
    decoded: &'a DecodedModule,
    cursor: TraceCursor<'a>,
    watch: &'a WatchSet,
    profiler: &'a mut P,
    memory: Vec<u64>,
    insts_retired: u64,
    weighted_cycles: u64,
    next_activation: u64,
    limits: ReplayLimits,
}

impl<P: Profiler> Replayer<'_, P> {
    fn next_branch(&mut self) -> Result<bool, ReplayError> {
        self.cursor
            .next_branch()
            .ok_or_else(|| ReplayError::Desync("branch stream exhausted".into()))
    }

    fn next_load(&mut self) -> Result<i64, ReplayError> {
        self.cursor
            .next_load()
            .ok_or_else(|| ReplayError::Desync("load stream exhausted".into()))
    }

    fn next_store(&mut self) -> Result<(i64, u64), ReplayError> {
        self.cursor
            .next_store()
            .ok_or_else(|| ReplayError::Desync("store stream exhausted".into()))
    }

    fn next_def(&mut self) -> Result<Val, ReplayError> {
        self.cursor
            .next_def()
            .map(Val)
            .ok_or_else(|| ReplayError::Desync("def stream exhausted".into()))
    }

    /// Def value for an on_def site: watched insts read the recorded value;
    /// unwatched ones report `Val(0)`.
    fn def_value(&mut self, func: FuncId, inst: InstId) -> Result<Val, ReplayError> {
        if self.watch.contains(func, inst) {
            self.next_def()
        } else {
            Ok(Val(0))
        }
    }

    fn retire(
        &mut self,
        func: FuncId,
        inst: InstId,
        latency: u64,
        loops: &[LoopActivation],
    ) -> Result<(), ReplayError> {
        self.insts_retired += 1;
        self.weighted_cycles += latency;
        self.profiler.on_inst(func, inst, latency, loops);
        if self.insts_retired > self.limits.fuel {
            return Err(InterpError::OutOfFuel.into());
        }
        Ok(())
    }

    fn check_addr(&self, addr: i64) -> Result<usize, ReplayError> {
        if addr < 0 || addr as usize >= self.memory.len() {
            Err(InterpError::OutOfBounds { addr }.into())
        } else {
            Ok(addr as usize)
        }
    }

    fn update_loops(
        &mut self,
        func_id: FuncId,
        df: &DecodedFunc,
        from: Option<BlockId>,
        to: BlockId,
        loop_stack: &mut Vec<LoopActivation>,
    ) {
        let facts = &df.facts;
        while let Some(top) = loop_stack.last() {
            if facts.loop_contains(top.loop_id, to) {
                break;
            }
            let Some(act) = loop_stack.pop() else { break };
            self.profiler
                .on_loop(func_id, LoopEvent::Exit(act.loop_id), loop_stack);
        }
        if let Some(lid) = facts.header_loop[to.index()] {
            let is_active_top = loop_stack.last().map(|a| a.loop_id) == Some(lid);
            let from_inside = from.is_some_and(|f| facts.loop_contains(lid, f));
            if is_active_top && from_inside {
                if let Some(top) = loop_stack.last_mut() {
                    top.iter += 1;
                }
                self.profiler
                    .on_loop(func_id, LoopEvent::Iterate(lid), loop_stack);
            } else {
                let act = LoopActivation {
                    loop_id: lid,
                    activation: self.next_activation,
                    iter: 0,
                };
                self.next_activation += 1;
                loop_stack.push(act);
                self.profiler
                    .on_loop(func_id, LoopEvent::Enter(lid), loop_stack);
            }
        }
    }

    /// Replays one function activation. Returns whether the executed `Ret`
    /// carried a value (so `Call` sites know to fire `on_def`).
    fn call(&mut self, func_id: FuncId, depth: usize) -> Result<bool, ReplayError> {
        if depth >= self.limits.max_depth {
            return Err(InterpError::StackOverflow.into());
        }
        let df = self.decoded.func(func_id);
        let mut loop_stack: Vec<LoopActivation> = Vec::new();

        let mut block = df.entry;
        let mut from: Option<BlockId> = None;
        self.profiler.on_block(func_id, None, block);

        'blocks: loop {
            self.update_loops(func_id, df, from, block, &mut loop_stack);

            let b = &df.blocks[block.index()];

            if !b.phis.is_empty() {
                let Some(pred) = from else {
                    return Err(InterpError::Malformed(format!(
                        "phi {} in entry block of {}",
                        b.phis[0], df.name
                    ))
                    .into());
                };
                let srcs = match b.preds.iter().position(|&p| p == pred) {
                    Some(pi) => &b.phi_srcs[pi],
                    None => {
                        return Err(InterpError::Malformed(format!(
                            "phi {} missing arg for pred {pred}",
                            b.phis[0]
                        ))
                        .into())
                    }
                };
                for (k, &i) in b.phis.iter().enumerate() {
                    if srcs[k].is_none() {
                        return Err(InterpError::Malformed(format!(
                            "phi {i} missing arg for pred {pred}"
                        ))
                        .into());
                    }
                    let v = self.def_value(func_id, i)?;
                    self.profiler.on_def(func_id, i, v, &loop_stack);
                    self.retire(func_id, i, 0, &loop_stack)?;
                }
            }

            for &i in b.body.iter() {
                let di = &df.insts[i.index()];
                let latency = di.latency;
                match &di.kind {
                    DKind::Param { .. } | DKind::Const { .. } => {}
                    DKind::BinI64 { .. }
                    | DKind::BinF64 { .. }
                    | DKind::UnI64 { .. }
                    | DKind::UnF64 { .. }
                    | DKind::IntToFloat { .. }
                    | DKind::FloatToInt { .. }
                    | DKind::CmpI64 { .. }
                    | DKind::CmpF64 { .. }
                    | DKind::Copy { .. } => {
                        let v = self.def_value(func_id, i)?;
                        self.profiler.on_def(func_id, i, v, &loop_stack);
                    }
                    DKind::Load { .. } => {
                        let a = self.next_load()?;
                        let cell = self.check_addr(a)?;
                        let mv = Val(self.memory[cell]);
                        self.profiler.on_load(func_id, i, a, mv, &loop_stack);
                        let v = if self.watch.contains(func_id, i) {
                            self.next_def()?
                        } else {
                            mv
                        };
                        self.profiler.on_def(func_id, i, v, &loop_stack);
                    }
                    DKind::Store { .. } => {
                        let (a, v) = self.next_store()?;
                        let cell = self.check_addr(a)?;
                        self.memory[cell] = v;
                        self.profiler.on_store(func_id, i, a, Val(v), &loop_stack);
                    }
                    DKind::Call { callee, .. } => {
                        self.profiler.on_call_enter(func_id, i, *callee);
                        let has_ret = self.call(*callee, depth + 1)?;
                        self.profiler.on_call_exit(func_id, i, *callee);
                        if has_ret {
                            let v = self.def_value(func_id, i)?;
                            self.profiler.on_def(func_id, i, v, &loop_stack);
                        }
                    }
                    DKind::Unsupported => {
                        return Err(InterpError::Malformed(
                            "interpreter requires SSA form (run mem2reg first)".into(),
                        )
                        .into());
                    }
                    DKind::Jump { target } => {
                        self.retire(func_id, i, latency, &loop_stack)?;
                        self.profiler.on_block(func_id, Some(block), *target);
                        from = Some(block);
                        block = *target;
                        continue 'blocks;
                    }
                    DKind::Branch {
                        then_bb, else_bb, ..
                    } => {
                        let taken = self.next_branch()?;
                        let target = if taken { *then_bb } else { *else_bb };
                        self.profiler.on_branch(func_id, i, taken);
                        self.retire(func_id, i, latency, &loop_stack)?;
                        self.profiler.on_block(func_id, Some(block), target);
                        from = Some(block);
                        block = target;
                        continue 'blocks;
                    }
                    DKind::Ret { val } => {
                        self.retire(func_id, i, latency, &loop_stack)?;
                        while let Some(act) = loop_stack.pop() {
                            self.profiler.on_loop(
                                func_id,
                                LoopEvent::Exit(act.loop_id),
                                &loop_stack,
                            );
                        }
                        return Ok(val.is_some());
                    }
                    DKind::SptFork { .. } | DKind::SptKill { .. } => {}
                    DKind::SkippedPhi => continue,
                }
                self.retire(func_id, i, latency, &loop_stack)?;
            }
            return Err(InterpError::Malformed(format!(
                "block {block} of {} fell through without terminator",
                df.name
            ))
            .into());
        }
    }
}

//! The simulator's superblock execution tier: threaded-code dispatch of the
//! fused [`SuperblockModule`] form for the *main* thread.
//!
//! [`Run::run_super`] advances the main thread exactly like repeated
//! [`Thread::step`] calls driven by [`Run::run`](crate::sim), but executes
//! whole fused blocks between returns: it only comes back to the driver at
//! the control events the episode machinery must observe (`SPT_FORK`,
//! `SPT_KILL`, a transfer matching the watched iteration boundary, program
//! finish) or when the retired-instruction budget is crossed
//! ([`SuperStop::Fuel`]).
//!
//! **Exactness contract**: every constituent instruction of a fused op
//! charges the same cycle latency, retire count, loop attribution and
//! cache/branch-predictor accesses, in the same order, as the dense stepper
//! — the shared cache and predictor are stateful, so identical access
//! sequences are what make the two tiers produce bit-identical
//! [`SimResult`](crate::SimResult)s. Cycle/retire/attribution charges are
//! *batched* per fused walk and flushed at every exit (event, fault,
//! transfer): nothing the walk executes reads the global clock, so the batch
//! is unobservable. A block whose full retire count could cross the fuel
//! budget takes the dense arm instead, which reproduces the exact
//! per-instruction abort point. Blocks the lowering left dense
//! (`range: None`), and mid-block resumptions that land inside a fused pair
//! (validation replay can stop anywhere), likewise fall back to
//! [`Thread::step`] until the next block boundary re-synchronizes via
//! [`SuperblockFunc::op_at`](spt_ir::SuperblockFunc).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::sim::Run;
use crate::thread::{transfer, ExecError, MemView, StepEvent, Thread, Timing};
use spt_ir::superblock::{F2_IMM1, F2_IMM2, F2_OP1_REV, F2_R_RIGHT, F_SWAP};
use spt_ir::{BlockId, FuncId, SOpc, SuperblockModule, NO_SLOT};

/// Why [`Run::run_super`] returned to the driver.
pub(crate) enum SuperStop {
    /// A control event the driver's episode machinery must handle.
    Event(StepEvent),
    /// The retired-instruction count crossed the fuel budget; the driver's
    /// loop-top check turns this into `OutOfFuel`.
    Fuel,
}

impl Run<'_> {
    /// Per-retired-instruction accounting: the fused-tier equivalent of the
    /// driver's `insts += 1; attribute_main(&rec)` plus the stepper's cycle
    /// advance. Returns `true` when the fuel budget is now crossed.
    #[inline(always)]
    fn charge(&mut self, latency: u64) -> bool {
        self.cycle += latency;
        self.insts += 1;
        for &(_, _, slot) in &self.active_tags {
            let s = &mut self.loops[slot as usize].1;
            s.main_insts += 1;
            s.seq_cycles += latency;
        }
        self.insts > self.config.fuel
    }

    /// Flushes a fused walk's batched accounting: `dinsts` retired
    /// instructions summing `dcycle` cycles, attributed exactly as `dinsts`
    /// individual [`Run::charge`] calls (the active-tag set cannot change
    /// mid-walk — fork/kill events end the walk).
    #[inline(always)]
    pub(crate) fn flush_charges(&mut self, dcycle: u64, dinsts: u64) {
        self.cycle += dcycle;
        self.insts += dinsts;
        for &(_, _, slot) in &self.active_tags {
            let s = &mut self.loops[slot as usize].1;
            s.main_insts += dinsts;
            s.seq_cycles += dcycle;
        }
    }

    /// Advances the main thread until a driver-visible event or fuel
    /// exhaustion.
    ///
    /// `watch` is the active episode's `(spawn_func, spawn_target, depth)`
    /// iteration boundary: transfers matching it are returned as events for
    /// validation, all others are handled inline.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on program faults, exactly as the dense
    /// stepper would (a faulting constituent is neither charged nor
    /// recorded; completed constituents before it are flushed first).
    pub(crate) fn run_super(
        &mut self,
        thread: &mut Thread,
        sup: &SuperblockModule,
        watch: Option<(FuncId, BlockId, usize)>,
    ) -> Result<SuperStop, ExecError> {
        'outer: loop {
            let depth = thread.frames.len();
            let frame = thread
                .frames
                .last_mut()
                .ok_or_else(|| ExecError::Malformed("step on finished thread".into()))?;
            let func_id = frame.func;
            let df = self.decoded.func(func_id);
            let sf = sup.func(func_id);

            // Deferred phi writes from the last transfer, delivered in a
            // batch: each is one retired instruction at latency 0.
            while frame.pending_head < frame.pending.len() {
                let (phi, bits) = frame.pending[frame.pending_head];
                frame.pending_head += 1;
                frame.values[phi.index()] = bits;
                if self.charge(0) {
                    return Ok(SuperStop::Fuel);
                }
            }

            // Fused dispatch only when the block lowered, the resume point
            // is an op start, and the whole block's retires fit under the
            // fuel budget — the last condition means the walk below needs no
            // per-op fuel checks, and a near-exhaustion block runs dense
            // with the exact per-instruction abort point.
            let sb = &sf.blocks[frame.block.index()];
            let fused = sb.range.is_some()
                && (frame.pos as usize) < sf.op_at.len()
                && sf.op_at[frame.pos as usize] != u32::MAX
                && self.insts + sb.retires <= self.config.fuel;

            if fused {
                // Elided zero-latency constant defs are written as raw data
                // (idempotent under SSA), so dense stretches of the same
                // frame still read exact values from those slots.
                for &(slot, bits) in sb.consts.iter() {
                    frame.values[slot as usize] = bits;
                }
                let mut idx = sf.op_at[frame.pos as usize] as usize;
                // Batched accounting, flushed at every exit from the walk.
                let mut dcycle: u64 = 0;
                let mut dinsts: u64 = 0;
                loop {
                    let s = &sf.ops[idx];
                    let m = &sf.meta[idx];
                    // The gap to this op's stream position is the run of
                    // elided constants just crossed: one retire each, zero
                    // latency.
                    dinsts += u64::from(m.pos - frame.pos);
                    frame.pos = m.pos;
                    // Pure single ops share the write-back/accounting tail.
                    let def: u64 = match s.opc {
                        SOpc::Param => frame.args.get(s.imm as usize).copied().unwrap_or(0),
                        SOpc::ConstV | SOpc::FoldedDef => s.imm,
                        SOpc::AddRR => {
                            let (a, b) = (frame.values[s.a as usize], frame.values[s.b as usize]);
                            (a as i64).wrapping_add(b as i64) as u64
                        }
                        SOpc::AddImm => {
                            (frame.values[s.a as usize] as i64).wrapping_add(s.imm as i64) as u64
                        }
                        SOpc::SubRR => {
                            let (a, b) = (frame.values[s.a as usize], frame.values[s.b as usize]);
                            (a as i64).wrapping_sub(b as i64) as u64
                        }
                        SOpc::SubImm => {
                            (frame.values[s.a as usize] as i64).wrapping_sub(s.imm as i64) as u64
                        }
                        SOpc::RsbImm => {
                            (s.imm as i64).wrapping_sub(frame.values[s.a as usize] as i64) as u64
                        }
                        SOpc::MulRR => {
                            let (a, b) = (frame.values[s.a as usize], frame.values[s.b as usize]);
                            (a as i64).wrapping_mul(b as i64) as u64
                        }
                        SOpc::MulImm => {
                            (frame.values[s.a as usize] as i64).wrapping_mul(s.imm as i64) as u64
                        }
                        SOpc::BinRR => {
                            let (a, b) = (frame.values[s.a as usize], frame.values[s.b as usize]);
                            s.bin.eval_i64(a as i64, b as i64) as u64
                        }
                        SOpc::BinImm => s
                            .bin
                            .eval_i64(frame.values[s.a as usize] as i64, s.imm as i64)
                            as u64,
                        SOpc::BinImmL => s
                            .bin
                            .eval_i64(s.imm as i64, frame.values[s.a as usize] as i64)
                            as u64,
                        SOpc::Fuse2 => {
                            let x = frame.values[s.a as usize] as i64;
                            let y = if s.flags & F2_IMM1 != 0 {
                                s.imm as u32 as i32 as i64
                            } else {
                                frame.values[s.b as usize] as i64
                            };
                            let r = if s.flags & F2_OP1_REV != 0 {
                                s.bin.eval_i64(y, x)
                            } else {
                                s.bin.eval_i64(x, y)
                            };
                            let z = if s.flags & F2_IMM2 != 0 {
                                (s.imm >> 32) as u32 as i32 as i64
                            } else {
                                frame.values[s.aux as usize] as i64
                            };
                            let v = if s.flags & F2_R_RIGHT != 0 {
                                s.bin2.eval_i64(z, r)
                            } else {
                                s.bin2.eval_i64(r, z)
                            };
                            frame.values[s.dst as usize] = v as u64;
                            dcycle += u64::from(m.lat) + u64::from(m.lat2);
                            dinsts += 2;
                            frame.pos += 2;
                            idx += 1;
                            continue;
                        }
                        SOpc::Fuse2II | SOpc::Fuse2IR | SOpc::Fuse2IRr => {
                            let r = s.bin.eval_i64(
                                frame.values[s.a as usize] as i64,
                                s.imm as u32 as i32 as i64,
                            );
                            let v = match s.opc {
                                SOpc::Fuse2II => {
                                    s.bin2.eval_i64(r, (s.imm >> 32) as u32 as i32 as i64)
                                }
                                SOpc::Fuse2IR => {
                                    s.bin2.eval_i64(r, frame.values[s.aux as usize] as i64)
                                }
                                _ => s.bin2.eval_i64(frame.values[s.aux as usize] as i64, r),
                            };
                            frame.values[s.dst as usize] = v as u64;
                            dcycle += u64::from(m.lat) + u64::from(m.lat2);
                            dinsts += 2;
                            frame.pos += 2;
                            idx += 1;
                            continue;
                        }
                        SOpc::BinF64RR => {
                            let (a, b) = (frame.values[s.a as usize], frame.values[s.b as usize]);
                            s.bin
                                .eval_f64(f64::from_bits(a), f64::from_bits(b))
                                .to_bits()
                        }
                        SOpc::BinF64Imm => s
                            .bin
                            .eval_f64(
                                f64::from_bits(frame.values[s.a as usize]),
                                f64::from_bits(s.imm),
                            )
                            .to_bits(),
                        SOpc::BinF64ImmL => s
                            .bin
                            .eval_f64(
                                f64::from_bits(s.imm),
                                f64::from_bits(frame.values[s.a as usize]),
                            )
                            .to_bits(),
                        SOpc::UnI64 => s.un.eval_i64(frame.values[s.a as usize] as i64) as u64,
                        SOpc::UnF64 => {
                            s.un.eval_f64(f64::from_bits(frame.values[s.a as usize]))
                                .to_bits()
                        }
                        SOpc::IntToFloat => ((frame.values[s.a as usize] as i64) as f64).to_bits(),
                        SOpc::FloatToInt => {
                            (f64::from_bits(frame.values[s.a as usize]) as i64) as u64
                        }
                        SOpc::Copy => frame.values[s.a as usize],
                        SOpc::CmpRR => {
                            let (a, b) = (frame.values[s.a as usize], frame.values[s.b as usize]);
                            s.cmp.eval_i64(a as i64, b as i64) as u64
                        }
                        SOpc::CmpImm => s
                            .cmp
                            .eval_i64(frame.values[s.a as usize] as i64, s.imm as i64)
                            as u64,
                        SOpc::CmpF64RR => {
                            let (a, b) = (frame.values[s.a as usize], frame.values[s.b as usize]);
                            s.cmp.eval_f64(f64::from_bits(a), f64::from_bits(b)) as u64
                        }
                        SOpc::CmpF64Imm => s.cmp.eval_f64(
                            f64::from_bits(frame.values[s.a as usize]),
                            f64::from_bits(s.imm),
                        ) as u64,

                        SOpc::Load | SOpc::LoadImm => {
                            let cell = if s.opc == SOpc::Load {
                                frame.values[s.a as usize] as i64
                            } else {
                                s.imm as i64
                            };
                            let v =
                                match usize::try_from(cell).ok().and_then(|i| self.memory.get(i)) {
                                    Some(v) => *v,
                                    None => {
                                        self.flush_charges(dcycle, dinsts);
                                        return Err(ExecError::OutOfBounds(cell));
                                    }
                                };
                            frame.values[s.dst as usize] = v;
                            dcycle += self.cache.access(cell as u64).max(1);
                            dinsts += 1;
                            frame.pos += 1;
                            idx += 1;
                            continue;
                        }
                        SOpc::StoreRR | SOpc::StoreRI | SOpc::StoreIR | SOpc::StoreII => {
                            let cell = match s.opc {
                                SOpc::StoreRR | SOpc::StoreRI => frame.values[s.a as usize] as i64,
                                SOpc::StoreIR => s.imm as i64,
                                _ => s.aux as i64,
                            };
                            let bits = match s.opc {
                                SOpc::StoreRR | SOpc::StoreIR => frame.values[s.b as usize],
                                _ => s.imm,
                            };
                            match usize::try_from(cell)
                                .ok()
                                .and_then(|i| self.memory.get_mut(i))
                            {
                                Some(slot) => *slot = bits,
                                None => {
                                    self.flush_charges(dcycle, dinsts);
                                    return Err(ExecError::OutOfBounds(cell));
                                }
                            }
                            dcycle += self.cache.access(cell as u64).clamp(1, 4);
                            dinsts += 1;
                            frame.pos += 1;
                            idx += 1;
                            continue;
                        }

                        SOpc::Jump => {
                            let target = s.t1;
                            transfer(frame, df, target);
                            self.flush_charges(dcycle + u64::from(m.lat), dinsts + 1);
                            if watch == Some((func_id, target, depth)) {
                                return Ok(SuperStop::Event(StepEvent::Transfer {
                                    to: target,
                                    func: func_id,
                                }));
                            }
                            continue 'outer;
                        }
                        SOpc::BinJump | SOpc::BinImmJump => {
                            let a = frame.values[s.a as usize] as i64;
                            let v = if s.opc == SOpc::BinJump {
                                s.bin.eval_i64(a, frame.values[s.b as usize] as i64)
                            } else if s.flags & F_SWAP != 0 {
                                s.bin.eval_i64(s.imm as i64, a)
                            } else {
                                s.bin.eval_i64(a, s.imm as i64)
                            };
                            frame.values[s.dst as usize] = v as u64;
                            let target = s.t1;
                            transfer(frame, df, target);
                            self.flush_charges(
                                dcycle + u64::from(m.lat) + u64::from(m.lat2),
                                dinsts + 2,
                            );
                            if watch == Some((func_id, target, depth)) {
                                return Ok(SuperStop::Event(StepEvent::Transfer {
                                    to: target,
                                    func: func_id,
                                }));
                            }
                            continue 'outer;
                        }
                        SOpc::Branch | SOpc::BranchImm => {
                            let taken = if s.opc == SOpc::Branch {
                                frame.values[s.a as usize] != 0
                            } else {
                                s.imm != 0
                            };
                            let target = if taken { s.t1 } else { s.t2 };
                            let mut lat = u64::from(m.lat);
                            if self.predictor.mispredicted(func_id, m.inst, taken) {
                                lat += self.config.branch_mispredict_penalty;
                            }
                            transfer(frame, df, target);
                            self.flush_charges(dcycle + lat, dinsts + 1);
                            if watch == Some((func_id, target, depth)) {
                                return Ok(SuperStop::Event(StepEvent::Transfer {
                                    to: target,
                                    func: func_id,
                                }));
                            }
                            continue 'outer;
                        }
                        SOpc::CmpBr | SOpc::CmpBrImm => {
                            let a = frame.values[s.a as usize] as i64;
                            let b = if s.opc == SOpc::CmpBr {
                                frame.values[s.b as usize] as i64
                            } else {
                                s.imm as i64
                            };
                            let taken = s.cmp.eval_i64(a, b);
                            if s.dst != NO_SLOT {
                                frame.values[s.dst as usize] = taken as u64;
                            }
                            let target = if taken { s.t1 } else { s.t2 };
                            let mut lat2 = u64::from(m.lat2);
                            if self.predictor.mispredicted(func_id, m.inst2, taken) {
                                lat2 += self.config.branch_mispredict_penalty;
                            }
                            transfer(frame, df, target);
                            self.flush_charges(dcycle + u64::from(m.lat) + lat2, dinsts + 2);
                            if watch == Some((func_id, target, depth)) {
                                return Ok(SuperStop::Event(StepEvent::Transfer {
                                    to: target,
                                    func: func_id,
                                }));
                            }
                            continue 'outer;
                        }
                        SOpc::LoadBin | SOpc::LoadBinImm => {
                            let cell = frame.values[s.a as usize] as i64;
                            let v =
                                match usize::try_from(cell).ok().and_then(|i| self.memory.get(i)) {
                                    Some(v) => *v,
                                    None => {
                                        self.flush_charges(dcycle, dinsts);
                                        return Err(ExecError::OutOfBounds(cell));
                                    }
                                };
                            if s.dst != NO_SLOT {
                                frame.values[s.dst as usize] = v;
                            }
                            dcycle += self.cache.access(cell as u64).max(1);
                            // Binary constituent (pure: cannot fault).
                            let other = if s.opc == SOpc::LoadBin {
                                frame.values[s.b as usize] as i64
                            } else {
                                s.imm as i64
                            };
                            let r = if s.flags & F_SWAP != 0 {
                                s.bin.eval_i64(other, v as i64)
                            } else {
                                s.bin.eval_i64(v as i64, other)
                            };
                            frame.values[s.aux as usize] = r as u64;
                            dcycle += u64::from(m.lat2);
                            dinsts += 2;
                            frame.pos += 2;
                            idx += 1;
                            continue;
                        }
                        SOpc::BinStore | SOpc::BinStoreImm => {
                            let a = frame.values[s.a as usize] as i64;
                            let r = if s.opc == SOpc::BinStore {
                                s.bin.eval_i64(a, frame.values[s.b as usize] as i64)
                            } else if s.flags & F_SWAP != 0 {
                                s.bin.eval_i64(s.imm as i64, a)
                            } else {
                                s.bin.eval_i64(a, s.imm as i64)
                            } as u64;
                            if s.dst != NO_SLOT {
                                frame.values[s.dst as usize] = r;
                            }
                            dcycle += u64::from(m.lat);
                            dinsts += 1;
                            // The store constituent can fault: the binary
                            // half above is charged, the faulting store is
                            // not — the dense stepper's exact accounting.
                            let cell = frame.values[s.aux as usize] as i64;
                            match usize::try_from(cell)
                                .ok()
                                .and_then(|i| self.memory.get_mut(i))
                            {
                                Some(slot) => *slot = r,
                                None => {
                                    frame.pos += 1;
                                    self.flush_charges(dcycle, dinsts);
                                    return Err(ExecError::OutOfBounds(cell));
                                }
                            }
                            dcycle += self.cache.access(cell as u64).clamp(1, 4);
                            dinsts += 1;
                            frame.pos += 2;
                            idx += 1;
                            continue;
                        }
                        SOpc::AgenLoad | SOpc::AgenLoadImm => {
                            let x = frame.values[s.a as usize] as i64;
                            let cell = if s.opc == SOpc::AgenLoad {
                                s.bin.eval_i64(x, frame.values[s.b as usize] as i64)
                            } else if s.flags & F_SWAP != 0 {
                                s.bin.eval_i64(s.imm as i64, x)
                            } else {
                                s.bin.eval_i64(x, s.imm as i64)
                            };
                            if s.aux != NO_SLOT {
                                frame.values[s.aux as usize] = cell as u64;
                            }
                            // Address-generation half retires before a
                            // faulting load, as in the dense stepper.
                            dcycle += u64::from(m.lat);
                            dinsts += 1;
                            let v =
                                match usize::try_from(cell).ok().and_then(|i| self.memory.get(i)) {
                                    Some(v) => *v,
                                    None => {
                                        frame.pos += 1;
                                        self.flush_charges(dcycle, dinsts);
                                        return Err(ExecError::OutOfBounds(cell));
                                    }
                                };
                            frame.values[s.dst as usize] = v;
                            dcycle += self.cache.access(cell as u64).max(1);
                            dinsts += 1;
                            frame.pos += 2;
                            idx += 1;
                            continue;
                        }
                        SOpc::AgenStore | SOpc::AgenStoreImm => {
                            let x = frame.values[s.a as usize] as i64;
                            let cell = if s.opc == SOpc::AgenStore {
                                s.bin.eval_i64(x, frame.values[s.b as usize] as i64)
                            } else if s.flags & F_SWAP != 0 {
                                s.bin.eval_i64(s.imm as i64, x)
                            } else {
                                s.bin.eval_i64(x, s.imm as i64)
                            };
                            if s.dst != NO_SLOT {
                                frame.values[s.dst as usize] = cell as u64;
                            }
                            dcycle += u64::from(m.lat);
                            dinsts += 1;
                            let bits = frame.values[s.aux as usize];
                            match usize::try_from(cell)
                                .ok()
                                .and_then(|i| self.memory.get_mut(i))
                            {
                                Some(slot) => *slot = bits,
                                None => {
                                    frame.pos += 1;
                                    self.flush_charges(dcycle, dinsts);
                                    return Err(ExecError::OutOfBounds(cell));
                                }
                            }
                            dcycle += self.cache.access(cell as u64).clamp(1, 4);
                            dinsts += 1;
                            frame.pos += 2;
                            idx += 1;
                            continue;
                        }

                        SOpc::RetVal | SOpc::RetImm | SOpc::RetVoid => {
                            let bits = match s.opc {
                                SOpc::RetVal => Some(frame.values[s.a as usize]),
                                SOpc::RetImm => Some(s.imm),
                                _ => None,
                            };
                            let ret_slot = frame.ret_slot;
                            self.flush_charges(dcycle + u64::from(m.lat), dinsts + 1);
                            if let Some(done) = thread.frames.pop() {
                                thread.pool.push(done);
                            }
                            match thread.frames.last_mut() {
                                Some(parent) => {
                                    if let (Some(slot), Some(v)) = (ret_slot, bits) {
                                        parent.values[slot.index()] = v;
                                    }
                                    let (to, pf) = (parent.block, parent.func);
                                    if watch == Some((pf, to, thread.frames.len())) {
                                        return Ok(SuperStop::Event(StepEvent::Transfer {
                                            to,
                                            func: pf,
                                        }));
                                    }
                                    continue 'outer;
                                }
                                None => {
                                    return Ok(SuperStop::Event(StepEvent::Finished {
                                        value: bits,
                                    }));
                                }
                            }
                        }
                        SOpc::SptFork => {
                            frame.pos += 1;
                            self.flush_charges(dcycle + u64::from(m.lat), dinsts + 1);
                            return Ok(SuperStop::Event(StepEvent::Fork {
                                tag: s.imm as u32,
                                target: s.t1,
                                func: func_id,
                            }));
                        }
                        SOpc::SptKill => {
                            frame.pos += 1;
                            self.flush_charges(dcycle + u64::from(m.lat), dinsts + 1);
                            return Ok(SuperStop::Event(StepEvent::Kill { tag: s.imm as u32 }));
                        }
                    };
                    frame.values[s.dst as usize] = def;
                    dcycle += u64::from(m.lat);
                    dinsts += 1;
                    frame.pos += 1;
                    idx += 1;
                }
            } else {
                // Dense stretch: irregular block, a mid-pair resumption
                // after validation replay, or a block whose batched retires
                // could cross the fuel budget. Step until the next transfer
                // re-synchronizes with the fused code.
                loop {
                    let (rec, event) = {
                        let mut view = MemView::Direct(&mut self.memory);
                        let mut timing = Timing {
                            cycle: &mut self.cycle,
                            cache: &mut self.cache,
                            predictor: &mut self.predictor,
                            mispredict_penalty: self.config.branch_mispredict_penalty,
                        };
                        thread.step(self.decoded, &mut view, Some(&mut timing))?
                    };
                    self.insts += 1;
                    for &(_, _, slot) in &self.active_tags {
                        let s = &mut self.loops[slot as usize].1;
                        s.main_insts += 1;
                        s.seq_cycles += rec.latency;
                    }
                    match event {
                        StepEvent::Continue => {
                            if self.insts > self.config.fuel {
                                return Ok(SuperStop::Fuel);
                            }
                        }
                        StepEvent::Transfer { to, func } => {
                            if watch == Some((func, to, thread.depth())) {
                                return Ok(SuperStop::Event(StepEvent::Transfer { to, func }));
                            }
                            if self.insts > self.config.fuel {
                                return Ok(SuperStop::Fuel);
                            }
                            continue 'outer;
                        }
                        event @ (StepEvent::Fork { .. }
                        | StepEvent::Kill { .. }
                        | StepEvent::Finished { .. }) => {
                            return Ok(SuperStop::Event(event));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::machine::MachineConfig;
    use crate::sim::{SimError, SptSimulator};
    use spt_ir::{set_exec_tier_override, ExecTier, Module};
    use std::sync::Mutex;

    /// Tier overrides are process-wide; tests that set them serialize here.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn compile(src: &str) -> Module {
        spt_frontend::compile(src).unwrap()
    }

    fn with_tier<T>(tier: ExecTier, f: impl FnOnce() -> T) -> T {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        set_exec_tier_override(Some(tier));
        let out = f();
        set_exec_tier_override(None);
        out
    }

    fn run_tier(module: &Module, entry: &str, args: &[i64], tier: ExecTier) -> crate::SimResult {
        with_tier(tier, || {
            SptSimulator::new().run(module, entry, args).unwrap()
        })
    }

    fn assert_identical(a: &crate::SimResult, b: &crate::SimResult) {
        assert_eq!(a.ret, b.ret);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.insts, b.insts);
        assert_eq!(a.memory, b.memory);
        assert_eq!(a.cache_hit_rate, b.cache_hit_rate);
        assert_eq!(a.branch_miss_rate, b.branch_miss_rate);
        let mut la: Vec<_> = a.loops.iter().collect();
        let mut lb: Vec<_> = b.loops.iter().collect();
        la.sort_by_key(|(t, _)| **t);
        lb.sort_by_key(|(t, _)| **t);
        assert_eq!(format!("{la:?}"), format!("{lb:?}"));
    }

    #[test]
    fn super_matches_dense_on_plain_loops() {
        let src = "
            global a[256]: int;
            fn helper(x: int) -> int { return x * 3 + 1; }
            fn main(n: int) -> int {
                let s = 0;
                for (let i = 0; i < n; i = i + 1) {
                    a[i % 256] = i * i;
                    s = s + a[(i + 13) % 256] % 7 + helper(i) % 5;
                }
                return s;
            }
        ";
        let module = compile(src);
        let dense = run_tier(&module, "main", &[400], ExecTier::Dense);
        let sup = run_tier(&module, "main", &[400], ExecTier::Super);
        assert_identical(&dense, &sup);
        assert!(sup.cycles > 0);
    }

    #[test]
    fn super_matches_dense_on_float_and_branchy_code() {
        let src = "
            global f[64]: float;
            fn main(n: int) -> int {
                let s = 0;
                let x = 1.5;
                for (let i = 0; i < n; i = i + 1) {
                    x = x * 1.001 + 0.25;
                    if (i % 3 == 0) { s = s + i; } else { s = s - 1; }
                    f[i % 64] = x;
                }
                return s + int(f[0]);
            }
        ";
        let module = compile(src);
        let dense = run_tier(&module, "main", &[500], ExecTier::Dense);
        let sup = run_tier(&module, "main", &[500], ExecTier::Super);
        assert_identical(&dense, &sup);
    }

    /// Hand-transforms loop 0 of `fname` with an empty partition (only the
    /// forced header-test closure moves), the same shape the sim tests use:
    /// every episode misspeculates part of its trace, exercising fork,
    /// validation, re-execution and kill under both tiers.
    fn force_transform(src: &str, fname: &str) -> Module {
        use spt_cost::dep_graph::{DepGraph, DepGraphConfig, NodeClass, Profiles};
        use spt_transform::{emit_spt_loop, SptLoopSpec};
        let mut module = spt_frontend::compile(src).unwrap();
        let fid = module.func_by_name(fname).unwrap();
        let graph = DepGraph::build(
            &module,
            fid,
            spt_ir::loops::LoopId::new(0),
            Profiles::default(),
            &DepGraphConfig::default(),
        );
        let func = module.func(fid);
        let header = {
            let cfg = spt_ir::Cfg::compute(func);
            let dom = spt_ir::DomTree::compute(&cfg);
            let forest = spt_ir::LoopForest::compute(func, &cfg, &dom);
            forest.get(spt_ir::loops::LoopId::new(0)).header
        };
        let term = func.terminator(header).unwrap();
        let mut move_insts = std::collections::HashSet::new();
        let mut replicate_insts = std::collections::HashSet::new();
        if let Some(&tnode) = graph.index.get(&term) {
            for n in graph.closure(&[tnode]) {
                let inst = graph.nodes[n];
                if graph.class[n] == NodeClass::Branch {
                    replicate_insts.insert(inst);
                } else {
                    move_insts.insert(inst);
                }
            }
        }
        let spec = SptLoopSpec {
            loop_id: spt_ir::loops::LoopId::new(0),
            move_insts,
            replicate_insts,
            loop_tag: 9,
        };
        emit_spt_loop(module.func_mut(fid), &spec).expect("emit");
        spt_ir::passes::cleanup(module.func_mut(fid));
        spt_ir::verify::verify_module(&module).expect("verifies");
        module
    }

    #[test]
    fn super_matches_dense_under_speculation() {
        let src = "
            global a[128]: int;
            fn f(n: int) -> int {
                let i = 0;
                let s = 0;
                while (i < n) {
                    let x = (i * 13 + 5) % 128;
                    if (s % 3 == 0) {
                        s = s + a[x] % 7 + x;
                    } else {
                        s = s + 1;
                    }
                    a[(x + 1) % 128] = s % 251;
                    i = i + 1;
                }
                return s;
            }
        ";
        let module = force_transform(src, "f");
        let dense = run_tier(&module, "f", &[400], ExecTier::Dense);
        let sup = run_tier(&module, "f", &[400], ExecTier::Super);
        assert_identical(&dense, &sup);
        let stats = &sup.loops[&9];
        assert!(stats.forks > 0 && stats.commits > 0, "{stats:?}");
        assert!(stats.free_insts > 0, "{stats:?}");
        assert!(
            stats.wasted_insts > 0,
            "divergence path must be exercised: {stats:?}"
        );
    }

    #[test]
    fn super_preserves_fuel_exhaustion() {
        let src = "fn main() -> int { let x = 1; while (x > 0) { x = x + 1; } return x; }";
        let module = compile(src);
        let config = MachineConfig {
            fuel: 5000,
            ..MachineConfig::default()
        };
        let err = with_tier(ExecTier::Super, || {
            SptSimulator::with_config(config.clone())
                .run(&module, "main", &[])
                .unwrap_err()
        });
        assert_eq!(err, SimError::OutOfFuel);
    }

    #[test]
    fn super_preserves_oob_fault() {
        let src = "
            global a[8]: int;
            fn main(i: int) -> int { a[i] = 7; return a[i]; }
        ";
        let module = compile(src);
        let dense = with_tier(ExecTier::Dense, || {
            SptSimulator::new()
                .run(&module, "main", &[1000])
                .unwrap_err()
        });
        let sup = with_tier(ExecTier::Super, || {
            SptSimulator::new()
                .run(&module, "main", &[1000])
                .unwrap_err()
        });
        assert_eq!(dense, sup);
    }
}

//! The stepping executor shared by the main core, the speculative core and
//! validation replay.
//!
//! A [`Thread`] holds a call-frame stack and executes one instruction per
//! [`Thread::step`], reporting what it executed (for trace recording and
//! validation comparison) and any control event (block transfer, fork,
//! kill, return). Memory is accessed through a [`MemView`] — direct for the
//! main core, a write-buffer overlay for the speculative core.

use crate::cache::Cache;
use crate::predictor::BranchPredictor;
use spt_ir::{BlockId, FuncId, InstId, InstKind, Module, Operand, Ty};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Execution faults.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// Memory access out of bounds.
    OutOfBounds(i64),
    /// Call depth exceeded.
    StackOverflow,
    /// The speculative store buffer overflowed (speculation must stop; not a
    /// program error).
    SpecBufferFull,
    /// Structurally invalid IR reached at runtime.
    Malformed(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfBounds(a) => write!(f, "memory access out of bounds: {a}"),
            ExecError::StackOverflow => write!(f, "call depth exceeded"),
            ExecError::SpecBufferFull => write!(f, "speculative store buffer full"),
            ExecError::Malformed(m) => write!(f, "malformed IR: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Memory as seen by a core.
pub enum MemView<'a> {
    /// Committed memory (main core, replay).
    Direct(&'a mut Vec<u64>),
    /// Fork-time snapshot + speculative store buffer (speculative core).
    Overlay {
        /// Committed memory at fork time.
        base: &'a [u64],
        /// Buffered speculative writes.
        buf: &'a mut HashMap<u64, u64>,
        /// Buffer capacity.
        cap: usize,
    },
}

impl MemView<'_> {
    fn read(&self, cell: i64) -> Result<u64, ExecError> {
        let idx = usize::try_from(cell).map_err(|_| ExecError::OutOfBounds(cell))?;
        match self {
            MemView::Direct(m) => m.get(idx).copied().ok_or(ExecError::OutOfBounds(cell)),
            MemView::Overlay { base, buf, .. } => match buf.get(&(idx as u64)) {
                Some(&v) => Ok(v),
                None => base.get(idx).copied().ok_or(ExecError::OutOfBounds(cell)),
            },
        }
    }

    fn write(&mut self, cell: i64, bits: u64) -> Result<(), ExecError> {
        let idx = usize::try_from(cell).map_err(|_| ExecError::OutOfBounds(cell))?;
        match self {
            MemView::Direct(m) => {
                let slot = m.get_mut(idx).ok_or(ExecError::OutOfBounds(cell))?;
                *slot = bits;
                Ok(())
            }
            MemView::Overlay { base, buf, cap } => {
                if idx >= base.len() {
                    return Err(ExecError::OutOfBounds(cell));
                }
                if buf.len() >= *cap && !buf.contains_key(&(idx as u64)) {
                    return Err(ExecError::SpecBufferFull);
                }
                buf.insert(idx as u64, bits);
                Ok(())
            }
        }
    }
}

/// Cycle accounting shared by a core.
pub struct Timing<'a> {
    /// The core's cycle counter.
    pub cycle: &'a mut u64,
    /// Shared cache.
    pub cache: &'a mut Cache,
    /// Shared branch predictor.
    pub predictor: &'a mut BranchPredictor,
    /// Misprediction penalty.
    pub mispredict_penalty: u64,
}

/// What one step executed.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecRecord {
    /// Function of the executed instruction.
    pub func: FuncId,
    /// The instruction.
    pub inst: InstId,
    /// Defined value bits, if any.
    pub result: Option<u64>,
    /// `(cell, bits)` when the instruction stored.
    pub store: Option<(i64, u64)>,
    /// Latency charged (0 under validation).
    pub latency: u64,
    /// Core cycle at completion (meaningful when timed).
    pub cycle_end: u64,
}

/// Control event accompanying a step.
#[derive(Clone, Debug, PartialEq)]
pub enum StepEvent {
    /// Plain instruction.
    Continue,
    /// Control moved between blocks of the current frame.
    Transfer {
        /// Destination block.
        to: BlockId,
        /// Function it happened in.
        func: FuncId,
    },
    /// An `SPT_FORK` executed.
    Fork {
        /// Loop tag.
        tag: u32,
        /// Spawn target (loop header).
        target: BlockId,
        /// Function containing the fork.
        func: FuncId,
    },
    /// An `SPT_KILL` executed.
    Kill {
        /// Loop tag.
        tag: u32,
    },
    /// The outermost frame returned; the thread is finished.
    Finished {
        /// Return value bits.
        value: Option<u64>,
    },
}

#[derive(Clone, Debug)]
struct Frame {
    func: FuncId,
    values: Vec<u64>,
    args: Vec<u64>,
    block: BlockId,
    pos: usize,
    ret_slot: Option<InstId>,
    pending_phis: VecDeque<(InstId, u64)>,
}

/// A core's architectural state: a stack of call frames.
pub struct Thread {
    frames: Vec<Frame>,
    /// Maximum call depth.
    pub max_depth: usize,
}

impl Thread {
    /// Starts a thread at `func`'s entry with the given arguments.
    pub fn start(module: &Module, func: FuncId, args: Vec<u64>) -> Self {
        let f = module.func(func);
        Thread {
            frames: vec![Frame {
                func,
                values: vec![0; f.insts.len()],
                args,
                block: f.entry,
                pos: 0,
                ret_slot: None,
                pending_phis: VecDeque::new(),
            }],
            max_depth: 256,
        }
    }

    /// Starts a *speculative* thread at block `header` of `func`, with a
    /// copy of the forking frame's context. Header phis take their
    /// latch-edge operand values from the copied context — the hardware
    /// semantics of "the context of the main thread is copied to the
    /// speculative thread" (§1).
    pub fn start_spec(
        module: &Module,
        func: FuncId,
        context: &[u64],
        args: Vec<u64>,
        header: BlockId,
        latch: BlockId,
    ) -> Self {
        let f = module.func(func);
        let mut frame = Frame {
            func,
            values: context.to_vec(),
            args,
            block: header,
            pos: 0,
            ret_slot: None,
            pending_phis: VecDeque::new(),
        };
        // Atomically evaluate header phis from the latch edge.
        let mut nphis = 0;
        let mut pending = Vec::new();
        for &i in &f.block(header).insts {
            if let InstKind::Phi { args } = &f.inst(i).kind {
                nphis += 1;
                let v = args
                    .iter()
                    .find(|(p, _)| *p == latch)
                    .map(|(_, op)| read_operand(*op, &frame.values))
                    .unwrap_or(0);
                pending.push((i, v));
            } else {
                break;
            }
        }
        frame.pos = nphis;
        frame.pending_phis = pending.into();
        Thread {
            frames: vec![frame],
            max_depth: 256,
        }
    }

    /// Current function of the innermost frame.
    pub fn current_func(&self) -> FuncId {
        self.frames.last().expect("live thread").func
    }

    /// Current block of the innermost frame.
    pub fn current_block(&self) -> BlockId {
        self.frames.last().expect("live thread").block
    }

    /// Call depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// A copy of the innermost frame's SSA values (the "context" copied on
    /// fork).
    pub fn context(&self) -> (Vec<u64>, Vec<u64>) {
        let f = self.frames.last().expect("live thread");
        (f.values.clone(), f.args.clone())
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on faults; speculative callers treat faults as
    /// "stop speculating here".
    pub fn step(
        &mut self,
        module: &Module,
        region_bases: &[usize],
        mem: &mut MemView<'_>,
        mut timing: Option<&mut Timing<'_>>,
    ) -> Result<(ExecRecord, StepEvent), ExecError> {
        let depth = self.frames.len();
        let frame = self
            .frames
            .last_mut()
            .ok_or_else(|| ExecError::Malformed("step on finished thread".into()))?;
        let func_id = frame.func;
        let f = module.func(func_id);

        // Deferred phi writes from the last transfer.
        if let Some((phi, bits)) = frame.pending_phis.pop_front() {
            frame.values[phi.index()] = bits;
            let cycle_end = timing.as_ref().map(|t| *t.cycle).unwrap_or(0);
            return Ok((
                ExecRecord {
                    func: func_id,
                    inst: phi,
                    result: Some(bits),
                    store: None,
                    latency: 0,
                    cycle_end,
                },
                StepEvent::Continue,
            ));
        }

        let insts = &f.block(frame.block).insts;
        let inst_id = *insts.get(frame.pos).ok_or_else(|| {
            ExecError::Malformed(format!("fell off block {} in {}", frame.block, f.name))
        })?;
        frame.pos += 1;
        let inst = f.inst(inst_id);
        let mut latency = inst.latency();
        let mut result: Option<u64> = None;
        let mut store: Option<(i64, u64)> = None;
        let mut event = StepEvent::Continue;

        macro_rules! op {
            ($o:expr) => {
                read_operand($o, &frame.values)
            };
        }

        match &inst.kind {
            InstKind::Param { index } => {
                let v = frame.args.get(*index).copied().unwrap_or(0);
                frame.values[inst_id.index()] = v;
                result = Some(v);
            }
            InstKind::Binary { op, lhs, rhs } => {
                let (a, b) = (op!(*lhs), op!(*rhs));
                let v = match inst.ty.unwrap_or(Ty::I64) {
                    Ty::I64 => op.eval_i64(a as i64, b as i64) as u64,
                    Ty::F64 => op.eval_f64(f64::from_bits(a), f64::from_bits(b)).to_bits(),
                };
                frame.values[inst_id.index()] = v;
                result = Some(v);
            }
            InstKind::Unary { op, val } => {
                let a = op!(*val);
                let v = match (inst.ty.unwrap_or(Ty::I64), op) {
                    (Ty::F64, spt_ir::UnOp::IntToFloat) => ((a as i64) as f64).to_bits(),
                    (Ty::I64, spt_ir::UnOp::FloatToInt) => (f64::from_bits(a) as i64) as u64,
                    (Ty::I64, _) => op.eval_i64(a as i64) as u64,
                    (Ty::F64, _) => op.eval_f64(f64::from_bits(a)).to_bits(),
                };
                frame.values[inst_id.index()] = v;
                result = Some(v);
            }
            InstKind::Cmp {
                op,
                operand_ty,
                lhs,
                rhs,
            } => {
                let (a, b) = (op!(*lhs), op!(*rhs));
                let t = match operand_ty {
                    Ty::I64 => op.eval_i64(a as i64, b as i64),
                    Ty::F64 => op.eval_f64(f64::from_bits(a), f64::from_bits(b)),
                };
                let v = t as u64;
                frame.values[inst_id.index()] = v;
                result = Some(v);
            }
            InstKind::Copy { val } => {
                let v = op!(*val);
                frame.values[inst_id.index()] = v;
                result = Some(v);
            }
            InstKind::Phi { .. } => {
                return Err(ExecError::Malformed(format!(
                    "unscheduled phi {inst_id} executed directly"
                )));
            }
            InstKind::RegionBase { region } => {
                let base = if region.is_unknown() {
                    0
                } else {
                    region_bases[region.index()] as u64
                };
                frame.values[inst_id.index()] = base;
                result = Some(base);
            }
            InstKind::Load { addr, .. } => {
                let cell = op!(*addr) as i64;
                let v = mem.read(cell)?;
                frame.values[inst_id.index()] = v;
                result = Some(v);
                if let Some(t) = timing.as_mut() {
                    latency = t.cache.access(cell as u64).max(1);
                }
            }
            InstKind::Store { addr, val, .. } => {
                let cell = op!(*addr) as i64;
                let bits = op!(*val);
                mem.write(cell, bits)?;
                store = Some((cell, bits));
                if let Some(t) = timing.as_mut() {
                    latency = t.cache.access(cell as u64).clamp(1, 4);
                }
            }
            InstKind::Call { callee, args } => {
                if depth >= self.max_depth {
                    return Err(ExecError::StackOverflow);
                }
                let callee_func = module.func(*callee);
                let call_args: Vec<u64> = args.iter().map(|a| op!(*a)).collect();
                let new_frame = Frame {
                    func: *callee,
                    values: vec![0; callee_func.insts.len()],
                    args: call_args,
                    block: callee_func.entry,
                    pos: 0,
                    ret_slot: Some(inst_id),
                    pending_phis: VecDeque::new(),
                };
                self.frames.push(new_frame);
                event = StepEvent::Transfer {
                    to: callee_func.entry,
                    func: *callee,
                };
            }
            InstKind::VarLoad { .. } | InstKind::VarStore { .. } => {
                return Err(ExecError::Malformed("non-SSA IR in simulator".into()));
            }
            InstKind::Jump { target } => {
                let target = *target;
                transfer(frame, f, target);
                event = StepEvent::Transfer {
                    to: target,
                    func: func_id,
                };
            }
            InstKind::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let taken = op!(*cond) != 0;
                let target = if taken { *then_bb } else { *else_bb };
                if let Some(t) = timing.as_mut() {
                    if t.predictor.mispredicted(func_id, inst_id, taken) {
                        latency += t.mispredict_penalty;
                    }
                }
                transfer(frame, f, target);
                event = StepEvent::Transfer {
                    to: target,
                    func: func_id,
                };
            }
            InstKind::Ret { val } => {
                let bits = val.map(|v| op!(v));
                let ret_slot = frame.ret_slot;
                self.frames.pop();
                match self.frames.last_mut() {
                    Some(parent) => {
                        if let (Some(slot), Some(bits)) = (ret_slot, bits) {
                            parent.values[slot.index()] = bits;
                        }
                        event = StepEvent::Transfer {
                            to: parent.block,
                            func: parent.func,
                        };
                    }
                    None => {
                        event = StepEvent::Finished { value: bits };
                    }
                }
            }
            InstKind::SptFork {
                loop_tag,
                spawn_target,
            } => {
                event = StepEvent::Fork {
                    tag: *loop_tag,
                    target: *spawn_target,
                    func: func_id,
                };
            }
            InstKind::SptKill { loop_tag } => {
                event = StepEvent::Kill { tag: *loop_tag };
            }
        }

        let cycle_end = match timing.as_mut() {
            Some(t) => {
                *t.cycle += latency;
                *t.cycle
            }
            None => 0,
        };
        Ok((
            ExecRecord {
                func: func_id,
                inst: inst_id,
                result,
                store,
                latency,
                cycle_end,
            },
            event,
        ))
    }
}

/// Performs an intra-function block transfer: schedules the target's phi
/// writes (evaluated atomically against the pre-transfer values) and points
/// the frame at the first non-phi instruction.
fn transfer(frame: &mut Frame, f: &spt_ir::Function, target: BlockId) {
    let from = frame.block;
    let mut pending = Vec::new();
    let mut nphis = 0;
    for &i in &f.block(target).insts {
        if let InstKind::Phi { args } = &f.inst(i).kind {
            nphis += 1;
            let v = args
                .iter()
                .find(|(p, _)| *p == from)
                .map(|(_, op)| read_operand(*op, &frame.values))
                .unwrap_or(0);
            pending.push((i, v));
        } else {
            break;
        }
    }
    frame.block = target;
    frame.pos = nphis;
    frame.pending_phis = pending.into();
}

#[inline]
fn read_operand(op: Operand, values: &[u64]) -> u64 {
    match op {
        Operand::Inst(id) => values[id.index()],
        Operand::ConstI64(v) => v as u64,
        Operand::ConstF64Bits(b) => b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{Cache, CacheConfig};
    use crate::predictor::BranchPredictor;

    fn run_to_end(module: &Module, entry: &str, args: Vec<u64>) -> (Option<u64>, u64, Vec<u64>) {
        let func = module.func_by_name(entry).unwrap();
        let (bases, size) = module.memory_layout();
        let mut memory = vec![0u64; size];
        for (gi, g) in module.globals.iter().enumerate() {
            if let Some(init) = &g.init {
                for (k, &b) in init.iter().take(g.size).enumerate() {
                    memory[bases[gi] + k] = b;
                }
            }
        }
        let mut thread = Thread::start(module, func, args);
        let mut cycle = 0u64;
        let mut cache = Cache::new(CacheConfig::default());
        let mut predictor = BranchPredictor::new();
        loop {
            let mut view = MemView::Direct(&mut memory);
            let mut timing = Timing {
                cycle: &mut cycle,
                cache: &mut cache,
                predictor: &mut predictor,
                mispredict_penalty: 5,
            };
            let (_rec, event) = thread
                .step(module, &bases, &mut view, Some(&mut timing))
                .expect("no faults");
            if let StepEvent::Finished { value } = event {
                return (value, cycle, memory);
            }
        }
    }

    #[test]
    fn computes_like_the_interpreter() {
        let src = "
            global out[16]: int;
            fn helper(x: int) -> int { return x * 3 + 1; }
            fn main(n: int) -> int {
                let s = 0;
                for (let i = 0; i < n; i = i + 1) {
                    if (i % 2 == 0) { s = s + helper(i); } else { s = s - i; }
                    out[i % 16] = s;
                }
                return s;
            }
        ";
        let module = spt_frontend::compile(src).unwrap();
        let (val, cycles, _mem) = run_to_end(&module, "main", vec![20]);
        // Cross-check against the reference interpreter.
        let interp = spt_profile::Interp::new(&module);
        let expected = interp
            .run(
                "main",
                &[spt_profile::Val::from_i64(20)],
                &mut spt_profile::NoProfiler,
            )
            .unwrap()
            .ret
            .unwrap()
            .as_i64();
        assert_eq!(val.unwrap() as i64, expected);
        assert!(cycles > 0);
    }

    #[test]
    fn timing_reflects_cache_locality() {
        let src = "
            global a[32768]: int;
            fn scan(n: int, stride: int) -> int {
                let s = 0;
                for (let i = 0; i < n; i = i + 1) {
                    s = s + a[(i * stride) % 32768];
                }
                return s;
            }
        ";
        let module = spt_frontend::compile(src).unwrap();
        let (_, seq_cycles, _) = run_to_end(&module, "scan", vec![4000, 1]);
        let (_, rand_cycles, _) = run_to_end(&module, "scan", vec![4000, 97]);
        assert!(
            rand_cycles > seq_cycles,
            "strided access must cost more: {rand_cycles} vs {seq_cycles}"
        );
    }

    #[test]
    fn spec_overlay_buffers_writes() {
        let mut base = vec![1u64, 2, 3];
        let mut buf = HashMap::new();
        {
            let mut view = MemView::Overlay {
                base: &base,
                buf: &mut buf,
                cap: 8,
            };
            assert_eq!(view.read(1).unwrap(), 2);
            view.write(1, 42).unwrap();
            assert_eq!(view.read(1).unwrap(), 42);
        }
        // Base untouched.
        assert_eq!(base[1], 2);
        assert_eq!(buf[&1], 42);
        base[0] = 9; // keep mutability used
    }

    #[test]
    fn spec_buffer_capacity_enforced() {
        let base = vec![0u64; 100];
        let mut buf = HashMap::new();
        let mut view = MemView::Overlay {
            base: &base,
            buf: &mut buf,
            cap: 2,
        };
        view.write(0, 1).unwrap();
        view.write(1, 1).unwrap();
        view.write(0, 2).unwrap(); // overwrite ok
        assert_eq!(view.write(2, 1).unwrap_err(), ExecError::SpecBufferFull);
    }

    #[test]
    fn oob_faults() {
        let mut m = vec![0u64; 4];
        let view = MemView::Direct(&mut m);
        assert!(matches!(view.read(10), Err(ExecError::OutOfBounds(10))));
        assert!(matches!(view.read(-1), Err(ExecError::OutOfBounds(-1))));
    }
}

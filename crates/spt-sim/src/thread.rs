//! The stepping executor shared by the main core, the speculative core and
//! validation replay.
//!
//! A [`Thread`] holds a call-frame stack and executes one instruction per
//! [`Thread::step`], reporting what it executed (for trace recording and
//! validation comparison) and any control event (block transfer, fork,
//! kill, return). Memory is accessed through a [`MemView`] — direct for the
//! main core, a write-buffer overlay for the speculative core.
//!
//! The executor runs over the pre-decoded module form
//! ([`spt_ir::DecodedModule`]): one flat opcode per instruction with
//! operands already resolved to value slots or constant bits, block
//! transfers driven by pre-decoded per-edge phi-source rows, and the
//! speculative write buffer an inline open-addressed table ([`SpecBuf`])
//! instead of a `HashMap`.

use crate::cache::Cache;
use crate::predictor::BranchPredictor;
use spt_ir::{BlockId, DKind, DecodedFunc, DecodedModule, FuncId, InstId};
use std::fmt;

/// Execution faults.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// Memory access out of bounds.
    OutOfBounds(i64),
    /// Call depth exceeded.
    StackOverflow,
    /// The speculative store buffer overflowed (speculation must stop; not a
    /// program error).
    SpecBufferFull,
    /// Structurally invalid IR reached at runtime.
    Malformed(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfBounds(a) => write!(f, "memory access out of bounds: {a}"),
            ExecError::StackOverflow => write!(f, "call depth exceeded"),
            ExecError::SpecBufferFull => write!(f, "speculative store buffer full"),
            ExecError::Malformed(m) => write!(f, "malformed IR: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Absent-key marker for [`SpecBuf`] slots. Cell indexes are bounded by the
/// module memory size, so the marker can never collide with a real key.
const EMPTY_KEY: u64 = u64::MAX;

/// The speculative store buffer: a small linear-probing hash table with a
/// *semantic* capacity (the machine's `spec_buffer_entries`) enforced
/// exactly like the `HashMap` it replaced — an insert of a *new* cell when
/// `len >= cap` faults with [`ExecError::SpecBufferFull`]; overwrites always
/// succeed.
#[derive(Clone, Debug)]
pub struct SpecBuf {
    keys: Vec<u64>,
    vals: Vec<u64>,
    len: usize,
    cap: usize,
    /// Occupied slot indices, so reset clears only the dirty slots instead
    /// of refilling the whole table (episodes typically buffer a handful of
    /// cells; the table is sized for the worst case).
    used: Vec<u32>,
}

impl SpecBuf {
    /// An empty buffer holding at most `cap` distinct cells.
    pub fn new(cap: usize) -> Self {
        let mut buf = SpecBuf {
            keys: Vec::new(),
            vals: Vec::new(),
            len: 0,
            cap,
            used: Vec::new(),
        };
        buf.reset(cap);
        buf
    }

    /// Clears the buffer and (re)sizes it for `cap` distinct cells. Reuses
    /// the existing allocation when possible, so a simulator can keep one
    /// buffer across episodes.
    pub fn reset(&mut self, cap: usize) {
        self.cap = cap;
        let want = cap.saturating_mul(2).next_power_of_two().clamp(16, 1 << 16);
        if self.keys.len() == want {
            for &i in &self.used {
                self.keys[i as usize] = EMPTY_KEY;
            }
        } else {
            self.keys = vec![EMPTY_KEY; want];
            self.vals = vec![0; want];
        }
        self.used.clear();
        self.len = 0;
    }

    /// Number of distinct buffered cells.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no writes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline(always)]
    fn slot_of(&self, key: u64) -> usize {
        let mask = self.keys.len() - 1;
        let mut idx = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask;
        loop {
            let k = self.keys[idx];
            if k == key || k == EMPTY_KEY {
                return idx;
            }
            idx = (idx + 1) & mask;
        }
    }

    /// The buffered value for `cell`, if any.
    #[inline]
    pub fn get(&self, cell: u64) -> Option<u64> {
        if self.len == 0 {
            return None; // common case: nothing buffered yet, skip the probe
        }
        let idx = self.slot_of(cell);
        if self.keys[idx] == cell {
            Some(self.vals[idx])
        } else {
            None
        }
    }

    #[inline]
    fn insert(&mut self, cell: u64, bits: u64) -> Result<(), ExecError> {
        let idx = self.slot_of(cell);
        if self.keys[idx] == cell {
            self.vals[idx] = bits;
            return Ok(());
        }
        if self.len >= self.cap {
            return Err(ExecError::SpecBufferFull);
        }
        self.keys[idx] = cell;
        self.vals[idx] = bits;
        self.used.push(idx as u32);
        self.len += 1;
        if self.len * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        Ok(())
    }

    #[cold]
    fn grow(&mut self) {
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY_KEY; self.vals.len() * 2]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0; self.keys.len()]);
        self.used.clear();
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY_KEY {
                let idx = self.slot_of(k);
                self.keys[idx] = k;
                self.vals[idx] = v;
                self.used.push(idx as u32);
            }
        }
    }
}

/// Memory as seen by a core.
pub enum MemView<'a> {
    /// Committed memory (main core, replay).
    Direct(&'a mut Vec<u64>),
    /// Fork-time snapshot + speculative store buffer (speculative core).
    Overlay {
        /// Committed memory at fork time.
        base: &'a [u64],
        /// Buffered speculative writes (capacity enforced by the buffer).
        buf: &'a mut SpecBuf,
    },
}

impl MemView<'_> {
    #[inline]
    pub(crate) fn read(&self, cell: i64) -> Result<u64, ExecError> {
        let idx = usize::try_from(cell).map_err(|_| ExecError::OutOfBounds(cell))?;
        match self {
            MemView::Direct(m) => m.get(idx).copied().ok_or(ExecError::OutOfBounds(cell)),
            MemView::Overlay { base, buf } => match buf.get(idx as u64) {
                Some(v) => Ok(v),
                None => base.get(idx).copied().ok_or(ExecError::OutOfBounds(cell)),
            },
        }
    }

    #[inline]
    pub(crate) fn write(&mut self, cell: i64, bits: u64) -> Result<(), ExecError> {
        let idx = usize::try_from(cell).map_err(|_| ExecError::OutOfBounds(cell))?;
        match self {
            MemView::Direct(m) => {
                let slot = m.get_mut(idx).ok_or(ExecError::OutOfBounds(cell))?;
                *slot = bits;
                Ok(())
            }
            MemView::Overlay { base, buf } => {
                if idx >= base.len() {
                    return Err(ExecError::OutOfBounds(cell));
                }
                buf.insert(idx as u64, bits)
            }
        }
    }
}

/// Cycle accounting shared by a core.
pub struct Timing<'a> {
    /// The core's cycle counter.
    pub cycle: &'a mut u64,
    /// Shared cache.
    pub cache: &'a mut Cache,
    /// Shared branch predictor.
    pub predictor: &'a mut BranchPredictor,
    /// Misprediction penalty.
    pub mispredict_penalty: u64,
}

/// Static timing-mode selector for [`Thread::step`]: the executor is
/// monomorphized once per mode, so the timed instantiation charges
/// cache/predictor/cycle costs without per-site `Option` checks and the
/// untimed one (validation replay) compiles the timing code out entirely.
trait TimingMode {
    /// Whether this mode charges timing at all.
    const TIMED: bool;
    fn cache_access(&mut self, cell: u64) -> u64;
    fn mispredicted(&mut self, func: FuncId, inst: InstId, taken: bool) -> bool;
    fn penalty(&self) -> u64;
    fn now(&self) -> u64;
    /// Advances the core clock by `latency` and returns the new cycle.
    fn advance(&mut self, latency: u64) -> u64;
}

struct Timed<'a, 'b>(&'b mut Timing<'a>);

impl TimingMode for Timed<'_, '_> {
    const TIMED: bool = true;
    #[inline(always)]
    fn cache_access(&mut self, cell: u64) -> u64 {
        self.0.cache.access(cell)
    }
    #[inline(always)]
    fn mispredicted(&mut self, func: FuncId, inst: InstId, taken: bool) -> bool {
        self.0.predictor.mispredicted(func, inst, taken)
    }
    #[inline(always)]
    fn penalty(&self) -> u64 {
        self.0.mispredict_penalty
    }
    #[inline(always)]
    fn now(&self) -> u64 {
        *self.0.cycle
    }
    #[inline(always)]
    fn advance(&mut self, latency: u64) -> u64 {
        *self.0.cycle += latency;
        *self.0.cycle
    }
}

struct Untimed;

impl TimingMode for Untimed {
    const TIMED: bool = false;
    #[inline(always)]
    fn cache_access(&mut self, _cell: u64) -> u64 {
        0
    }
    #[inline(always)]
    fn mispredicted(&mut self, _func: FuncId, _inst: InstId, _taken: bool) -> bool {
        false
    }
    #[inline(always)]
    fn penalty(&self) -> u64 {
        0
    }
    #[inline(always)]
    fn now(&self) -> u64 {
        0
    }
    #[inline(always)]
    fn advance(&mut self, _latency: u64) -> u64 {
        0
    }
}

/// What one step executed.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecRecord {
    /// Function of the executed instruction.
    pub func: FuncId,
    /// The instruction.
    pub inst: InstId,
    /// Defined value bits, if any.
    pub result: Option<u64>,
    /// `(cell, bits)` when the instruction stored.
    pub store: Option<(i64, u64)>,
    /// Latency charged (0 under validation).
    pub latency: u64,
    /// Core cycle at completion (meaningful when timed).
    pub cycle_end: u64,
}

/// Control event accompanying a step.
#[derive(Clone, Debug, PartialEq)]
pub enum StepEvent {
    /// Plain instruction.
    Continue,
    /// Control moved between blocks of the current frame.
    Transfer {
        /// Destination block.
        to: BlockId,
        /// Function it happened in.
        func: FuncId,
    },
    /// An `SPT_FORK` executed.
    Fork {
        /// Loop tag.
        tag: u32,
        /// Spawn target (loop header).
        target: BlockId,
        /// Function containing the fork.
        func: FuncId,
    },
    /// An `SPT_KILL` executed.
    Kill {
        /// Loop tag.
        tag: u32,
    },
    /// The outermost frame returned; the thread is finished.
    Finished {
        /// Return value bits.
        value: Option<u64>,
    },
}

#[derive(Clone, Debug)]
pub(crate) struct Frame {
    pub(crate) func: FuncId,
    pub(crate) values: Vec<u64>,
    pub(crate) args: Vec<u64>,
    pub(crate) block: BlockId,
    /// Fetch cursor: absolute position of the next instruction in the
    /// function's flat [`DecodedFunc::stream`] (leading phis are delivered
    /// through `pending`).
    pub(crate) pos: u32,
    /// End (exclusive) of the current block's body in the stream.
    pub(crate) end: u32,
    pub(crate) ret_slot: Option<InstId>,
    /// Phi writes scheduled by the last transfer, delivered one per step
    /// from `pending_head` onward.
    pub(crate) pending: Vec<(InstId, u64)>,
    pub(crate) pending_head: usize,
}

/// A core's architectural state: a stack of call frames.
pub struct Thread {
    pub(crate) frames: Vec<Frame>,
    /// Returned frames, recycled on the next call so the call/return hot
    /// path reuses value vectors instead of allocating per call.
    pub(crate) pool: Vec<Frame>,
    /// Maximum call depth.
    pub max_depth: usize,
}

impl Thread {
    /// Starts a thread at `func`'s entry with the given arguments.
    pub fn start(decoded: &DecodedModule, func: FuncId, args: Vec<u64>) -> Self {
        let df = decoded.func(func);
        let eb = &df.blocks[df.entry.index()];
        Thread {
            frames: vec![Frame {
                func,
                values: vec![0; df.num_values()],
                args,
                block: df.entry,
                pos: eb.body_start,
                end: eb.body_end,
                ret_slot: None,
                pending: Vec::new(),
                pending_head: 0,
            }],
            pool: Vec::new(),
            max_depth: 256,
        }
    }

    /// Starts a *speculative* thread at block `header` of `func`, with a
    /// copy of the forking frame's context. Header phis take their
    /// latch-edge operand values from the copied context — the hardware
    /// semantics of "the context of the main thread is copied to the
    /// speculative thread" (§1).
    pub fn start_spec(
        decoded: &DecodedModule,
        func: FuncId,
        context: &[u64],
        args: Vec<u64>,
        header: BlockId,
        latch: BlockId,
    ) -> Self {
        let df = decoded.func(func);
        let hb = &df.blocks[header.index()];
        let values = context.to_vec();
        let mut pending = Vec::with_capacity(hb.phis.len());
        match hb.preds.iter().position(|&p| p == latch) {
            Some(pi) => {
                let row = &hb.phi_srcs[pi];
                for (k, &phi) in hb.phis.iter().enumerate() {
                    pending.push((phi, row[k].map(|dv| dv.read(&values)).unwrap_or(0)));
                }
            }
            None => {
                for &phi in hb.phis.iter() {
                    pending.push((phi, 0));
                }
            }
        }
        Thread {
            frames: vec![Frame {
                func,
                values,
                args,
                block: header,
                pos: hb.body_start,
                end: hb.body_end,
                ret_slot: None,
                pending,
                pending_head: 0,
            }],
            pool: Vec::new(),
            max_depth: 256,
        }
    }

    /// Current function of the innermost frame.
    pub fn current_func(&self) -> FuncId {
        self.frames.last().expect("live thread").func
    }

    /// Current block of the innermost frame.
    pub fn current_block(&self) -> BlockId {
        self.frames.last().expect("live thread").block
    }

    /// Call depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// A copy of the innermost frame's SSA values (the "context" copied on
    /// fork).
    pub fn context(&self) -> (Vec<u64>, Vec<u64>) {
        let f = self.frames.last().expect("live thread");
        (f.values.clone(), f.args.clone())
    }

    /// Borrowed view of the innermost frame's context, for callers that
    /// copy it into a reused thread instead of allocating.
    pub fn context_ref(&self) -> (&[u64], &[u64]) {
        let f = self.frames.last().expect("live thread");
        (&f.values, &f.args)
    }

    /// Re-initializes this thread as a speculative thread (same semantics
    /// as [`Thread::start_spec`]) while reusing its allocations — the fork
    /// hot path calls this once per episode.
    pub fn restart_spec(
        &mut self,
        decoded: &DecodedModule,
        func: FuncId,
        context: &[u64],
        args: &[u64],
        header: BlockId,
        latch: BlockId,
    ) {
        let df = decoded.func(func);
        let hb = &df.blocks[header.index()];
        let mut frame = match self.frames.pop() {
            Some(f) => {
                while let Some(extra) = self.frames.pop() {
                    self.pool.push(extra);
                }
                f
            }
            None => self.pool.pop().unwrap_or_else(|| Frame {
                func,
                values: Vec::new(),
                args: Vec::new(),
                block: header,
                pos: 0,
                end: 0,
                ret_slot: None,
                pending: Vec::new(),
                pending_head: 0,
            }),
        };
        frame.func = func;
        frame.values.clear();
        frame.values.extend_from_slice(context);
        frame.args.clear();
        frame.args.extend_from_slice(args);
        frame.block = header;
        frame.pos = hb.body_start;
        frame.end = hb.body_end;
        frame.ret_slot = None;
        frame.pending.clear();
        frame.pending_head = 0;
        match hb.preds.iter().position(|&p| p == latch) {
            Some(pi) => {
                let row = &hb.phi_srcs[pi];
                for (k, &phi) in hb.phis.iter().enumerate() {
                    frame
                        .pending
                        .push((phi, row[k].map(|dv| dv.read(&frame.values)).unwrap_or(0)));
                }
            }
            None => {
                for &phi in hb.phis.iter() {
                    frame.pending.push((phi, 0));
                }
            }
        }
        self.frames.push(frame);
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on faults; speculative callers treat faults as
    /// "stop speculating here".
    #[inline]
    pub fn step(
        &mut self,
        decoded: &DecodedModule,
        mem: &mut MemView<'_>,
        timing: Option<&mut Timing<'_>>,
    ) -> Result<(ExecRecord, StepEvent), ExecError> {
        match timing {
            Some(t) => self.step_impl(decoded, mem, &mut Timed(t)),
            None => self.step_impl(decoded, mem, &mut Untimed),
        }
    }

    /// The monomorphized executor body. `inline(always)` so each call site
    /// (main loop, speculative run, validation replay) gets its own
    /// specialized copy — the record fields a caller ignores are then dead
    /// stores the optimizer removes.
    #[inline(always)]
    fn step_impl<T: TimingMode>(
        &mut self,
        decoded: &DecodedModule,
        mem: &mut MemView<'_>,
        timing: &mut T,
    ) -> Result<(ExecRecord, StepEvent), ExecError> {
        let depth = self.frames.len();
        let frame = self
            .frames
            .last_mut()
            .ok_or_else(|| ExecError::Malformed("step on finished thread".into()))?;
        let func_id = frame.func;
        let df = decoded.func(func_id);

        // Deferred phi writes from the last transfer.
        if frame.pending_head < frame.pending.len() {
            let (phi, bits) = frame.pending[frame.pending_head];
            frame.pending_head += 1;
            frame.values[phi.index()] = bits;
            let cycle_end = timing.now();
            return Ok((
                ExecRecord {
                    func: func_id,
                    inst: phi,
                    result: Some(bits),
                    store: None,
                    latency: 0,
                    cycle_end,
                },
                StepEvent::Continue,
            ));
        }

        if frame.pos >= frame.end {
            return Err(ExecError::Malformed(format!(
                "fell off block {} in {}",
                frame.block, df.name
            )));
        }
        let inst_id = df.stream[frame.pos as usize];
        frame.pos += 1;
        let di = &df.insts[inst_id.index()];
        let mut latency = di.latency;
        let mut result: Option<u64> = None;
        let mut store: Option<(i64, u64)> = None;
        let mut event = StepEvent::Continue;

        match &di.kind {
            DKind::Param { index } => {
                let v = frame.args.get(*index as usize).copied().unwrap_or(0);
                frame.values[inst_id.index()] = v;
                result = Some(v);
            }
            DKind::BinI64 { op, lhs, rhs } => {
                let (a, b) = (lhs.read(&frame.values), rhs.read(&frame.values));
                let v = op.eval_i64(a as i64, b as i64) as u64;
                frame.values[inst_id.index()] = v;
                result = Some(v);
            }
            DKind::BinF64 { op, lhs, rhs } => {
                let (a, b) = (lhs.read(&frame.values), rhs.read(&frame.values));
                let v = op.eval_f64(f64::from_bits(a), f64::from_bits(b)).to_bits();
                frame.values[inst_id.index()] = v;
                result = Some(v);
            }
            DKind::UnI64 { op, val } => {
                let a = val.read(&frame.values);
                let v = op.eval_i64(a as i64) as u64;
                frame.values[inst_id.index()] = v;
                result = Some(v);
            }
            DKind::UnF64 { op, val } => {
                let a = val.read(&frame.values);
                let v = op.eval_f64(f64::from_bits(a)).to_bits();
                frame.values[inst_id.index()] = v;
                result = Some(v);
            }
            DKind::IntToFloat { val } => {
                let a = val.read(&frame.values);
                let v = ((a as i64) as f64).to_bits();
                frame.values[inst_id.index()] = v;
                result = Some(v);
            }
            DKind::FloatToInt { val } => {
                let a = val.read(&frame.values);
                let v = (f64::from_bits(a) as i64) as u64;
                frame.values[inst_id.index()] = v;
                result = Some(v);
            }
            DKind::CmpI64 { op, lhs, rhs } => {
                let (a, b) = (lhs.read(&frame.values), rhs.read(&frame.values));
                let v = op.eval_i64(a as i64, b as i64) as u64;
                frame.values[inst_id.index()] = v;
                result = Some(v);
            }
            DKind::CmpF64 { op, lhs, rhs } => {
                let (a, b) = (lhs.read(&frame.values), rhs.read(&frame.values));
                let v = op.eval_f64(f64::from_bits(a), f64::from_bits(b)) as u64;
                frame.values[inst_id.index()] = v;
                result = Some(v);
            }
            DKind::Copy { val } => {
                let v = val.read(&frame.values);
                frame.values[inst_id.index()] = v;
                result = Some(v);
            }
            DKind::SkippedPhi => {
                return Err(ExecError::Malformed(format!(
                    "unscheduled phi {inst_id} executed directly"
                )));
            }
            DKind::Const { bits } => {
                frame.values[inst_id.index()] = *bits;
                result = Some(*bits);
            }
            DKind::Load { addr } => {
                let cell = addr.read(&frame.values) as i64;
                let v = mem.read(cell)?;
                frame.values[inst_id.index()] = v;
                result = Some(v);
                if T::TIMED {
                    latency = timing.cache_access(cell as u64).max(1);
                }
            }
            DKind::Store { addr, val } => {
                let cell = addr.read(&frame.values) as i64;
                let bits = val.read(&frame.values);
                mem.write(cell, bits)?;
                store = Some((cell, bits));
                if T::TIMED {
                    latency = timing.cache_access(cell as u64).clamp(1, 4);
                }
            }
            DKind::Call { callee, args } => {
                if depth >= self.max_depth {
                    return Err(ExecError::StackOverflow);
                }
                let callee_df = decoded.func(*callee);
                let entry = callee_df.entry;
                let entry_block = &callee_df.blocks[entry.index()];
                let mut new_frame = self.pool.pop().unwrap_or_else(|| Frame {
                    func: *callee,
                    values: Vec::new(),
                    args: Vec::new(),
                    block: entry,
                    pos: 0,
                    end: 0,
                    ret_slot: None,
                    pending: Vec::new(),
                    pending_head: 0,
                });
                new_frame.args.clear();
                new_frame
                    .args
                    .extend(args.iter().map(|a| a.read(&frame.values)));
                new_frame.values.clear();
                new_frame.values.resize(callee_df.num_values(), 0);
                new_frame.func = *callee;
                new_frame.block = entry;
                new_frame.pos = entry_block.body_start;
                new_frame.end = entry_block.body_end;
                new_frame.ret_slot = Some(inst_id);
                new_frame.pending.clear();
                new_frame.pending_head = 0;
                self.frames.push(new_frame);
                event = StepEvent::Transfer {
                    to: entry,
                    func: *callee,
                };
            }
            DKind::Unsupported => {
                return Err(ExecError::Malformed("non-SSA IR in simulator".into()));
            }
            DKind::Jump { target } => {
                let target = *target;
                transfer(frame, df, target);
                event = StepEvent::Transfer {
                    to: target,
                    func: func_id,
                };
            }
            DKind::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let taken = cond.read(&frame.values) != 0;
                let target = if taken { *then_bb } else { *else_bb };
                if T::TIMED && timing.mispredicted(func_id, inst_id, taken) {
                    latency += timing.penalty();
                }
                transfer(frame, df, target);
                event = StepEvent::Transfer {
                    to: target,
                    func: func_id,
                };
            }
            DKind::Ret { val } => {
                let bits = val.map(|v| v.read(&frame.values));
                let ret_slot = frame.ret_slot;
                if let Some(done) = self.frames.pop() {
                    self.pool.push(done);
                }
                match self.frames.last_mut() {
                    Some(parent) => {
                        if let (Some(slot), Some(bits)) = (ret_slot, bits) {
                            parent.values[slot.index()] = bits;
                        }
                        event = StepEvent::Transfer {
                            to: parent.block,
                            func: parent.func,
                        };
                    }
                    None => {
                        event = StepEvent::Finished { value: bits };
                    }
                }
            }
            DKind::SptFork { tag, target } => {
                event = StepEvent::Fork {
                    tag: *tag,
                    target: *target,
                    func: func_id,
                };
            }
            DKind::SptKill { tag } => {
                event = StepEvent::Kill { tag: *tag };
            }
        }

        let cycle_end = timing.advance(latency);
        Ok((
            ExecRecord {
                func: func_id,
                inst: inst_id,
                result,
                store,
                latency,
                cycle_end,
            },
            event,
        ))
    }
}

/// Performs an intra-function block transfer: schedules the target's phi
/// writes (evaluated atomically against the pre-transfer values via the
/// pre-decoded phi-source row for the incoming edge) and points the frame at
/// the target's body.
pub(crate) fn transfer(frame: &mut Frame, df: &DecodedFunc, target: BlockId) {
    let from = frame.block;
    let tb = &df.blocks[target.index()];
    frame.pending.clear();
    frame.pending_head = 0;
    if !tb.phis.is_empty() {
        match tb.preds.iter().position(|&p| p == from) {
            Some(pi) => {
                let row = &tb.phi_srcs[pi];
                for (k, &phi) in tb.phis.iter().enumerate() {
                    let v = row[k].map(|dv| dv.read(&frame.values)).unwrap_or(0);
                    frame.pending.push((phi, v));
                }
            }
            None => {
                for &phi in tb.phis.iter() {
                    frame.pending.push((phi, 0));
                }
            }
        }
    }
    frame.block = target;
    frame.pos = tb.body_start;
    frame.end = tb.body_end;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{Cache, CacheConfig};
    use crate::predictor::BranchPredictor;
    use spt_ir::Module;

    fn run_to_end(module: &Module, entry: &str, args: Vec<u64>) -> (Option<u64>, u64, Vec<u64>) {
        let func = module.func_by_name(entry).unwrap();
        let decoded = DecodedModule::new(module);
        let (bases, size) = module.memory_layout();
        let mut memory = vec![0u64; size];
        for (gi, g) in module.globals.iter().enumerate() {
            if let Some(init) = &g.init {
                for (k, &b) in init.iter().take(g.size).enumerate() {
                    memory[bases[gi] + k] = b;
                }
            }
        }
        let mut thread = Thread::start(&decoded, func, args);
        let mut cycle = 0u64;
        let mut cache = Cache::new(CacheConfig::default());
        let mut predictor = BranchPredictor::new();
        loop {
            let mut view = MemView::Direct(&mut memory);
            let mut timing = Timing {
                cycle: &mut cycle,
                cache: &mut cache,
                predictor: &mut predictor,
                mispredict_penalty: 5,
            };
            let (_rec, event) = thread
                .step(&decoded, &mut view, Some(&mut timing))
                .expect("no faults");
            if let StepEvent::Finished { value } = event {
                return (value, cycle, memory);
            }
        }
    }

    #[test]
    fn computes_like_the_interpreter() {
        let src = "
            global out[16]: int;
            fn helper(x: int) -> int { return x * 3 + 1; }
            fn main(n: int) -> int {
                let s = 0;
                for (let i = 0; i < n; i = i + 1) {
                    if (i % 2 == 0) { s = s + helper(i); } else { s = s - i; }
                    out[i % 16] = s;
                }
                return s;
            }
        ";
        let module = spt_frontend::compile(src).unwrap();
        let (val, cycles, _mem) = run_to_end(&module, "main", vec![20]);
        // Cross-check against the reference interpreter.
        let interp = spt_profile::Interp::new(&module);
        let expected = interp
            .run(
                "main",
                &[spt_profile::Val::from_i64(20)],
                &mut spt_profile::NoProfiler,
            )
            .unwrap()
            .ret
            .unwrap()
            .as_i64();
        assert_eq!(val.unwrap() as i64, expected);
        assert!(cycles > 0);
    }

    #[test]
    fn timing_reflects_cache_locality() {
        let src = "
            global a[32768]: int;
            fn scan(n: int, stride: int) -> int {
                let s = 0;
                for (let i = 0; i < n; i = i + 1) {
                    s = s + a[(i * stride) % 32768];
                }
                return s;
            }
        ";
        let module = spt_frontend::compile(src).unwrap();
        let (_, seq_cycles, _) = run_to_end(&module, "scan", vec![4000, 1]);
        let (_, rand_cycles, _) = run_to_end(&module, "scan", vec![4000, 97]);
        assert!(
            rand_cycles > seq_cycles,
            "strided access must cost more: {rand_cycles} vs {seq_cycles}"
        );
    }

    #[test]
    fn spec_overlay_buffers_writes() {
        let mut base = vec![1u64, 2, 3];
        let mut buf = SpecBuf::new(8);
        {
            let mut view = MemView::Overlay {
                base: &base,
                buf: &mut buf,
            };
            assert_eq!(view.read(1).unwrap(), 2);
            view.write(1, 42).unwrap();
            assert_eq!(view.read(1).unwrap(), 42);
        }
        // Base untouched.
        assert_eq!(base[1], 2);
        assert_eq!(buf.get(1), Some(42));
        base[0] = 9; // keep mutability used
    }

    #[test]
    fn spec_buffer_capacity_enforced() {
        let base = vec![0u64; 100];
        let mut buf = SpecBuf::new(2);
        let mut view = MemView::Overlay {
            base: &base,
            buf: &mut buf,
        };
        view.write(0, 1).unwrap();
        view.write(1, 1).unwrap();
        view.write(0, 2).unwrap(); // overwrite ok
        assert_eq!(view.write(2, 1).unwrap_err(), ExecError::SpecBufferFull);
    }

    #[test]
    fn spec_buffer_survives_reset_and_growth() {
        let mut buf = SpecBuf::new(4096);
        for k in 0..4096u64 {
            buf.insert(k * 3, k).unwrap();
        }
        assert_eq!(buf.len(), 4096);
        for k in 0..4096u64 {
            assert_eq!(buf.get(k * 3), Some(k));
        }
        assert_eq!(
            buf.insert(99_999, 1).unwrap_err(),
            ExecError::SpecBufferFull
        );
        buf.reset(2);
        assert!(buf.is_empty());
        assert_eq!(buf.get(0), None);
        buf.insert(7, 7).unwrap();
        assert_eq!(buf.get(7), Some(7));
    }

    #[test]
    fn oob_faults() {
        let mut m = vec![0u64; 4];
        let view = MemView::Direct(&mut m);
        assert!(matches!(view.read(10), Err(ExecError::OutOfBounds(10))));
        assert!(matches!(view.read(-1), Err(ExecError::OutOfBounds(-1))));
    }
}

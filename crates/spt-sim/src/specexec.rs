//! The simulator's superblock execution tier for the *episode* machinery:
//! speculative spawn and validation replay over the fused
//! [`SuperblockModule`] form.
//!
//! [`Run::spawn`](crate::sim) and [`Run::validate`](crate::sim) are
//! per-instruction loops over [`Thread::step`]: spawn runs the speculative
//! core (timed, overlay memory) pushing one [`ExecRecord`] per instruction,
//! validation replays the trace on the main core (untimed, direct memory)
//! comparing one record per instruction. Under the superblock tier both
//! loops spend most of their time in exactly the loop bodies the lowering
//! already fused, so [`Run::spawn_super`] and [`Run::validate_super`] walk
//! the fused ops instead: one dispatch per superinstruction, with records,
//! comparisons, buffer/cap checks and cache/predictor accesses emitted *per
//! constituent* in dense order.
//!
//! **Exactness contract** (same as [`superexec`](crate::superexec)): every
//! constituent produces the record fields, memory/cache/predictor accesses,
//! cycle charges and stat attributions of the dense stepper, in the same
//! order — episode traces and replay statistics are part of the pinned
//! bit-identical [`SimResult`](crate::SimResult) across tiers. The walks
//! only enter a fused block at its start (spawn entries and validation
//! boundaries are always block entries); anything irregular — dense-lowered
//! blocks, calls, mid-block positions — returns to the caller's dense
//! [`Thread::step`] loop, which re-attempts the fused walk at the next
//! step. Elided zero-latency constant defs (recorded per block in
//! [`spt_ir::superblock::SBlock::consts`], in body order) are replayed from
//! the stream-position gaps so their records and comparisons appear exactly
//! where the dense stepper would produce them.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::sim::Run;
use crate::thread::{transfer, ExecError, ExecRecord, MemView, Thread};
use spt_ir::superblock::{SInst, F2_IMM1, F2_IMM2, F2_OP1_REV, F2_R_RIGHT, F_SWAP};
use spt_ir::{BlockId, FuncId, InstId, SOpc, SuperblockModule};

/// Why a fused speculative walk returned.
pub(crate) enum SpecStop {
    /// Speculation must stop here (iteration boundary reached, matching
    /// kill, thread finished, fault, or the trace hit `max_spec_ops`).
    Done,
    /// The current position cannot run fused (dense block or mid-block
    /// resume); the caller's dense stepper takes over.
    Dense,
}

/// Mutable state of one validation replay, shared between the dense
/// per-step loop and the fused walk.
pub(crate) struct ReplayState {
    /// Next unconsumed trace record.
    pub(crate) k: usize,
    /// Stats slot of the episode's loop tag.
    pub(crate) ti: usize,
    /// Main-core cycle at validation start: only records that finished by
    /// then are eligible to commit.
    pub(crate) arrival: u64,
    /// The episode's loop tag.
    pub(crate) tag: u32,
    /// An `SPT_FORK` for the same tag was replayed (next episode spawns at
    /// commit).
    pub(crate) pending_fork: bool,
    /// An `SPT_KILL` for the same tag was replayed.
    pub(crate) killed: bool,
    /// The program finished during replay.
    pub(crate) finished: Option<Option<u64>>,
}

/// Evaluates a pure single-def superinstruction (no memory, no control, no
/// fused pair) exactly as the dense stepper would.
#[inline(always)]
fn pure_def(s: &SInst, vals: &[u64], args: &[u64]) -> u64 {
    match s.opc {
        SOpc::Param => args.get(s.imm as usize).copied().unwrap_or(0),
        SOpc::ConstV | SOpc::FoldedDef => s.imm,
        SOpc::AddRR => (vals[s.a as usize] as i64).wrapping_add(vals[s.b as usize] as i64) as u64,
        SOpc::AddImm => (vals[s.a as usize] as i64).wrapping_add(s.imm as i64) as u64,
        SOpc::SubRR => (vals[s.a as usize] as i64).wrapping_sub(vals[s.b as usize] as i64) as u64,
        SOpc::SubImm => (vals[s.a as usize] as i64).wrapping_sub(s.imm as i64) as u64,
        SOpc::RsbImm => (s.imm as i64).wrapping_sub(vals[s.a as usize] as i64) as u64,
        SOpc::MulRR => (vals[s.a as usize] as i64).wrapping_mul(vals[s.b as usize] as i64) as u64,
        SOpc::MulImm => (vals[s.a as usize] as i64).wrapping_mul(s.imm as i64) as u64,
        SOpc::BinRR => {
            s.bin
                .eval_i64(vals[s.a as usize] as i64, vals[s.b as usize] as i64) as u64
        }
        SOpc::BinImm => s.bin.eval_i64(vals[s.a as usize] as i64, s.imm as i64) as u64,
        SOpc::BinImmL => s.bin.eval_i64(s.imm as i64, vals[s.a as usize] as i64) as u64,
        SOpc::BinF64RR => s
            .bin
            .eval_f64(
                f64::from_bits(vals[s.a as usize]),
                f64::from_bits(vals[s.b as usize]),
            )
            .to_bits(),
        SOpc::BinF64Imm => s
            .bin
            .eval_f64(f64::from_bits(vals[s.a as usize]), f64::from_bits(s.imm))
            .to_bits(),
        SOpc::BinF64ImmL => s
            .bin
            .eval_f64(f64::from_bits(s.imm), f64::from_bits(vals[s.a as usize]))
            .to_bits(),
        SOpc::UnI64 => s.un.eval_i64(vals[s.a as usize] as i64) as u64,
        SOpc::UnF64 => s.un.eval_f64(f64::from_bits(vals[s.a as usize])).to_bits(),
        SOpc::IntToFloat => ((vals[s.a as usize] as i64) as f64).to_bits(),
        SOpc::FloatToInt => (f64::from_bits(vals[s.a as usize]) as i64) as u64,
        SOpc::Copy => vals[s.a as usize],
        SOpc::CmpRR => {
            s.cmp
                .eval_i64(vals[s.a as usize] as i64, vals[s.b as usize] as i64) as u64
        }
        SOpc::CmpImm => s.cmp.eval_i64(vals[s.a as usize] as i64, s.imm as i64) as u64,
        SOpc::CmpF64RR => s.cmp.eval_f64(
            f64::from_bits(vals[s.a as usize]),
            f64::from_bits(vals[s.b as usize]),
        ) as u64,
        SOpc::CmpF64Imm => s
            .cmp
            .eval_f64(f64::from_bits(vals[s.a as usize]), f64::from_bits(s.imm))
            as u64,
        // The callers only route the pure single-def opcodes here.
        _ => 0,
    }
}

/// First-constituent result of the `Fuse2` family (flags are preserved on
/// the specialized opcodes, so the generic decode covers all of them).
#[inline(always)]
fn fuse2_r(s: &SInst, vals: &[u64]) -> i64 {
    let x = vals[s.a as usize] as i64;
    let y = if s.flags & F2_IMM1 != 0 {
        s.imm as u32 as i32 as i64
    } else {
        vals[s.b as usize] as i64
    };
    if s.flags & F2_OP1_REV != 0 {
        s.bin.eval_i64(y, x)
    } else {
        s.bin.eval_i64(x, y)
    }
}

/// Second-constituent result of the `Fuse2` family given `r`.
#[inline(always)]
fn fuse2_v(s: &SInst, vals: &[u64], r: i64) -> i64 {
    let z = if s.flags & F2_IMM2 != 0 {
        (s.imm >> 32) as u32 as i32 as i64
    } else {
        vals[s.aux as usize] as i64
    };
    if s.flags & F2_R_RIGHT != 0 {
        s.bin2.eval_i64(z, r)
    } else {
        s.bin2.eval_i64(r, z)
    }
}

impl Run<'_> {
    /// One replay comparison against `trace[rp.k]`: exactly the accounting
    /// of one dense validation step (free commit on a matching record,
    /// re-execution charge on a value mismatch, trace discard on a control
    /// divergence). The caller has already checked the arrival guard.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn replay_commit(
        &mut self,
        trace: &[ExecRecord],
        rp: &mut ReplayState,
        func: FuncId,
        inst: InstId,
        result: Option<u64>,
        store: Option<(i64, u64)>,
        latency: u64,
    ) {
        let expected = &trace[rp.k];
        self.insts += 1;
        let same_site = func == expected.func && inst == expected.inst;
        if same_site {
            let equal = result == expected.result && store == expected.store;
            let s = &mut self.loops[rp.ti].1;
            if equal {
                s.free_insts += 1;
            } else {
                s.reexec_insts += 1;
                s.reexec_cycles += expected.latency.max(1);
                self.cycle += expected.latency.max(1);
            }
            self.attribute_committed(expected.latency.max(1));
            rp.k += 1;
        } else {
            // Control divergence: this instruction and everything after is
            // executed non-speculatively.
            let s = &mut self.loops[rp.ti].1;
            s.reexec_insts += 1;
            s.reexec_cycles += latency.max(1);
            s.wasted_insts += (trace.len() - rp.k) as u64;
            self.cycle += latency.max(1);
            self.attribute_committed(latency.max(1));
            rp.k = trace.len();
        }
    }

    /// Runs the speculative core through fused blocks, pushing one record
    /// per constituent, until speculation must stop ([`SpecStop::Done`]) or
    /// the position needs the dense stepper ([`SpecStop::Dense`]).
    ///
    /// `bfunc`/`btarget`/`depth0` identify the iteration boundary (the spawn
    /// header at the spawn depth); `tag` is the episode's loop tag, whose
    /// `SPT_KILL` ends speculation without a record.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn spawn_super(
        &mut self,
        spec: &mut Thread,
        sup: &SuperblockModule,
        bfunc: FuncId,
        btarget: BlockId,
        depth0: usize,
        tag: u32,
        spec_cycle: &mut u64,
        trace: &mut Vec<ExecRecord>,
    ) -> SpecStop {
        let mut view = MemView::Overlay {
            base: &self.memory,
            buf: &mut self.spec_buf,
        };
        let cap = self.config.max_spec_ops;
        'outer: loop {
            let depth = spec.frames.len();
            let Some(frame) = spec.frames.last_mut() else {
                return SpecStop::Dense;
            };
            let func_id = frame.func;
            let df = self.decoded.func(func_id);
            let sf = sup.func(func_id);
            let sb = &sf.blocks[frame.block.index()];
            let Some((s0, e0)) = sb.range else {
                return SpecStop::Dense;
            };
            if frame.pos != df.blocks[frame.block.index()].body_start {
                return SpecStop::Dense;
            }

            // Deferred phi writes from the last transfer: one record each at
            // latency 0.
            while frame.pending_head < frame.pending.len() {
                if trace.len() >= cap {
                    return SpecStop::Done;
                }
                let (phi, bits) = frame.pending[frame.pending_head];
                frame.pending_head += 1;
                frame.values[phi.index()] = bits;
                trace.push(ExecRecord {
                    func: func_id,
                    inst: phi,
                    result: Some(bits),
                    store: None,
                    latency: 0,
                    cycle_end: *spec_cycle,
                });
            }

            // Elided constant defs in body order: the gap to each op's
            // stream position is the run crossed before it.
            let mut cidx = 0usize;
            let mut idx = s0 as usize;
            while idx < e0 as usize {
                let s = &sf.ops[idx];
                let m = &sf.meta[idx];
                while frame.pos < m.pos {
                    if trace.len() >= cap {
                        return SpecStop::Done;
                    }
                    let (slot, bits) = sb.consts[cidx];
                    cidx += 1;
                    frame.values[slot as usize] = bits;
                    frame.pos += 1;
                    trace.push(ExecRecord {
                        func: func_id,
                        inst: InstId(slot),
                        result: Some(bits),
                        store: None,
                        latency: 0,
                        cycle_end: *spec_cycle,
                    });
                }
                if trace.len() >= cap {
                    return SpecStop::Done;
                }
                match s.opc {
                    SOpc::Param
                    | SOpc::ConstV
                    | SOpc::FoldedDef
                    | SOpc::AddRR
                    | SOpc::AddImm
                    | SOpc::SubRR
                    | SOpc::SubImm
                    | SOpc::RsbImm
                    | SOpc::MulRR
                    | SOpc::MulImm
                    | SOpc::BinRR
                    | SOpc::BinImm
                    | SOpc::BinImmL
                    | SOpc::BinF64RR
                    | SOpc::BinF64Imm
                    | SOpc::BinF64ImmL
                    | SOpc::UnI64
                    | SOpc::UnF64
                    | SOpc::IntToFloat
                    | SOpc::FloatToInt
                    | SOpc::Copy
                    | SOpc::CmpRR
                    | SOpc::CmpImm
                    | SOpc::CmpF64RR
                    | SOpc::CmpF64Imm => {
                        let def = pure_def(s, &frame.values, &frame.args);
                        frame.values[m.inst.index()] = def;
                        let lat = u64::from(m.lat);
                        *spec_cycle += lat;
                        trace.push(ExecRecord {
                            func: func_id,
                            inst: m.inst,
                            result: Some(def),
                            store: None,
                            latency: lat,
                            cycle_end: *spec_cycle,
                        });
                        frame.pos += 1;
                        idx += 1;
                    }
                    SOpc::Fuse2 | SOpc::Fuse2II | SOpc::Fuse2IR | SOpc::Fuse2IRr => {
                        let r = fuse2_r(s, &frame.values);
                        frame.values[m.inst.index()] = r as u64;
                        let lat = u64::from(m.lat);
                        *spec_cycle += lat;
                        trace.push(ExecRecord {
                            func: func_id,
                            inst: m.inst,
                            result: Some(r as u64),
                            store: None,
                            latency: lat,
                            cycle_end: *spec_cycle,
                        });
                        frame.pos += 1;
                        if trace.len() >= cap {
                            return SpecStop::Done;
                        }
                        let v = fuse2_v(s, &frame.values, r) as u64;
                        frame.values[m.inst2.index()] = v;
                        let lat2 = u64::from(m.lat2);
                        *spec_cycle += lat2;
                        trace.push(ExecRecord {
                            func: func_id,
                            inst: m.inst2,
                            result: Some(v),
                            store: None,
                            latency: lat2,
                            cycle_end: *spec_cycle,
                        });
                        frame.pos += 1;
                        idx += 1;
                    }
                    SOpc::Load | SOpc::LoadImm => {
                        let cell = if s.opc == SOpc::Load {
                            frame.values[s.a as usize] as i64
                        } else {
                            s.imm as i64
                        };
                        let v = match view.read(cell) {
                            Ok(v) => v,
                            Err(_) => return SpecStop::Done,
                        };
                        frame.values[m.inst.index()] = v;
                        let lat = self.cache.access(cell as u64).max(1);
                        *spec_cycle += lat;
                        trace.push(ExecRecord {
                            func: func_id,
                            inst: m.inst,
                            result: Some(v),
                            store: None,
                            latency: lat,
                            cycle_end: *spec_cycle,
                        });
                        frame.pos += 1;
                        idx += 1;
                    }
                    SOpc::StoreRR | SOpc::StoreRI | SOpc::StoreIR | SOpc::StoreII => {
                        let cell = match s.opc {
                            SOpc::StoreRR | SOpc::StoreRI => frame.values[s.a as usize] as i64,
                            SOpc::StoreIR => s.imm as i64,
                            _ => s.aux as i64,
                        };
                        let bits = match s.opc {
                            SOpc::StoreRR | SOpc::StoreIR => frame.values[s.b as usize],
                            _ => s.imm,
                        };
                        if view.write(cell, bits).is_err() {
                            return SpecStop::Done;
                        }
                        let lat = self.cache.access(cell as u64).clamp(1, 4);
                        *spec_cycle += lat;
                        trace.push(ExecRecord {
                            func: func_id,
                            inst: m.inst,
                            result: None,
                            store: Some((cell, bits)),
                            latency: lat,
                            cycle_end: *spec_cycle,
                        });
                        frame.pos += 1;
                        idx += 1;
                    }
                    SOpc::LoadBin | SOpc::LoadBinImm => {
                        let cell = frame.values[s.a as usize] as i64;
                        let v = match view.read(cell) {
                            Ok(v) => v,
                            Err(_) => return SpecStop::Done,
                        };
                        frame.values[m.inst.index()] = v;
                        let lat = self.cache.access(cell as u64).max(1);
                        *spec_cycle += lat;
                        trace.push(ExecRecord {
                            func: func_id,
                            inst: m.inst,
                            result: Some(v),
                            store: None,
                            latency: lat,
                            cycle_end: *spec_cycle,
                        });
                        frame.pos += 1;
                        if trace.len() >= cap {
                            return SpecStop::Done;
                        }
                        let other = if s.opc == SOpc::LoadBin {
                            frame.values[s.b as usize] as i64
                        } else {
                            s.imm as i64
                        };
                        let r = if s.flags & F_SWAP != 0 {
                            s.bin.eval_i64(other, v as i64)
                        } else {
                            s.bin.eval_i64(v as i64, other)
                        } as u64;
                        frame.values[m.inst2.index()] = r;
                        let lat2 = u64::from(m.lat2);
                        *spec_cycle += lat2;
                        trace.push(ExecRecord {
                            func: func_id,
                            inst: m.inst2,
                            result: Some(r),
                            store: None,
                            latency: lat2,
                            cycle_end: *spec_cycle,
                        });
                        frame.pos += 1;
                        idx += 1;
                    }
                    SOpc::BinStore | SOpc::BinStoreImm => {
                        let a = frame.values[s.a as usize] as i64;
                        let r = if s.opc == SOpc::BinStore {
                            s.bin.eval_i64(a, frame.values[s.b as usize] as i64)
                        } else if s.flags & F_SWAP != 0 {
                            s.bin.eval_i64(s.imm as i64, a)
                        } else {
                            s.bin.eval_i64(a, s.imm as i64)
                        } as u64;
                        frame.values[m.inst.index()] = r;
                        let lat = u64::from(m.lat);
                        *spec_cycle += lat;
                        trace.push(ExecRecord {
                            func: func_id,
                            inst: m.inst,
                            result: Some(r),
                            store: None,
                            latency: lat,
                            cycle_end: *spec_cycle,
                        });
                        frame.pos += 1;
                        if trace.len() >= cap {
                            return SpecStop::Done;
                        }
                        let cell = frame.values[s.aux as usize] as i64;
                        if view.write(cell, r).is_err() {
                            return SpecStop::Done;
                        }
                        let lat2 = self.cache.access(cell as u64).clamp(1, 4);
                        *spec_cycle += lat2;
                        trace.push(ExecRecord {
                            func: func_id,
                            inst: m.inst2,
                            result: None,
                            store: Some((cell, r)),
                            latency: lat2,
                            cycle_end: *spec_cycle,
                        });
                        frame.pos += 1;
                        idx += 1;
                    }
                    SOpc::AgenLoad | SOpc::AgenLoadImm => {
                        let x = frame.values[s.a as usize] as i64;
                        let cell = if s.opc == SOpc::AgenLoad {
                            s.bin.eval_i64(x, frame.values[s.b as usize] as i64)
                        } else if s.flags & F_SWAP != 0 {
                            s.bin.eval_i64(s.imm as i64, x)
                        } else {
                            s.bin.eval_i64(x, s.imm as i64)
                        };
                        frame.values[m.inst.index()] = cell as u64;
                        let lat = u64::from(m.lat);
                        *spec_cycle += lat;
                        trace.push(ExecRecord {
                            func: func_id,
                            inst: m.inst,
                            result: Some(cell as u64),
                            store: None,
                            latency: lat,
                            cycle_end: *spec_cycle,
                        });
                        frame.pos += 1;
                        if trace.len() >= cap {
                            return SpecStop::Done;
                        }
                        let v = match view.read(cell) {
                            Ok(v) => v,
                            Err(_) => return SpecStop::Done,
                        };
                        frame.values[m.inst2.index()] = v;
                        let lat2 = self.cache.access(cell as u64).max(1);
                        *spec_cycle += lat2;
                        trace.push(ExecRecord {
                            func: func_id,
                            inst: m.inst2,
                            result: Some(v),
                            store: None,
                            latency: lat2,
                            cycle_end: *spec_cycle,
                        });
                        frame.pos += 1;
                        idx += 1;
                    }
                    SOpc::AgenStore | SOpc::AgenStoreImm => {
                        let x = frame.values[s.a as usize] as i64;
                        let cell = if s.opc == SOpc::AgenStore {
                            s.bin.eval_i64(x, frame.values[s.b as usize] as i64)
                        } else if s.flags & F_SWAP != 0 {
                            s.bin.eval_i64(s.imm as i64, x)
                        } else {
                            s.bin.eval_i64(x, s.imm as i64)
                        };
                        frame.values[m.inst.index()] = cell as u64;
                        let lat = u64::from(m.lat);
                        *spec_cycle += lat;
                        trace.push(ExecRecord {
                            func: func_id,
                            inst: m.inst,
                            result: Some(cell as u64),
                            store: None,
                            latency: lat,
                            cycle_end: *spec_cycle,
                        });
                        frame.pos += 1;
                        if trace.len() >= cap {
                            return SpecStop::Done;
                        }
                        let bits = frame.values[s.aux as usize];
                        if view.write(cell, bits).is_err() {
                            return SpecStop::Done;
                        }
                        let lat2 = self.cache.access(cell as u64).clamp(1, 4);
                        *spec_cycle += lat2;
                        trace.push(ExecRecord {
                            func: func_id,
                            inst: m.inst2,
                            result: None,
                            store: Some((cell, bits)),
                            latency: lat2,
                            cycle_end: *spec_cycle,
                        });
                        frame.pos += 1;
                        idx += 1;
                    }
                    SOpc::Jump => {
                        let target = s.t1;
                        transfer(frame, df, target);
                        let lat = u64::from(m.lat);
                        *spec_cycle += lat;
                        trace.push(ExecRecord {
                            func: func_id,
                            inst: m.inst,
                            result: None,
                            store: None,
                            latency: lat,
                            cycle_end: *spec_cycle,
                        });
                        if func_id == bfunc && target == btarget && depth == depth0 {
                            return SpecStop::Done;
                        }
                        continue 'outer;
                    }
                    SOpc::BinJump | SOpc::BinImmJump => {
                        let a = frame.values[s.a as usize] as i64;
                        let v = if s.opc == SOpc::BinJump {
                            s.bin.eval_i64(a, frame.values[s.b as usize] as i64)
                        } else if s.flags & F_SWAP != 0 {
                            s.bin.eval_i64(s.imm as i64, a)
                        } else {
                            s.bin.eval_i64(a, s.imm as i64)
                        } as u64;
                        frame.values[m.inst.index()] = v;
                        let lat = u64::from(m.lat);
                        *spec_cycle += lat;
                        trace.push(ExecRecord {
                            func: func_id,
                            inst: m.inst,
                            result: Some(v),
                            store: None,
                            latency: lat,
                            cycle_end: *spec_cycle,
                        });
                        frame.pos += 1;
                        if trace.len() >= cap {
                            return SpecStop::Done;
                        }
                        let target = s.t1;
                        transfer(frame, df, target);
                        let lat2 = u64::from(m.lat2);
                        *spec_cycle += lat2;
                        trace.push(ExecRecord {
                            func: func_id,
                            inst: m.inst2,
                            result: None,
                            store: None,
                            latency: lat2,
                            cycle_end: *spec_cycle,
                        });
                        if func_id == bfunc && target == btarget && depth == depth0 {
                            return SpecStop::Done;
                        }
                        continue 'outer;
                    }
                    SOpc::Branch | SOpc::BranchImm => {
                        let taken = if s.opc == SOpc::Branch {
                            frame.values[s.a as usize] != 0
                        } else {
                            s.imm != 0
                        };
                        let target = if taken { s.t1 } else { s.t2 };
                        let mut lat = u64::from(m.lat);
                        if self.predictor.mispredicted(func_id, m.inst, taken) {
                            lat += self.config.branch_mispredict_penalty;
                        }
                        transfer(frame, df, target);
                        *spec_cycle += lat;
                        trace.push(ExecRecord {
                            func: func_id,
                            inst: m.inst,
                            result: None,
                            store: None,
                            latency: lat,
                            cycle_end: *spec_cycle,
                        });
                        if func_id == bfunc && target == btarget && depth == depth0 {
                            return SpecStop::Done;
                        }
                        continue 'outer;
                    }
                    SOpc::CmpBr | SOpc::CmpBrImm => {
                        let a = frame.values[s.a as usize] as i64;
                        let b = if s.opc == SOpc::CmpBr {
                            frame.values[s.b as usize] as i64
                        } else {
                            s.imm as i64
                        };
                        let taken = s.cmp.eval_i64(a, b);
                        frame.values[m.inst.index()] = taken as u64;
                        let lat = u64::from(m.lat);
                        *spec_cycle += lat;
                        trace.push(ExecRecord {
                            func: func_id,
                            inst: m.inst,
                            result: Some(taken as u64),
                            store: None,
                            latency: lat,
                            cycle_end: *spec_cycle,
                        });
                        frame.pos += 1;
                        if trace.len() >= cap {
                            return SpecStop::Done;
                        }
                        let target = if taken { s.t1 } else { s.t2 };
                        let mut lat2 = u64::from(m.lat2);
                        if self.predictor.mispredicted(func_id, m.inst2, taken) {
                            lat2 += self.config.branch_mispredict_penalty;
                        }
                        transfer(frame, df, target);
                        *spec_cycle += lat2;
                        trace.push(ExecRecord {
                            func: func_id,
                            inst: m.inst2,
                            result: None,
                            store: None,
                            latency: lat2,
                            cycle_end: *spec_cycle,
                        });
                        if func_id == bfunc && target == btarget && depth == depth0 {
                            return SpecStop::Done;
                        }
                        continue 'outer;
                    }
                    SOpc::RetVal | SOpc::RetImm | SOpc::RetVoid => {
                        let bits = match s.opc {
                            SOpc::RetVal => Some(frame.values[s.a as usize]),
                            SOpc::RetImm => Some(s.imm),
                            _ => None,
                        };
                        let ret_slot = frame.ret_slot;
                        if let Some(done) = spec.frames.pop() {
                            spec.pool.push(done);
                        }
                        match spec.frames.last_mut() {
                            Some(parent) => {
                                if let (Some(slot), Some(v)) = (ret_slot, bits) {
                                    parent.values[slot.index()] = v;
                                }
                                let (to, pf, pd) = (parent.block, parent.func, spec.frames.len());
                                let lat = u64::from(m.lat);
                                *spec_cycle += lat;
                                trace.push(ExecRecord {
                                    func: func_id,
                                    inst: m.inst,
                                    result: None,
                                    store: None,
                                    latency: lat,
                                    cycle_end: *spec_cycle,
                                });
                                if pf == bfunc && to == btarget && pd == depth0 {
                                    return SpecStop::Done;
                                }
                                continue 'outer;
                            }
                            // Returning out of the spawning frame ends
                            // speculation; the return is not recorded.
                            None => return SpecStop::Done,
                        }
                    }
                    SOpc::SptFork => {
                        // Speculative forks are recorded (no-ops) and become
                        // effective at commit via the validation replay.
                        let lat = u64::from(m.lat);
                        *spec_cycle += lat;
                        trace.push(ExecRecord {
                            func: func_id,
                            inst: m.inst,
                            result: None,
                            store: None,
                            latency: lat,
                            cycle_end: *spec_cycle,
                        });
                        frame.pos += 1;
                        idx += 1;
                    }
                    SOpc::SptKill => {
                        let kt = s.imm as u32;
                        frame.pos += 1;
                        if kt == tag {
                            // The speculative thread left the loop; the kill
                            // itself is re-executed by the main thread.
                            return SpecStop::Done;
                        }
                        let lat = u64::from(m.lat);
                        *spec_cycle += lat;
                        trace.push(ExecRecord {
                            func: func_id,
                            inst: m.inst,
                            result: None,
                            store: None,
                            latency: lat,
                            cycle_end: *spec_cycle,
                        });
                        idx += 1;
                    }
                }
            }
            // A block body always ends in a terminator op, which transfers
            // or returns above; reaching here means malformed lowering, so
            // hand the position to the dense stepper.
            return SpecStop::Dense;
        }
    }

    /// Replays trace records through fused blocks on the main core,
    /// committing one comparison per constituent. Returns `Ok(true)` when it
    /// consumed replay steps (the caller re-checks the replay guard) and
    /// `Ok(false)` only when it made no progress at all and the current
    /// position needs the dense stepper — the caller may take one dense step
    /// on `Ok(false)` without re-checking its guard, so any call that
    /// committed anything must return `Ok(true)` even if it then reached a
    /// position it cannot run fused (e.g. a return into the middle of a
    /// caller block).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on main-thread faults, exactly as the dense
    /// replay would.
    pub(crate) fn validate_super(
        &mut self,
        thread: &mut Thread,
        sup: &SuperblockModule,
        trace: &[ExecRecord],
        rp: &mut ReplayState,
    ) -> Result<bool, ExecError> {
        // Each step is guarded exactly like the dense replay loop's
        // condition: an unconsumed record that finished by arrival.
        macro_rules! ready {
            () => {
                rp.k < trace.len() && trace[rp.k].cycle_end <= rp.arrival
            };
        }
        // Every committed constituent advances `rp.k`, so progress is a
        // plain cursor comparison.
        let k0 = rp.k;
        'outer: loop {
            let Some(frame) = thread.frames.last_mut() else {
                return Ok(rp.k != k0);
            };
            let func_id = frame.func;
            let df = self.decoded.func(func_id);
            let sf = sup.func(func_id);
            let sb = &sf.blocks[frame.block.index()];
            let Some((s0, e0)) = sb.range else {
                return Ok(rp.k != k0);
            };
            if frame.pos != df.blocks[frame.block.index()].body_start {
                return Ok(rp.k != k0);
            }

            while frame.pending_head < frame.pending.len() {
                if !ready!() {
                    return Ok(true);
                }
                let (phi, bits) = frame.pending[frame.pending_head];
                frame.pending_head += 1;
                frame.values[phi.index()] = bits;
                self.replay_commit(trace, rp, func_id, phi, Some(bits), None, 0);
            }

            let mut cidx = 0usize;
            let mut idx = s0 as usize;
            while idx < e0 as usize {
                let s = &sf.ops[idx];
                let m = &sf.meta[idx];
                while frame.pos < m.pos {
                    if !ready!() {
                        return Ok(true);
                    }
                    let (slot, bits) = sb.consts[cidx];
                    cidx += 1;
                    frame.values[slot as usize] = bits;
                    frame.pos += 1;
                    self.replay_commit(trace, rp, func_id, InstId(slot), Some(bits), None, 0);
                }
                if !ready!() {
                    return Ok(true);
                }
                match s.opc {
                    SOpc::Param
                    | SOpc::ConstV
                    | SOpc::FoldedDef
                    | SOpc::AddRR
                    | SOpc::AddImm
                    | SOpc::SubRR
                    | SOpc::SubImm
                    | SOpc::RsbImm
                    | SOpc::MulRR
                    | SOpc::MulImm
                    | SOpc::BinRR
                    | SOpc::BinImm
                    | SOpc::BinImmL
                    | SOpc::BinF64RR
                    | SOpc::BinF64Imm
                    | SOpc::BinF64ImmL
                    | SOpc::UnI64
                    | SOpc::UnF64
                    | SOpc::IntToFloat
                    | SOpc::FloatToInt
                    | SOpc::Copy
                    | SOpc::CmpRR
                    | SOpc::CmpImm
                    | SOpc::CmpF64RR
                    | SOpc::CmpF64Imm => {
                        let def = pure_def(s, &frame.values, &frame.args);
                        frame.values[m.inst.index()] = def;
                        frame.pos += 1;
                        self.replay_commit(
                            trace,
                            rp,
                            func_id,
                            m.inst,
                            Some(def),
                            None,
                            u64::from(m.lat),
                        );
                        idx += 1;
                    }
                    SOpc::Fuse2 | SOpc::Fuse2II | SOpc::Fuse2IR | SOpc::Fuse2IRr => {
                        let r = fuse2_r(s, &frame.values);
                        frame.values[m.inst.index()] = r as u64;
                        frame.pos += 1;
                        self.replay_commit(
                            trace,
                            rp,
                            func_id,
                            m.inst,
                            Some(r as u64),
                            None,
                            u64::from(m.lat),
                        );
                        if !ready!() {
                            return Ok(true);
                        }
                        let v = fuse2_v(s, &frame.values, r) as u64;
                        frame.values[m.inst2.index()] = v;
                        frame.pos += 1;
                        self.replay_commit(
                            trace,
                            rp,
                            func_id,
                            m.inst2,
                            Some(v),
                            None,
                            u64::from(m.lat2),
                        );
                        idx += 1;
                    }
                    SOpc::Load | SOpc::LoadImm => {
                        let cell = if s.opc == SOpc::Load {
                            frame.values[s.a as usize] as i64
                        } else {
                            s.imm as i64
                        };
                        let v = match usize::try_from(cell).ok().and_then(|i| self.memory.get(i)) {
                            Some(v) => *v,
                            None => return Err(ExecError::OutOfBounds(cell)),
                        };
                        frame.values[m.inst.index()] = v;
                        frame.pos += 1;
                        self.replay_commit(
                            trace,
                            rp,
                            func_id,
                            m.inst,
                            Some(v),
                            None,
                            u64::from(m.lat),
                        );
                        idx += 1;
                    }
                    SOpc::StoreRR | SOpc::StoreRI | SOpc::StoreIR | SOpc::StoreII => {
                        let cell = match s.opc {
                            SOpc::StoreRR | SOpc::StoreRI => frame.values[s.a as usize] as i64,
                            SOpc::StoreIR => s.imm as i64,
                            _ => s.aux as i64,
                        };
                        let bits = match s.opc {
                            SOpc::StoreRR | SOpc::StoreIR => frame.values[s.b as usize],
                            _ => s.imm,
                        };
                        match usize::try_from(cell)
                            .ok()
                            .and_then(|i| self.memory.get_mut(i))
                        {
                            Some(slot) => *slot = bits,
                            None => return Err(ExecError::OutOfBounds(cell)),
                        }
                        frame.pos += 1;
                        self.replay_commit(
                            trace,
                            rp,
                            func_id,
                            m.inst,
                            None,
                            Some((cell, bits)),
                            u64::from(m.lat),
                        );
                        idx += 1;
                    }
                    SOpc::LoadBin | SOpc::LoadBinImm => {
                        let cell = frame.values[s.a as usize] as i64;
                        let v = match usize::try_from(cell).ok().and_then(|i| self.memory.get(i)) {
                            Some(v) => *v,
                            None => return Err(ExecError::OutOfBounds(cell)),
                        };
                        frame.values[m.inst.index()] = v;
                        frame.pos += 1;
                        self.replay_commit(
                            trace,
                            rp,
                            func_id,
                            m.inst,
                            Some(v),
                            None,
                            u64::from(m.lat),
                        );
                        if !ready!() {
                            return Ok(true);
                        }
                        let other = if s.opc == SOpc::LoadBin {
                            frame.values[s.b as usize] as i64
                        } else {
                            s.imm as i64
                        };
                        let r = if s.flags & F_SWAP != 0 {
                            s.bin.eval_i64(other, v as i64)
                        } else {
                            s.bin.eval_i64(v as i64, other)
                        } as u64;
                        frame.values[m.inst2.index()] = r;
                        frame.pos += 1;
                        self.replay_commit(
                            trace,
                            rp,
                            func_id,
                            m.inst2,
                            Some(r),
                            None,
                            u64::from(m.lat2),
                        );
                        idx += 1;
                    }
                    SOpc::BinStore | SOpc::BinStoreImm => {
                        let a = frame.values[s.a as usize] as i64;
                        let r = if s.opc == SOpc::BinStore {
                            s.bin.eval_i64(a, frame.values[s.b as usize] as i64)
                        } else if s.flags & F_SWAP != 0 {
                            s.bin.eval_i64(s.imm as i64, a)
                        } else {
                            s.bin.eval_i64(a, s.imm as i64)
                        } as u64;
                        frame.values[m.inst.index()] = r;
                        frame.pos += 1;
                        self.replay_commit(
                            trace,
                            rp,
                            func_id,
                            m.inst,
                            Some(r),
                            None,
                            u64::from(m.lat),
                        );
                        if !ready!() {
                            return Ok(true);
                        }
                        let cell = frame.values[s.aux as usize] as i64;
                        match usize::try_from(cell)
                            .ok()
                            .and_then(|i| self.memory.get_mut(i))
                        {
                            Some(slot) => *slot = r,
                            None => {
                                frame.pos += 1;
                                return Err(ExecError::OutOfBounds(cell));
                            }
                        }
                        frame.pos += 1;
                        self.replay_commit(
                            trace,
                            rp,
                            func_id,
                            m.inst2,
                            None,
                            Some((cell, r)),
                            u64::from(m.lat2),
                        );
                        idx += 1;
                    }
                    SOpc::AgenLoad | SOpc::AgenLoadImm => {
                        let x = frame.values[s.a as usize] as i64;
                        let cell = if s.opc == SOpc::AgenLoad {
                            s.bin.eval_i64(x, frame.values[s.b as usize] as i64)
                        } else if s.flags & F_SWAP != 0 {
                            s.bin.eval_i64(s.imm as i64, x)
                        } else {
                            s.bin.eval_i64(x, s.imm as i64)
                        };
                        frame.values[m.inst.index()] = cell as u64;
                        frame.pos += 1;
                        self.replay_commit(
                            trace,
                            rp,
                            func_id,
                            m.inst,
                            Some(cell as u64),
                            None,
                            u64::from(m.lat),
                        );
                        if !ready!() {
                            return Ok(true);
                        }
                        let v = match usize::try_from(cell).ok().and_then(|i| self.memory.get(i)) {
                            Some(v) => *v,
                            None => {
                                frame.pos += 1;
                                return Err(ExecError::OutOfBounds(cell));
                            }
                        };
                        frame.values[m.inst2.index()] = v;
                        frame.pos += 1;
                        self.replay_commit(
                            trace,
                            rp,
                            func_id,
                            m.inst2,
                            Some(v),
                            None,
                            u64::from(m.lat2),
                        );
                        idx += 1;
                    }
                    SOpc::AgenStore | SOpc::AgenStoreImm => {
                        let x = frame.values[s.a as usize] as i64;
                        let cell = if s.opc == SOpc::AgenStore {
                            s.bin.eval_i64(x, frame.values[s.b as usize] as i64)
                        } else if s.flags & F_SWAP != 0 {
                            s.bin.eval_i64(s.imm as i64, x)
                        } else {
                            s.bin.eval_i64(x, s.imm as i64)
                        };
                        frame.values[m.inst.index()] = cell as u64;
                        frame.pos += 1;
                        self.replay_commit(
                            trace,
                            rp,
                            func_id,
                            m.inst,
                            Some(cell as u64),
                            None,
                            u64::from(m.lat),
                        );
                        if !ready!() {
                            return Ok(true);
                        }
                        let bits = frame.values[s.aux as usize];
                        match usize::try_from(cell)
                            .ok()
                            .and_then(|i| self.memory.get_mut(i))
                        {
                            Some(slot) => *slot = bits,
                            None => {
                                frame.pos += 1;
                                return Err(ExecError::OutOfBounds(cell));
                            }
                        }
                        frame.pos += 1;
                        self.replay_commit(
                            trace,
                            rp,
                            func_id,
                            m.inst2,
                            None,
                            Some((cell, bits)),
                            u64::from(m.lat2),
                        );
                        idx += 1;
                    }
                    SOpc::Jump => {
                        transfer(frame, df, s.t1);
                        self.replay_commit(
                            trace,
                            rp,
                            func_id,
                            m.inst,
                            None,
                            None,
                            u64::from(m.lat),
                        );
                        if rp.k >= trace.len() {
                            return Ok(true);
                        }
                        continue 'outer;
                    }
                    SOpc::BinJump | SOpc::BinImmJump => {
                        let a = frame.values[s.a as usize] as i64;
                        let v = if s.opc == SOpc::BinJump {
                            s.bin.eval_i64(a, frame.values[s.b as usize] as i64)
                        } else if s.flags & F_SWAP != 0 {
                            s.bin.eval_i64(s.imm as i64, a)
                        } else {
                            s.bin.eval_i64(a, s.imm as i64)
                        } as u64;
                        frame.values[m.inst.index()] = v;
                        frame.pos += 1;
                        self.replay_commit(
                            trace,
                            rp,
                            func_id,
                            m.inst,
                            Some(v),
                            None,
                            u64::from(m.lat),
                        );
                        if !ready!() {
                            return Ok(true);
                        }
                        transfer(frame, df, s.t1);
                        self.replay_commit(
                            trace,
                            rp,
                            func_id,
                            m.inst2,
                            None,
                            None,
                            u64::from(m.lat2),
                        );
                        if rp.k >= trace.len() {
                            return Ok(true);
                        }
                        continue 'outer;
                    }
                    SOpc::Branch | SOpc::BranchImm => {
                        let taken = if s.opc == SOpc::Branch {
                            frame.values[s.a as usize] != 0
                        } else {
                            s.imm != 0
                        };
                        let target = if taken { s.t1 } else { s.t2 };
                        transfer(frame, df, target);
                        self.replay_commit(
                            trace,
                            rp,
                            func_id,
                            m.inst,
                            None,
                            None,
                            u64::from(m.lat),
                        );
                        if rp.k >= trace.len() {
                            return Ok(true);
                        }
                        continue 'outer;
                    }
                    SOpc::CmpBr | SOpc::CmpBrImm => {
                        let a = frame.values[s.a as usize] as i64;
                        let b = if s.opc == SOpc::CmpBr {
                            frame.values[s.b as usize] as i64
                        } else {
                            s.imm as i64
                        };
                        let taken = s.cmp.eval_i64(a, b);
                        frame.values[m.inst.index()] = taken as u64;
                        frame.pos += 1;
                        self.replay_commit(
                            trace,
                            rp,
                            func_id,
                            m.inst,
                            Some(taken as u64),
                            None,
                            u64::from(m.lat),
                        );
                        if !ready!() {
                            return Ok(true);
                        }
                        let target = if taken { s.t1 } else { s.t2 };
                        transfer(frame, df, target);
                        self.replay_commit(
                            trace,
                            rp,
                            func_id,
                            m.inst2,
                            None,
                            None,
                            u64::from(m.lat2),
                        );
                        if rp.k >= trace.len() {
                            return Ok(true);
                        }
                        continue 'outer;
                    }
                    SOpc::RetVal | SOpc::RetImm | SOpc::RetVoid => {
                        let bits = match s.opc {
                            SOpc::RetVal => Some(frame.values[s.a as usize]),
                            SOpc::RetImm => Some(s.imm),
                            _ => None,
                        };
                        let ret_slot = frame.ret_slot;
                        if let Some(done) = thread.frames.pop() {
                            thread.pool.push(done);
                        }
                        let finished = match thread.frames.last_mut() {
                            Some(parent) => {
                                if let (Some(slot), Some(v)) = (ret_slot, bits) {
                                    parent.values[slot.index()] = v;
                                }
                                false
                            }
                            None => true,
                        };
                        self.replay_commit(
                            trace,
                            rp,
                            func_id,
                            m.inst,
                            None,
                            None,
                            u64::from(m.lat),
                        );
                        if finished {
                            rp.finished = Some(bits);
                            return Ok(true);
                        }
                        if rp.k >= trace.len() {
                            return Ok(true);
                        }
                        continue 'outer;
                    }
                    SOpc::SptFork => {
                        frame.pos += 1;
                        self.replay_commit(
                            trace,
                            rp,
                            func_id,
                            m.inst,
                            None,
                            None,
                            u64::from(m.lat),
                        );
                        if s.imm as u32 == rp.tag {
                            rp.pending_fork = true;
                        }
                        if rp.k >= trace.len() {
                            return Ok(true);
                        }
                        idx += 1;
                    }
                    SOpc::SptKill => {
                        frame.pos += 1;
                        self.replay_commit(
                            trace,
                            rp,
                            func_id,
                            m.inst,
                            None,
                            None,
                            u64::from(m.lat),
                        );
                        let kt = s.imm as u32;
                        self.deactivate(kt);
                        if kt == rp.tag {
                            rp.killed = true;
                            self.loops[rp.ti].1.wasted_insts += (trace.len() - rp.k) as u64;
                            rp.k = trace.len();
                        }
                        if rp.k >= trace.len() {
                            return Ok(true);
                        }
                        idx += 1;
                    }
                }
                // A value mismatch commits and continues, but a control
                // divergence discards the rest of the trace.
                if rp.k >= trace.len() {
                    return Ok(true);
                }
            }
            // A block body always ends in a terminator; reaching here means
            // malformed lowering — hand the position to the dense stepper.
            return Ok(rp.k != k0);
        }
    }
}

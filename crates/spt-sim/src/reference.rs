//! Reference SPT simulator: the original straight-from-the-IR engine, kept
//! as a differential oracle for the dense execution engine in
//! [`crate::thread`]/[`crate::sim`].
//!
//! Do not optimize this module. Its value is that it walks `InstKind`
//! operands and recomputes loop facts exactly the way the engine did before
//! pre-decoding, so `tests/engine_equivalence.rs` can pin the dense engine's
//! [`SimResult`](crate::SimResult) bit-for-bit against it. Everything here is
//! self-contained: it has its own thread, cache, predictor and driver copies,
//! sharing only the public leaf types ([`ExecError`](crate::thread::ExecError),
//! [`ExecRecord`](crate::thread::ExecRecord), [`StepEvent`](crate::thread::StepEvent),
//! [`SimResult`](crate::SimResult), [`MachineConfig`](crate::MachineConfig),
//! [`CacheConfig`](crate::CacheConfig)) so results are directly comparable.

use crate::cache::CacheConfig;
use crate::machine::MachineConfig;
use crate::sim::{SimError, SimResult};
use crate::stats::LoopSimStats;
use crate::thread::{ExecError, ExecRecord, StepEvent};
use spt_ir::{BlockId, Cfg, DomTree, FuncId, InstId, InstKind, Module, Operand, Ty};
use std::collections::{HashMap, VecDeque};

// ---------------------------------------------------------------------------
// Cache (reference copy)
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct Level {
    line_cells: usize,
    sets: usize,
    ways: usize,
    /// `tags[set]` = lines in LRU order (front = most recent).
    tags: Vec<Vec<u64>>,
}

impl Level {
    fn new(line_cells: usize, sets: usize, ways: usize) -> Self {
        Level {
            line_cells,
            sets,
            ways,
            tags: vec![Vec::new(); sets],
        }
    }

    fn access(&mut self, cell: u64) -> bool {
        let line = cell / self.line_cells as u64;
        let set = (line % self.sets as u64) as usize;
        let lines = &mut self.tags[set];
        if let Some(pos) = lines.iter().position(|&t| t == line) {
            let t = lines.remove(pos);
            lines.insert(0, t);
            true
        } else {
            lines.insert(0, line);
            lines.truncate(self.ways);
            false
        }
    }
}

#[derive(Clone, Debug)]
struct RefCache {
    l1: Level,
    l2: Level,
    config: CacheConfig,
    accesses: u64,
    l1_hits: u64,
    l2_hits: u64,
}

impl RefCache {
    fn new(config: CacheConfig) -> Self {
        RefCache {
            l1: Level::new(config.l1_line_cells, config.l1_sets, config.l1_ways),
            l2: Level::new(config.l2_line_cells, config.l2_sets, config.l2_ways),
            config,
            accesses: 0,
            l1_hits: 0,
            l2_hits: 0,
        }
    }

    fn access(&mut self, cell: u64) -> u64 {
        self.accesses += 1;
        if self.l1.access(cell) {
            self.l1_hits += 1;
            self.config.l1_latency
        } else if self.l2.access(cell) {
            self.l2_hits += 1;
            self.config.l2_latency
        } else {
            self.config.memory_latency
        }
    }

    fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            (self.l1_hits + self.l2_hits) as f64 / self.accesses as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Branch predictor (reference copy)
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, Default)]
struct RefPredictor {
    table: HashMap<(FuncId, InstId), u8>,
    predictions: u64,
    mispredictions: u64,
}

impl RefPredictor {
    fn mispredicted(&mut self, func: FuncId, inst: InstId, taken: bool) -> bool {
        let counter = self.table.entry((func, inst)).or_insert(2);
        let predicted_taken = *counter >= 2;
        if taken && *counter < 3 {
            *counter += 1;
        } else if !taken && *counter > 0 {
            *counter -= 1;
        }
        self.predictions += 1;
        let miss = predicted_taken != taken;
        if miss {
            self.mispredictions += 1;
        }
        miss
    }

    fn miss_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Thread (reference copy)
// ---------------------------------------------------------------------------

enum MemView<'a> {
    Direct(&'a mut Vec<u64>),
    Overlay {
        base: &'a [u64],
        buf: &'a mut HashMap<u64, u64>,
        cap: usize,
    },
}

impl MemView<'_> {
    fn read(&self, cell: i64) -> Result<u64, ExecError> {
        let idx = usize::try_from(cell).map_err(|_| ExecError::OutOfBounds(cell))?;
        match self {
            MemView::Direct(m) => m.get(idx).copied().ok_or(ExecError::OutOfBounds(cell)),
            MemView::Overlay { base, buf, .. } => match buf.get(&(idx as u64)) {
                Some(&v) => Ok(v),
                None => base.get(idx).copied().ok_or(ExecError::OutOfBounds(cell)),
            },
        }
    }

    fn write(&mut self, cell: i64, bits: u64) -> Result<(), ExecError> {
        let idx = usize::try_from(cell).map_err(|_| ExecError::OutOfBounds(cell))?;
        match self {
            MemView::Direct(m) => {
                let slot = m.get_mut(idx).ok_or(ExecError::OutOfBounds(cell))?;
                *slot = bits;
                Ok(())
            }
            MemView::Overlay { base, buf, cap } => {
                if idx >= base.len() {
                    return Err(ExecError::OutOfBounds(cell));
                }
                if buf.len() >= *cap && !buf.contains_key(&(idx as u64)) {
                    return Err(ExecError::SpecBufferFull);
                }
                buf.insert(idx as u64, bits);
                Ok(())
            }
        }
    }
}

struct Timing<'a> {
    cycle: &'a mut u64,
    cache: &'a mut RefCache,
    predictor: &'a mut RefPredictor,
    mispredict_penalty: u64,
}

#[derive(Clone, Debug)]
struct Frame {
    func: FuncId,
    values: Vec<u64>,
    args: Vec<u64>,
    block: BlockId,
    pos: usize,
    ret_slot: Option<InstId>,
    pending_phis: VecDeque<(InstId, u64)>,
}

struct Thread {
    frames: Vec<Frame>,
    max_depth: usize,
}

impl Thread {
    fn start(module: &Module, func: FuncId, args: Vec<u64>) -> Self {
        let f = module.func(func);
        Thread {
            frames: vec![Frame {
                func,
                values: vec![0; f.insts.len()],
                args,
                block: f.entry,
                pos: 0,
                ret_slot: None,
                pending_phis: VecDeque::new(),
            }],
            max_depth: 256,
        }
    }

    fn start_spec(
        module: &Module,
        func: FuncId,
        context: &[u64],
        args: Vec<u64>,
        header: BlockId,
        latch: BlockId,
    ) -> Self {
        let f = module.func(func);
        let mut frame = Frame {
            func,
            values: context.to_vec(),
            args,
            block: header,
            pos: 0,
            ret_slot: None,
            pending_phis: VecDeque::new(),
        };
        let mut nphis = 0;
        let mut pending = Vec::new();
        for &i in &f.block(header).insts {
            if let InstKind::Phi { args } = &f.inst(i).kind {
                nphis += 1;
                let v = args
                    .iter()
                    .find(|(p, _)| *p == latch)
                    .map(|(_, op)| read_operand(*op, &frame.values))
                    .unwrap_or(0);
                pending.push((i, v));
            } else {
                break;
            }
        }
        frame.pos = nphis;
        frame.pending_phis = pending.into();
        Thread {
            frames: vec![frame],
            max_depth: 256,
        }
    }

    fn current_func(&self) -> FuncId {
        self.frames.last().expect("live thread").func
    }

    fn depth(&self) -> usize {
        self.frames.len()
    }

    fn context(&self) -> (Vec<u64>, Vec<u64>) {
        let f = self.frames.last().expect("live thread");
        (f.values.clone(), f.args.clone())
    }

    fn step(
        &mut self,
        module: &Module,
        region_bases: &[usize],
        mem: &mut MemView<'_>,
        mut timing: Option<&mut Timing<'_>>,
    ) -> Result<(ExecRecord, StepEvent), ExecError> {
        let depth = self.frames.len();
        let frame = self
            .frames
            .last_mut()
            .ok_or_else(|| ExecError::Malformed("step on finished thread".into()))?;
        let func_id = frame.func;
        let f = module.func(func_id);

        if let Some((phi, bits)) = frame.pending_phis.pop_front() {
            frame.values[phi.index()] = bits;
            let cycle_end = timing.as_ref().map(|t| *t.cycle).unwrap_or(0);
            return Ok((
                ExecRecord {
                    func: func_id,
                    inst: phi,
                    result: Some(bits),
                    store: None,
                    latency: 0,
                    cycle_end,
                },
                StepEvent::Continue,
            ));
        }

        let insts = &f.block(frame.block).insts;
        let inst_id = *insts.get(frame.pos).ok_or_else(|| {
            ExecError::Malformed(format!("fell off block {} in {}", frame.block, f.name))
        })?;
        frame.pos += 1;
        let inst = f.inst(inst_id);
        let mut latency = inst.latency();
        let mut result: Option<u64> = None;
        let mut store: Option<(i64, u64)> = None;
        let mut event = StepEvent::Continue;

        macro_rules! op {
            ($o:expr) => {
                read_operand($o, &frame.values)
            };
        }

        match &inst.kind {
            InstKind::Param { index } => {
                let v = frame.args.get(*index).copied().unwrap_or(0);
                frame.values[inst_id.index()] = v;
                result = Some(v);
            }
            InstKind::Binary { op, lhs, rhs } => {
                let (a, b) = (op!(*lhs), op!(*rhs));
                let v = match inst.ty.unwrap_or(Ty::I64) {
                    Ty::I64 => op.eval_i64(a as i64, b as i64) as u64,
                    Ty::F64 => op.eval_f64(f64::from_bits(a), f64::from_bits(b)).to_bits(),
                };
                frame.values[inst_id.index()] = v;
                result = Some(v);
            }
            InstKind::Unary { op, val } => {
                let a = op!(*val);
                let v = match (inst.ty.unwrap_or(Ty::I64), op) {
                    (Ty::F64, spt_ir::UnOp::IntToFloat) => ((a as i64) as f64).to_bits(),
                    (Ty::I64, spt_ir::UnOp::FloatToInt) => (f64::from_bits(a) as i64) as u64,
                    (Ty::I64, _) => op.eval_i64(a as i64) as u64,
                    (Ty::F64, _) => op.eval_f64(f64::from_bits(a)).to_bits(),
                };
                frame.values[inst_id.index()] = v;
                result = Some(v);
            }
            InstKind::Cmp {
                op,
                operand_ty,
                lhs,
                rhs,
            } => {
                let (a, b) = (op!(*lhs), op!(*rhs));
                let t = match operand_ty {
                    Ty::I64 => op.eval_i64(a as i64, b as i64),
                    Ty::F64 => op.eval_f64(f64::from_bits(a), f64::from_bits(b)),
                };
                let v = t as u64;
                frame.values[inst_id.index()] = v;
                result = Some(v);
            }
            InstKind::Copy { val } => {
                let v = op!(*val);
                frame.values[inst_id.index()] = v;
                result = Some(v);
            }
            InstKind::Phi { .. } => {
                return Err(ExecError::Malformed(format!(
                    "unscheduled phi {inst_id} executed directly"
                )));
            }
            InstKind::RegionBase { region } => {
                let base = if region.is_unknown() {
                    0
                } else {
                    region_bases[region.index()] as u64
                };
                frame.values[inst_id.index()] = base;
                result = Some(base);
            }
            InstKind::Load { addr, .. } => {
                let cell = op!(*addr) as i64;
                let v = mem.read(cell)?;
                frame.values[inst_id.index()] = v;
                result = Some(v);
                if let Some(t) = timing.as_mut() {
                    latency = t.cache.access(cell as u64).max(1);
                }
            }
            InstKind::Store { addr, val, .. } => {
                let cell = op!(*addr) as i64;
                let bits = op!(*val);
                mem.write(cell, bits)?;
                store = Some((cell, bits));
                if let Some(t) = timing.as_mut() {
                    latency = t.cache.access(cell as u64).clamp(1, 4);
                }
            }
            InstKind::Call { callee, args } => {
                if depth >= self.max_depth {
                    return Err(ExecError::StackOverflow);
                }
                let callee_func = module.func(*callee);
                let call_args: Vec<u64> = args.iter().map(|a| op!(*a)).collect();
                let new_frame = Frame {
                    func: *callee,
                    values: vec![0; callee_func.insts.len()],
                    args: call_args,
                    block: callee_func.entry,
                    pos: 0,
                    ret_slot: Some(inst_id),
                    pending_phis: VecDeque::new(),
                };
                self.frames.push(new_frame);
                event = StepEvent::Transfer {
                    to: callee_func.entry,
                    func: *callee,
                };
            }
            InstKind::VarLoad { .. } | InstKind::VarStore { .. } => {
                return Err(ExecError::Malformed("non-SSA IR in simulator".into()));
            }
            InstKind::Jump { target } => {
                let target = *target;
                transfer(frame, f, target);
                event = StepEvent::Transfer {
                    to: target,
                    func: func_id,
                };
            }
            InstKind::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let taken = op!(*cond) != 0;
                let target = if taken { *then_bb } else { *else_bb };
                if let Some(t) = timing.as_mut() {
                    if t.predictor.mispredicted(func_id, inst_id, taken) {
                        latency += t.mispredict_penalty;
                    }
                }
                transfer(frame, f, target);
                event = StepEvent::Transfer {
                    to: target,
                    func: func_id,
                };
            }
            InstKind::Ret { val } => {
                let bits = val.map(|v| op!(v));
                let ret_slot = frame.ret_slot;
                self.frames.pop();
                match self.frames.last_mut() {
                    Some(parent) => {
                        if let (Some(slot), Some(bits)) = (ret_slot, bits) {
                            parent.values[slot.index()] = bits;
                        }
                        event = StepEvent::Transfer {
                            to: parent.block,
                            func: parent.func,
                        };
                    }
                    None => {
                        event = StepEvent::Finished { value: bits };
                    }
                }
            }
            InstKind::SptFork {
                loop_tag,
                spawn_target,
            } => {
                event = StepEvent::Fork {
                    tag: *loop_tag,
                    target: *spawn_target,
                    func: func_id,
                };
            }
            InstKind::SptKill { loop_tag } => {
                event = StepEvent::Kill { tag: *loop_tag };
            }
        }

        let cycle_end = match timing.as_mut() {
            Some(t) => {
                *t.cycle += latency;
                *t.cycle
            }
            None => 0,
        };
        Ok((
            ExecRecord {
                func: func_id,
                inst: inst_id,
                result,
                store,
                latency,
                cycle_end,
            },
            event,
        ))
    }
}

fn transfer(frame: &mut Frame, f: &spt_ir::Function, target: BlockId) {
    let from = frame.block;
    let mut pending = Vec::new();
    let mut nphis = 0;
    for &i in &f.block(target).insts {
        if let InstKind::Phi { args } = &f.inst(i).kind {
            nphis += 1;
            let v = args
                .iter()
                .find(|(p, _)| *p == from)
                .map(|(_, op)| read_operand(*op, &frame.values))
                .unwrap_or(0);
            pending.push((i, v));
        } else {
            break;
        }
    }
    frame.block = target;
    frame.pos = nphis;
    frame.pending_phis = pending.into();
}

#[inline]
fn read_operand(op: Operand, values: &[u64]) -> u64 {
    match op {
        Operand::Inst(id) => values[id.index()],
        Operand::ConstI64(v) => v as u64,
        Operand::ConstF64Bits(b) => b,
    }
}

// ---------------------------------------------------------------------------
// Driver (reference copy)
// ---------------------------------------------------------------------------

struct Episode {
    tag: u32,
    spawn_func: FuncId,
    spawn_target: BlockId,
    depth: usize,
    trace: Vec<ExecRecord>,
}

/// The reference SPT machine simulator, behaviorally identical to
/// [`SptSimulator`](crate::SptSimulator) before pre-decoding.
pub struct ReferenceSimulator {
    /// Machine parameters.
    pub config: MachineConfig,
}

impl ReferenceSimulator {
    /// A reference simulator with the paper's default machine.
    pub fn new() -> Self {
        ReferenceSimulator {
            config: MachineConfig::default(),
        }
    }

    /// A reference simulator with custom parameters.
    pub fn with_config(config: MachineConfig) -> Self {
        ReferenceSimulator { config }
    }

    /// Runs `entry(args)` with the module's initial memory.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on unknown entry, program faults or fuel
    /// exhaustion.
    pub fn run(&self, module: &Module, entry: &str, args: &[i64]) -> Result<SimResult, SimError> {
        let (bases, size) = module.memory_layout();
        let mut memory = vec![0u64; size];
        for (gi, g) in module.globals.iter().enumerate() {
            if let Some(init) = &g.init {
                for (k, &b) in init.iter().take(g.size).enumerate() {
                    memory[bases[gi] + k] = b;
                }
            }
        }
        self.run_with_memory(module, entry, args, memory)
    }

    /// Runs with a caller-provided memory image.
    ///
    /// # Errors
    ///
    /// See [`ReferenceSimulator::run`].
    pub fn run_with_memory(
        &self,
        module: &Module,
        entry: &str,
        args: &[i64],
        memory: Vec<u64>,
    ) -> Result<SimResult, SimError> {
        let func = module
            .func_by_name(entry)
            .ok_or_else(|| SimError::NoSuchFunction(entry.to_string()))?;
        let (bases, _) = module.memory_layout();
        Run {
            module,
            bases,
            config: &self.config,
            memory,
            cycle: 0,
            insts: 0,
            cache: RefCache::new(self.config.cache.clone()),
            predictor: RefPredictor::default(),
            loops: HashMap::new(),
            active_tags: Vec::new(),
            latch_cache: HashMap::new(),
        }
        .run(func, args)
    }
}

impl Default for ReferenceSimulator {
    fn default() -> Self {
        Self::new()
    }
}

struct Run<'m> {
    module: &'m Module,
    bases: Vec<usize>,
    config: &'m MachineConfig,
    memory: Vec<u64>,
    cycle: u64,
    insts: u64,
    cache: RefCache,
    predictor: RefPredictor,
    loops: HashMap<u32, LoopSimStats>,
    active_tags: Vec<(u32, u64)>,
    latch_cache: HashMap<(FuncId, BlockId), Option<BlockId>>,
}

impl Run<'_> {
    fn run(mut self, func: FuncId, args: &[i64]) -> Result<SimResult, SimError> {
        let mut thread = Thread::start(self.module, func, args.iter().map(|&a| a as u64).collect());
        thread.max_depth = self.config.max_depth;
        let mut episode: Option<Episode> = None;

        let ret = loop {
            if self.insts > self.config.fuel {
                return Err(SimError::OutOfFuel);
            }
            let rec_event = {
                let mut view = MemView::Direct(&mut self.memory);
                let mut timing = Timing {
                    cycle: &mut self.cycle,
                    cache: &mut self.cache,
                    predictor: &mut self.predictor,
                    mispredict_penalty: self.config.branch_mispredict_penalty,
                };
                thread.step(self.module, &self.bases, &mut view, Some(&mut timing))?
            };
            let (rec, event) = rec_event;
            self.insts += 1;
            self.attribute_main(&rec);

            match event {
                StepEvent::Continue => {}
                StepEvent::Fork { tag, target, func } => {
                    if episode.is_none() {
                        self.activate(tag);
                        episode = Some(self.spawn(&thread, func, target, tag));
                    }
                }
                StepEvent::Kill { tag } => {
                    if let Some(ep) = &episode {
                        if ep.tag == tag {
                            let wasted = ep.trace.len() as u64;
                            let s = self.loops.entry(tag).or_default();
                            s.kills += 1;
                            s.wasted_insts += wasted;
                            episode = None;
                        }
                    }
                    self.deactivate(tag);
                }
                StepEvent::Transfer { to, func } => {
                    let matches = episode.as_ref().is_some_and(|ep| {
                        ep.spawn_func == func && ep.spawn_target == to && ep.depth == thread.depth()
                    });
                    if matches {
                        let ep = episode.take().expect("matched episode");
                        let (next, finished) = self.validate(&mut thread, ep)?;
                        episode = next;
                        if let Some(value) = finished {
                            break value;
                        }
                    }
                }
                StepEvent::Finished { value } => break value,
            }
        };

        let cycle = self.cycle;
        while let Some((tag, entered)) = self.active_tags.pop() {
            self.loops.entry(tag).or_default().loop_cycles += cycle - entered;
        }

        Ok(SimResult {
            ret,
            cycles: self.cycle,
            insts: self.insts,
            memory: self.memory,
            loops: self.loops,
            cache_hit_rate: self.cache.hit_rate(),
            branch_miss_rate: self.predictor.miss_rate(),
        })
    }

    fn activate(&mut self, tag: u32) {
        if !self.active_tags.iter().any(|&(t, _)| t == tag) {
            self.active_tags.push((tag, self.cycle));
            self.loops.entry(tag).or_default();
        }
    }

    fn deactivate(&mut self, tag: u32) {
        if let Some(pos) = self.active_tags.iter().position(|&(t, _)| t == tag) {
            let (_, entered) = self.active_tags.remove(pos);
            self.loops.entry(tag).or_default().loop_cycles += self.cycle - entered;
        }
    }

    fn attribute_main(&mut self, rec: &ExecRecord) {
        for &(tag, _) in &self.active_tags {
            let s = self.loops.entry(tag).or_default();
            s.main_insts += 1;
            s.seq_cycles += rec.latency;
        }
    }

    fn attribute_committed(&mut self, latency: u64) {
        for &(tag, _) in &self.active_tags {
            self.loops.entry(tag).or_default().seq_cycles += latency;
        }
    }

    fn latch_of(&mut self, func: FuncId, header: BlockId) -> Option<BlockId> {
        let module = self.module;
        *self.latch_cache.entry((func, header)).or_insert_with(|| {
            let f = module.func(func);
            let cfg = Cfg::compute(f);
            let dom = DomTree::compute(&cfg);
            cfg.preds(header)
                .iter()
                .copied()
                .find(|&p| dom.dominates(header, p))
        })
    }

    fn spawn(&mut self, main: &Thread, func: FuncId, target: BlockId, tag: u32) -> Episode {
        self.cycle += self.config.fork_overhead;
        self.loops.entry(tag).or_default().forks += 1;

        let main_depth = main.depth();
        let (context, args) = main.context();
        let latch = self.latch_of(func, target).unwrap_or(target);
        let mut spec = Thread::start_spec(self.module, func, &context, args, target, latch);
        spec.max_depth = self.config.max_depth;

        let mut buf: HashMap<u64, u64> = HashMap::new();
        let mut spec_cycle = self.cycle;
        let mut trace: Vec<ExecRecord> = Vec::new();
        let depth0 = spec.depth();

        loop {
            if trace.len() >= self.config.max_spec_ops {
                break;
            }
            let step = {
                let mut view = MemView::Overlay {
                    base: &self.memory,
                    buf: &mut buf,
                    cap: self.config.spec_buffer_entries,
                };
                let mut timing = Timing {
                    cycle: &mut spec_cycle,
                    cache: &mut self.cache,
                    predictor: &mut self.predictor,
                    mispredict_penalty: self.config.branch_mispredict_penalty,
                };
                spec.step(self.module, &self.bases, &mut view, Some(&mut timing))
            };
            match step {
                Ok((rec, event)) => match event {
                    StepEvent::Transfer { to, func: tf }
                        if tf == func && to == target && spec.depth() == depth0 =>
                    {
                        trace.push(rec);
                        break;
                    }
                    StepEvent::Kill { tag: kt } if kt == tag => {
                        break;
                    }
                    StepEvent::Fork { .. } => {
                        trace.push(rec);
                    }
                    StepEvent::Finished { .. } => {
                        break;
                    }
                    _ => trace.push(rec),
                },
                Err(_) => break,
            }
        }
        Episode {
            tag,
            spawn_func: func,
            spawn_target: target,
            depth: main_depth,
            trace,
        }
    }

    #[allow(clippy::type_complexity)]
    fn validate(
        &mut self,
        thread: &mut Thread,
        ep: Episode,
    ) -> Result<(Option<Episode>, Option<Option<u64>>), SimError> {
        let arrival = self.cycle;
        let stats = self.loops.entry(ep.tag).or_default();
        stats.commits += 1;

        let mut k = 0usize;
        let mut pending_fork = false;
        let mut killed = false;
        let mut finished: Option<Option<u64>> = None;

        while k < ep.trace.len() && ep.trace[k].cycle_end <= arrival {
            let expected = &ep.trace[k];
            let step = {
                let mut view = MemView::Direct(&mut self.memory);
                thread.step(self.module, &self.bases, &mut view, None)?
            };
            let (rec, event) = step;
            self.insts += 1;

            let same_site = rec.func == expected.func && rec.inst == expected.inst;
            if same_site {
                let equal = rec.result == expected.result && rec.store == expected.store;
                let s = self.loops.entry(ep.tag).or_default();
                if equal {
                    s.free_insts += 1;
                } else {
                    s.reexec_insts += 1;
                    s.reexec_cycles += expected.latency.max(1);
                    self.cycle += expected.latency.max(1);
                }
                self.attribute_committed(expected.latency.max(1));
                k += 1;
            } else {
                let s = self.loops.entry(ep.tag).or_default();
                s.reexec_insts += 1;
                s.reexec_cycles += rec.latency.max(1);
                s.wasted_insts += (ep.trace.len() - k) as u64;
                self.cycle += rec.latency.max(1);
                self.attribute_committed(rec.latency.max(1));
                k = ep.trace.len();
            }

            match event {
                StepEvent::Fork { tag, .. } if tag == ep.tag => pending_fork = true,
                StepEvent::Kill { tag } => {
                    if tag == ep.tag {
                        killed = true;
                    }
                    self.deactivate(tag);
                    if killed {
                        let s = self.loops.entry(ep.tag).or_default();
                        s.wasted_insts += (ep.trace.len() - k) as u64;
                        k = ep.trace.len();
                    }
                }
                StepEvent::Finished { value } => {
                    finished = Some(value);
                    break;
                }
                _ => {}
            }
            if k >= ep.trace.len() {
                break;
            }
        }

        if k < ep.trace.len() {
            let s = self.loops.entry(ep.tag).or_default();
            s.wasted_insts += (ep.trace.len() - k) as u64;
        }

        self.cycle += self.config.commit_overhead;

        if let Some(value) = finished {
            return Ok((None, Some(value)));
        }

        if pending_fork
            && !killed
            && thread.depth() == ep.depth
            && thread.current_func() == ep.spawn_func
        {
            let ep2 = self.spawn(thread, ep.spawn_func, ep.spawn_target, ep.tag);
            return Ok((Some(ep2), None));
        }
        Ok((None, None))
    }
}

//! Per-SPT-loop runtime statistics (Figures 16–19 inputs).

/// Counters for one SPT loop (identified by its `loop_tag`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LoopSimStats {
    /// Speculative threads spawned.
    pub forks: u64,
    /// Episodes validated/committed at the iteration boundary.
    pub commits: u64,
    /// Episodes discarded by `SPT_KILL` (loop exits).
    pub kills: u64,
    /// Speculative instructions whose results were committed for free.
    pub free_insts: u64,
    /// Speculative instructions re-executed after validation failed.
    pub reexec_insts: u64,
    /// Cycles spent re-executing misspeculated instructions.
    pub reexec_cycles: u64,
    /// Instructions executed non-speculatively while inside the loop.
    pub main_insts: u64,
    /// Wall-clock cycles attributed to the loop (main-core time from entry
    /// to exit).
    pub loop_cycles: u64,
    /// Sequential-equivalent cycles: the time the same committed work would
    /// have taken on one core under the same latency model.
    pub seq_cycles: u64,
    /// Speculative work discarded (instructions beyond divergences, killed
    /// episodes, or past the catch-up point).
    pub wasted_insts: u64,
}

impl LoopSimStats {
    /// Misspeculation ratio: fraction of speculatively executed instructions
    /// that had to be re-executed (Fig. 18 reports ~3% on average).
    pub fn misspec_ratio(&self) -> f64 {
        let total = self.free_insts + self.reexec_insts;
        if total == 0 {
            0.0
        } else {
            self.reexec_insts as f64 / total as f64
        }
    }

    /// Re-execution ratio: the fraction of a loop's computation re-executed
    /// due to misspeculation (Fig. 19's y-axis).
    pub fn reexec_ratio(&self) -> f64 {
        if self.seq_cycles == 0 {
            0.0
        } else {
            (self.reexec_cycles as f64 / self.seq_cycles as f64).min(1.0)
        }
    }

    /// Loop speedup over sequential execution of the same work (Fig. 18
    /// reports ~26% = 1.26x on average for selected loops).
    pub fn speedup(&self) -> f64 {
        if self.loop_cycles == 0 {
            1.0
        } else {
            self.seq_cycles as f64 / self.loop_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = LoopSimStats {
            free_insts: 97,
            reexec_insts: 3,
            reexec_cycles: 30,
            seq_cycles: 1000,
            loop_cycles: 800,
            ..Default::default()
        };
        assert!((s.misspec_ratio() - 0.03).abs() < 1e-12);
        assert!((s.reexec_ratio() - 0.03).abs() < 1e-12);
        assert!((s.speedup() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_neutral() {
        let s = LoopSimStats::default();
        assert_eq!(s.misspec_ratio(), 0.0);
        assert_eq!(s.reexec_ratio(), 0.0);
        assert_eq!(s.speedup(), 1.0);
    }
}

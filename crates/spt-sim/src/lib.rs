//! SPT architecture simulator (§8 of the paper).
//!
//! The simulated machine is a tightly-coupled two-core system: a **main
//! core** that always executes the non-speculative main thread, and one
//! **speculative core**. The cores share the memory hierarchy; speculative
//! writes are buffered and never reach memory until commit. The paper's
//! overheads are the defaults: 6 cycles to fork, 5 cycles to commit, 5
//! cycles branch-misprediction penalty.
//!
//! Execution model (§1, Fig. 1):
//!
//! * when the main thread executes `SPT_FORK`, the speculative core starts
//!   executing the *next iteration* from the loop header with a copy of the
//!   main thread's context (registers; memory is shared, reads snapshot the
//!   fork-time state, writes go to a speculation buffer);
//! * when the main thread arrives at the point where the speculative thread
//!   started (the header), it **validates**: speculative results that match
//!   a sequential re-execution are committed for free; mismatching ones are
//!   re-executed at full cost (partial commit + re-execution); a control
//!   divergence discards everything after it;
//! * `SPT_KILL` (at loop exits) discards any in-flight speculative work.
//!
//! Implementation note (see DESIGN.md): the simulator executes at IR-op
//! granularity rather than Itanium ISA granularity. Validation is performed
//! by *replaying* the speculative trace against committed state — replay is
//! authoritative, so the simulated program's results are exactly the
//! sequential semantics, and speculation only changes the cycle accounting.
//! The speculative core's trace is produced eagerly at fork time against the
//! fork-time memory snapshot, which makes runs deterministic.

pub mod cache;
pub mod machine;
pub mod predictor;
pub mod reference;
pub mod sim;
mod specexec;
pub mod stats;
mod superexec;
pub mod thread;

pub use cache::{Cache, CacheConfig};
pub use machine::MachineConfig;
pub use predictor::BranchPredictor;
pub use reference::ReferenceSimulator;
pub use sim::{SimError, SimResult, SptSimulator};
pub use stats::LoopSimStats;
pub use thread::SpecBuf;

//! A 2-bit saturating-counter branch predictor, shared by both cores.

use spt_ir::{FuncId, InstId};

/// Per-branch 2-bit saturating counters (0–1 predict not-taken, 2–3 predict
/// taken); new branches start weakly taken, reflecting backward-branch bias.
///
/// Counters live in dense per-function rows indexed by instruction id, lazily
/// grown on first touch (new slots initialize to the weakly-taken state, so
/// growth is observationally identical to the entry-on-demand map it
/// replaced).
#[derive(Clone, Debug, Default)]
pub struct BranchPredictor {
    table: Vec<Vec<u8>>,
    /// Total predictions made.
    pub predictions: u64,
    /// Mispredictions.
    pub mispredictions: u64,
}

impl BranchPredictor {
    /// Creates an empty predictor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Predicts, updates, and returns `true` when the prediction was wrong.
    #[inline]
    pub fn mispredicted(&mut self, func: FuncId, inst: InstId, taken: bool) -> bool {
        let fi = func.index();
        if self.table.len() <= fi {
            self.table.resize_with(fi + 1, Vec::new);
        }
        let row = &mut self.table[fi];
        if row.len() <= inst.index() {
            row.resize(inst.index() + 1, 2);
        }
        let counter = &mut row[inst.index()];
        let predicted_taken = *counter >= 2;
        if taken && *counter < 3 {
            *counter += 1;
        } else if !taken && *counter > 0 {
            *counter -= 1;
        }
        self.predictions += 1;
        let miss = predicted_taken != taken;
        if miss {
            self.mispredictions += 1;
        }
        miss
    }

    /// Misprediction rate over the run.
    pub fn miss_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branch() {
        let mut p = BranchPredictor::new();
        let key = (FuncId::new(0), InstId::new(0));
        // Always taken: after warmup, no misses.
        for _ in 0..100 {
            p.mispredicted(key.0, key.1, true);
        }
        assert!(p.miss_rate() < 0.05);
    }

    #[test]
    fn alternating_branch_hurts() {
        let mut p = BranchPredictor::new();
        let mut misses = 0;
        for k in 0..100 {
            if p.mispredicted(FuncId::new(0), InstId::new(1), k % 2 == 0) {
                misses += 1;
            }
        }
        assert!(misses >= 40, "2-bit counters struggle on alternation");
    }

    #[test]
    fn loop_back_edge_mostly_predicted() {
        let mut p = BranchPredictor::new();
        let mut misses = 0;
        // 10 activations of a 20-iteration loop: taken x20 then not-taken.
        for _ in 0..10 {
            for _ in 0..20 {
                if p.mispredicted(FuncId::new(0), InstId::new(2), true) {
                    misses += 1;
                }
            }
            if p.mispredicted(FuncId::new(0), InstId::new(2), false) {
                misses += 1;
            }
        }
        assert!(misses <= 12, "one miss per exit: {misses}");
    }
}

//! A two-level set-associative cache model with LRU replacement.
//!
//! The paper's machine shares an Itanium2-like memory hierarchy between the
//! two cores; this model captures the load-latency structure (L1 hit / L2
//! hit / memory) at cell granularity. Addresses are 8-byte cell indices.

/// Cache hierarchy parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheConfig {
    /// L1 line size in cells.
    pub l1_line_cells: usize,
    /// L1 number of sets.
    pub l1_sets: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// L2 line size in cells.
    pub l2_line_cells: usize,
    /// L2 number of sets.
    pub l2_sets: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// Main-memory latency in cycles.
    pub memory_latency: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        // Itanium2-flavoured: 16KB L1 (2-cycle), 256KB L2 (~14 cycles),
        // ~120-cycle memory. Line size 64B = 8 cells.
        CacheConfig {
            l1_line_cells: 8,
            l1_sets: 64,
            l1_ways: 4,
            l1_latency: 2,
            l2_line_cells: 16,
            l2_sets: 256,
            l2_ways: 8,
            l2_latency: 14,
            memory_latency: 120,
        }
    }
}

/// Absent line marker; never a real line tag (cells are memory indexes, far
/// below `u64::MAX * line_cells`).
const NO_LINE: u64 = u64::MAX;

/// One cache level as a single flat tag array: `ways` slots per set, kept in
/// LRU order (slot 0 = most recent). Hit and miss both shift a short fixed
/// run of the array with `copy_within` — same replacement behavior as a
/// per-set `Vec` with `remove`/`insert(0)`/`truncate`, without per-set
/// allocations or length bookkeeping.
#[derive(Clone, Debug)]
struct Level {
    line_cells: usize,
    sets: usize,
    ways: usize,
    /// `log2(line_cells)` when `line_cells` is a power of two (the default
    /// geometry), letting the per-access divide/modulo collapse to
    /// shift/mask.
    line_shift: Option<u32>,
    /// `sets - 1` when `sets` is a power of two.
    set_mask: Option<u64>,
    /// `tags[set * ways .. (set + 1) * ways]` = lines in LRU order.
    tags: Vec<u64>,
}

impl Level {
    fn new(line_cells: usize, sets: usize, ways: usize) -> Self {
        Level {
            line_cells,
            sets,
            ways,
            line_shift: line_cells
                .is_power_of_two()
                .then(|| line_cells.trailing_zeros()),
            set_mask: sets.is_power_of_two().then(|| sets as u64 - 1),
            tags: vec![NO_LINE; sets * ways],
        }
    }

    /// Returns `true` on hit; inserts the line either way.
    #[inline]
    fn access(&mut self, cell: u64) -> bool {
        let line = match self.line_shift {
            Some(sh) => cell >> sh,
            None => cell / self.line_cells as u64,
        };
        let set = match self.set_mask {
            Some(m) => (line & m) as usize,
            None => (line % self.sets as u64) as usize,
        };
        let off = set * self.ways;
        let lines = &mut self.tags[off..off + self.ways];
        if lines[0] == line {
            return true;
        }
        if let Some(pos) = lines[1..].iter().position(|&t| t == line) {
            lines.copy_within(0..pos + 1, 1);
            lines[0] = line;
            true
        } else {
            lines.copy_within(0..self.ways - 1, 1);
            lines[0] = line;
            false
        }
    }
}

/// A two-level cache.
#[derive(Clone, Debug)]
pub struct Cache {
    l1: Level,
    l2: Level,
    config: CacheConfig,
    /// Total accesses.
    pub accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits (L1 misses that hit L2).
    pub l2_hits: u64,
}

impl Cache {
    /// Builds a cache from its configuration.
    pub fn new(config: CacheConfig) -> Self {
        Cache {
            l1: Level::new(config.l1_line_cells, config.l1_sets, config.l1_ways),
            l2: Level::new(config.l2_line_cells, config.l2_sets, config.l2_ways),
            config,
            accesses: 0,
            l1_hits: 0,
            l2_hits: 0,
        }
    }

    /// Performs an access to `cell` and returns its latency.
    #[inline]
    pub fn access(&mut self, cell: u64) -> u64 {
        self.accesses += 1;
        if self.l1.access(cell) {
            self.l1_hits += 1;
            self.config.l1_latency
        } else if self.l2.access(cell) {
            self.l2_hits += 1;
            self.config.l2_latency
        } else {
            self.config.memory_latency
        }
    }

    /// Overall hit rate (either level).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            (self.l1_hits + self.l2_hits) as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits_l1() {
        let mut c = Cache::new(CacheConfig::default());
        let first = c.access(100);
        assert_eq!(first, 120, "cold miss goes to memory");
        let second = c.access(100);
        assert_eq!(second, 2, "now in L1");
        assert_eq!(c.accesses, 2);
        assert_eq!(c.l1_hits, 1);
    }

    #[test]
    fn spatial_locality_within_line() {
        let mut c = Cache::new(CacheConfig::default());
        c.access(0);
        assert_eq!(c.access(7), 2, "same 8-cell L1 line");
        assert_ne!(c.access(8), 2, "next line misses L1");
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let cfg = CacheConfig::default();
        let mut c = Cache::new(cfg.clone());
        // Touch enough distinct lines mapping to one L1 set to evict, but
        // few enough that L2 keeps them.
        let stride = (cfg.l1_sets * cfg.l1_line_cells) as u64;
        for k in 0..(cfg.l1_ways as u64 + 1) {
            c.access(k * stride);
        }
        // First line evicted from L1 but should be in L2.
        let lat = c.access(0);
        assert_eq!(lat, cfg.l2_latency);
    }

    #[test]
    fn working_set_hit_rates() {
        let mut c = Cache::new(CacheConfig::default());
        // Small working set: high hit rate after warmup.
        for _ in 0..10 {
            for a in 0..64u64 {
                c.access(a);
            }
        }
        assert!(c.hit_rate() > 0.9, "hit rate = {}", c.hit_rate());

        // Huge streaming scan touching each L2 line once: all misses.
        let mut c2 = Cache::new(CacheConfig::default());
        for a in (0..4_000_000u64).step_by(16) {
            c2.access(a);
        }
        assert!(c2.hit_rate() < 0.05, "hit rate = {}", c2.hit_rate());
    }
}

//! The SPT machine simulation driver: episodes, validation and commit.
//!
//! One *episode* is the life of a speculative thread: spawned at `SPT_FORK`
//! with a copy of the main thread's context, it executes the next iteration
//! against the fork-time memory snapshot, buffering writes. Its trace is
//! produced eagerly (deterministically) on the speculative core's own clock.
//! When the main thread arrives at the iteration boundary, the trace prefix
//! that fits the elapsed wall-clock is *validated*: the main thread steps
//! through the same instructions, committing value-identical results for
//! free and re-executing mismatches at full cost; a control divergence
//! discards the rest of the trace. Commit costs
//! [`MachineConfig::commit_overhead`] cycles; if the speculative thread had
//! passed the next `SPT_FORK`, the next episode spawns at commit.

use crate::cache::Cache;
use crate::machine::MachineConfig;
use crate::predictor::BranchPredictor;
use crate::specexec::{ReplayState, SpecStop};
use crate::stats::LoopSimStats;
use crate::superexec::SuperStop;
use crate::thread::{ExecError, ExecRecord, MemView, SpecBuf, StepEvent, Thread, Timing};
use spt_ir::{BlockId, DecodedModule, ExecTier, FuncId, Module, SuperblockModule};
use std::collections::HashMap;
use std::fmt;

/// Simulation failure modes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// Unknown entry function.
    NoSuchFunction(String),
    /// The (non-speculative) program faulted.
    Exec(ExecError),
    /// Retired-instruction budget exhausted.
    OutOfFuel,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoSuchFunction(n) => write!(f, "no such function `{n}`"),
            SimError::Exec(e) => write!(f, "execution fault: {e}"),
            SimError::OutOfFuel => write!(f, "out of fuel"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ExecError> for SimError {
    fn from(e: ExecError) -> Self {
        SimError::Exec(e)
    }
}

/// The outcome of a simulated run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Entry function's return value bits.
    pub ret: Option<u64>,
    /// Total main-core cycles.
    pub cycles: u64,
    /// Instructions retired (committed), including free speculative ones.
    pub insts: u64,
    /// Final memory image.
    pub memory: Vec<u64>,
    /// Per-loop-tag statistics.
    pub loops: HashMap<u32, LoopSimStats>,
    /// Shared-cache hit rate over the run.
    pub cache_hit_rate: f64,
    /// Branch-predictor miss rate over the run.
    pub branch_miss_rate: f64,
}

impl SimResult {
    /// Instructions per cycle (the paper's Table 1 metric, at IR-op
    /// granularity).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }
}

struct Episode {
    tag: u32,
    spawn_func: FuncId,
    spawn_target: BlockId,
    depth: usize,
    trace: Vec<ExecRecord>,
}

/// The SPT machine simulator.
pub struct SptSimulator {
    /// Machine parameters.
    pub config: MachineConfig,
}

impl SptSimulator {
    /// A simulator with the paper's default machine.
    pub fn new() -> Self {
        SptSimulator {
            config: MachineConfig::default(),
        }
    }

    /// A simulator with custom parameters.
    pub fn with_config(config: MachineConfig) -> Self {
        SptSimulator { config }
    }

    /// Runs `entry(args)` with the module's initial memory.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on unknown entry, program faults or fuel
    /// exhaustion.
    pub fn run(&self, module: &Module, entry: &str, args: &[i64]) -> Result<SimResult, SimError> {
        let (bases, size) = module.memory_layout();
        let mut memory = vec![0u64; size];
        for (gi, g) in module.globals.iter().enumerate() {
            if let Some(init) = &g.init {
                for (k, &b) in init.iter().take(g.size).enumerate() {
                    memory[bases[gi] + k] = b;
                }
            }
        }
        self.run_with_memory(module, entry, args, memory)
    }

    /// Runs with a caller-provided memory image.
    ///
    /// The execution tier ([`spt_ir::exec_tier`], selectable via
    /// `SPT_EXEC_TIER` or [`spt_ir::set_exec_tier_override`]) picks the
    /// engine: `reference` delegates to
    /// [`ReferenceSimulator`](crate::ReferenceSimulator), `super` runs the
    /// main thread on fused superblock code (bit-identical results), `dense`
    /// (the default) steps the pre-decoded form.
    ///
    /// # Errors
    ///
    /// See [`SptSimulator::run`].
    pub fn run_with_memory(
        &self,
        module: &Module,
        entry: &str,
        args: &[i64],
        memory: Vec<u64>,
    ) -> Result<SimResult, SimError> {
        let tier = spt_ir::exec_tier();
        if tier == ExecTier::Reference {
            return crate::reference::ReferenceSimulator::with_config(self.config.clone())
                .run_with_memory(module, entry, args, memory);
        }
        let func = module
            .func_by_name(entry)
            .ok_or_else(|| SimError::NoSuchFunction(entry.to_string()))?;
        let decoded = DecodedModule::new(module);
        let run = Run {
            decoded: &decoded,
            config: &self.config,
            memory,
            cycle: 0,
            insts: 0,
            cache: Cache::new(self.config.cache.clone()),
            predictor: BranchPredictor::new(),
            loops: Vec::new(),
            active_tags: Vec::new(),
            spec_buf: SpecBuf::new(self.config.spec_buffer_entries),
            trace_pool: Vec::new(),
            spec_thread: None,
        };
        if tier == ExecTier::Super {
            let sup = SuperblockModule::build(&decoded);
            run.run_fused(&sup, func, args)
        } else {
            run.run(func, args)
        }
    }
}

impl Default for SptSimulator {
    fn default() -> Self {
        Self::new()
    }
}

pub(crate) struct Run<'m> {
    pub(crate) decoded: &'m DecodedModule,
    pub(crate) config: &'m MachineConfig,
    pub(crate) memory: Vec<u64>,
    pub(crate) cycle: u64,
    pub(crate) insts: u64,
    pub(crate) cache: Cache,
    pub(crate) predictor: BranchPredictor,
    /// Per-tag loop stats. Tags are few (one per SPT loop), so a
    /// linear-scanned vector beats a hash map in the per-instruction
    /// accounting paths; the final [`SimResult`] map is built once at the
    /// end.
    pub(crate) loops: Vec<(u32, LoopSimStats)>,
    /// `(tag, entry cycle, stats slot)` of loops the main thread is
    /// currently inside. The cached slot index into `loops` makes the
    /// per-instruction attribution a direct indexed add (slots are stable:
    /// `loops` only appends).
    pub(crate) active_tags: Vec<(u32, u64, u32)>,
    /// The speculative store buffer, reset and reused across episodes.
    pub(crate) spec_buf: SpecBuf,
    /// Retired episode traces, recycled to avoid a fresh allocation (and
    /// regrowth) on every fork.
    pub(crate) trace_pool: Vec<Vec<ExecRecord>>,
    /// The speculative core's thread, reused (allocations and all) across
    /// episodes.
    pub(crate) spec_thread: Option<Thread>,
}

impl Run<'_> {
    /// Stats slot for `tag`, created on first touch (insertion-ordered, like
    /// the map it replaced — the final HashMap conversion erases order).
    fn loop_stats(&mut self, tag: u32) -> &mut LoopSimStats {
        match self.loops.iter().position(|&(t, _)| t == tag) {
            Some(i) => &mut self.loops[i].1,
            None => {
                self.loops.push((tag, LoopSimStats::default()));
                &mut self.loops.last_mut().expect("just pushed").1
            }
        }
    }

    /// Returns an episode's trace buffer to the pool for the next fork.
    fn recycle_trace(&mut self, mut trace: Vec<ExecRecord>) {
        trace.clear();
        self.trace_pool.push(trace);
    }
    fn run(mut self, func: FuncId, args: &[i64]) -> Result<SimResult, SimError> {
        let mut thread =
            Thread::start(self.decoded, func, args.iter().map(|&a| a as u64).collect());
        thread.max_depth = self.config.max_depth;
        let mut episode: Option<Episode> = None;

        let ret = loop {
            if self.insts > self.config.fuel {
                return Err(SimError::OutOfFuel);
            }
            let rec_event = {
                let mut view = MemView::Direct(&mut self.memory);
                let mut timing = Timing {
                    cycle: &mut self.cycle,
                    cache: &mut self.cache,
                    predictor: &mut self.predictor,
                    mispredict_penalty: self.config.branch_mispredict_penalty,
                };
                thread.step(self.decoded, &mut view, Some(&mut timing))?
            };
            let (rec, event) = rec_event;
            self.insts += 1;
            self.attribute_main(&rec);

            match event {
                StepEvent::Continue => {}
                StepEvent::Fork { tag, target, func } => {
                    if episode.is_none() {
                        self.activate(tag);
                        episode = Some(self.spawn(&thread, None, func, target, tag));
                    }
                }
                StepEvent::Kill { tag } => {
                    if episode.as_ref().is_some_and(|ep| ep.tag == tag) {
                        let ep = episode.take().expect("matched episode");
                        let wasted = ep.trace.len() as u64;
                        let s = self.loop_stats(tag);
                        s.kills += 1;
                        s.wasted_insts += wasted;
                        self.recycle_trace(ep.trace);
                    }
                    self.deactivate(tag);
                }
                StepEvent::Transfer { to, func } => {
                    let matches = episode.as_ref().is_some_and(|ep| {
                        ep.spawn_func == func && ep.spawn_target == to && ep.depth == thread.depth()
                    });
                    if matches {
                        let ep = episode.take().expect("matched episode");
                        let (next, finished) = self.validate(&mut thread, None, ep)?;
                        episode = next;
                        if let Some(value) = finished {
                            break value;
                        }
                    }
                }
                StepEvent::Finished { value } => break value,
            }
        };

        // Close any still-active loop attributions.
        let cycle = self.cycle;
        while let Some((_, entered, slot)) = self.active_tags.pop() {
            self.loops[slot as usize].1.loop_cycles += cycle - entered;
        }

        Ok(SimResult {
            ret,
            cycles: self.cycle,
            insts: self.insts,
            memory: self.memory,
            loops: self.loops.into_iter().collect(),
            cache_hit_rate: self.cache.hit_rate(),
            branch_miss_rate: self.predictor.miss_rate(),
        })
    }

    /// The superblock-tier driver: identical episode machinery to
    /// [`Run::run`], but the main thread advances through
    /// [`Run::run_super`](crate::superexec), which executes fused blocks by
    /// threaded-code dispatch and returns only at control events the driver
    /// must see (fork, kill, watched iteration-boundary transfers, finish)
    /// or when the fuel budget is crossed. Speculative spawn and validation
    /// replay likewise run fused blocks through
    /// [`Run::spawn_super`](crate::specexec) and
    /// [`Run::validate_super`](crate::specexec), with the same exactness
    /// contract, so results and cycle accounting are bit-identical to
    /// [`Run::run`].
    pub(crate) fn run_fused(
        mut self,
        sup: &SuperblockModule,
        func: FuncId,
        args: &[i64],
    ) -> Result<SimResult, SimError> {
        let mut thread =
            Thread::start(self.decoded, func, args.iter().map(|&a| a as u64).collect());
        thread.max_depth = self.config.max_depth;
        let mut episode: Option<Episode> = None;

        let ret = loop {
            if self.insts > self.config.fuel {
                return Err(SimError::OutOfFuel);
            }
            let watch = episode
                .as_ref()
                .map(|ep| (ep.spawn_func, ep.spawn_target, ep.depth));
            let event = match self.run_super(&mut thread, sup, watch)? {
                SuperStop::Fuel => continue,
                SuperStop::Event(event) => event,
            };

            match event {
                StepEvent::Continue => {}
                StepEvent::Fork { tag, target, func } => {
                    if episode.is_none() {
                        self.activate(tag);
                        episode = Some(self.spawn(&thread, Some(sup), func, target, tag));
                    }
                }
                StepEvent::Kill { tag } => {
                    if episode.as_ref().is_some_and(|ep| ep.tag == tag) {
                        let ep = episode.take().expect("matched episode");
                        let wasted = ep.trace.len() as u64;
                        let s = self.loop_stats(tag);
                        s.kills += 1;
                        s.wasted_insts += wasted;
                        self.recycle_trace(ep.trace);
                    }
                    self.deactivate(tag);
                }
                StepEvent::Transfer { to, func } => {
                    let matches = episode.as_ref().is_some_and(|ep| {
                        ep.spawn_func == func && ep.spawn_target == to && ep.depth == thread.depth()
                    });
                    if matches {
                        let ep = episode.take().expect("matched episode");
                        let (next, finished) = self.validate(&mut thread, Some(sup), ep)?;
                        episode = next;
                        if let Some(value) = finished {
                            break value;
                        }
                    }
                }
                StepEvent::Finished { value } => break value,
            }
        };

        // Close any still-active loop attributions.
        let cycle = self.cycle;
        while let Some((_, entered, slot)) = self.active_tags.pop() {
            self.loops[slot as usize].1.loop_cycles += cycle - entered;
        }

        Ok(SimResult {
            ret,
            cycles: self.cycle,
            insts: self.insts,
            memory: self.memory,
            loops: self.loops.into_iter().collect(),
            cache_hit_rate: self.cache.hit_rate(),
            branch_miss_rate: self.predictor.miss_rate(),
        })
    }

    fn activate(&mut self, tag: u32) {
        if !self.active_tags.iter().any(|&(t, _, _)| t == tag) {
            self.loop_stats(tag);
            let slot = self
                .loops
                .iter()
                .position(|&(t, _)| t == tag)
                .expect("slot just touched") as u32;
            self.active_tags.push((tag, self.cycle, slot));
        }
    }

    pub(crate) fn deactivate(&mut self, tag: u32) {
        if let Some(pos) = self.active_tags.iter().position(|&(t, _, _)| t == tag) {
            let (_, entered, slot) = self.active_tags.remove(pos);
            self.loops[slot as usize].1.loop_cycles += self.cycle - entered;
        }
    }

    /// Adds a main-thread instruction to every active loop's accounting.
    #[inline]
    fn attribute_main(&mut self, rec: &ExecRecord) {
        for &(_, _, slot) in &self.active_tags {
            let s = &mut self.loops[slot as usize].1;
            s.main_insts += 1;
            s.seq_cycles += rec.latency;
        }
    }

    /// Adds validated (free or re-executed) work to active loops.
    #[inline]
    pub(crate) fn attribute_committed(&mut self, latency: u64) {
        for &(_, _, slot) in &self.active_tags {
            self.loops[slot as usize].1.seq_cycles += latency;
        }
    }

    /// Finds the latch predecessor of `header` in `func` (the in-loop
    /// predecessor), for speculative-thread phi startup. Pre-decoded as the
    /// module's per-block back-edge facts, so this is one array read.
    fn latch_of(&self, func: FuncId, header: BlockId) -> Option<BlockId> {
        self.decoded.func(func).facts.back_pred[header.index()]
    }

    /// Spawns an episode: runs the speculative core eagerly against the
    /// current memory snapshot, producing its trace on its own clock. Under
    /// the superblock tier (`sup` present) fused blocks run through
    /// [`Run::spawn_super`](crate::specexec), falling back to the dense
    /// stepper one instruction at a time anywhere the fused walk cannot go.
    fn spawn(
        &mut self,
        main: &Thread,
        sup: Option<&SuperblockModule>,
        func: FuncId,
        target: BlockId,
        tag: u32,
    ) -> Episode {
        self.cycle += self.config.fork_overhead;
        self.loop_stats(tag).forks += 1;

        let main_depth = main.depth();
        let (context, args) = main.context_ref();
        let latch = self.latch_of(func, target).unwrap_or(target);
        let mut spec = self
            .spec_thread
            .take()
            .unwrap_or_else(|| Thread::start(self.decoded, func, Vec::new()));
        spec.restart_spec(self.decoded, func, context, args, target, latch);
        spec.max_depth = self.config.max_depth;

        self.spec_buf.reset(self.config.spec_buffer_entries);
        let mut spec_cycle = self.cycle;
        let mut trace: Vec<ExecRecord> = self.trace_pool.pop().unwrap_or_default();
        let depth0 = spec.depth();

        loop {
            if trace.len() >= self.config.max_spec_ops {
                break;
            }
            if let Some(sm) = sup {
                if let SpecStop::Done = self.spawn_super(
                    &mut spec,
                    sm,
                    func,
                    target,
                    depth0,
                    tag,
                    &mut spec_cycle,
                    &mut trace,
                ) {
                    break;
                }
                if trace.len() >= self.config.max_spec_ops {
                    break;
                }
            }
            let step = {
                let mut view = MemView::Overlay {
                    base: &self.memory,
                    buf: &mut self.spec_buf,
                };
                let mut timing = Timing {
                    cycle: &mut spec_cycle,
                    cache: &mut self.cache,
                    predictor: &mut self.predictor,
                    mispredict_penalty: self.config.branch_mispredict_penalty,
                };
                spec.step(self.decoded, &mut view, Some(&mut timing))
            };
            match step {
                Ok((rec, event)) => match event {
                    StepEvent::Transfer { to, func: tf }
                        if tf == func && to == target && spec.depth() == depth0 =>
                    {
                        // Completed the next iteration.
                        trace.push(rec);
                        break;
                    }
                    StepEvent::Kill { tag: kt } if kt == tag => {
                        // Speculative thread left the loop; the kill itself is
                        // re-executed by the main thread.
                        break;
                    }
                    StepEvent::Fork { .. } => {
                        // Speculative forks are recorded (no-ops) and become
                        // effective at commit via the validation replay.
                        trace.push(rec);
                    }
                    StepEvent::Finished { .. } => {
                        // Returning out of the spawning frame ends speculation;
                        // the return is not part of the trace.
                        break;
                    }
                    _ => trace.push(rec),
                },
                // Any speculative fault (OOB from a wild speculative address,
                // buffer overflow) silently stops speculation.
                Err(_) => break,
            }
        }
        self.spec_thread = Some(spec);
        Episode {
            tag,
            spawn_func: func,
            spawn_target: target,
            depth: main_depth,
            trace,
        }
    }

    /// Validates an episode at the iteration boundary: steps the main thread
    /// through the trace, committing matches for free. Returns the next
    /// episode (if the speculative thread had passed the fork point) and the
    /// program's return value if the thread finished during validation.
    /// Under the superblock tier (`sup` present) fused blocks replay through
    /// [`Run::validate_super`](crate::specexec), falling back to the dense
    /// stepper one instruction at a time anywhere the fused walk cannot go.
    #[allow(clippy::type_complexity)]
    fn validate(
        &mut self,
        thread: &mut Thread,
        sup: Option<&SuperblockModule>,
        ep: Episode,
    ) -> Result<(Option<Episode>, Option<Option<u64>>), SimError> {
        self.loop_stats(ep.tag).commits += 1;
        let mut rp = ReplayState {
            k: 0,
            // Slot index of `ep.tag`, valid for the whole replay: the stats
            // vector only ever appends.
            ti: self
                .loops
                .iter()
                .position(|&(t, _)| t == ep.tag)
                .expect("slot just touched"),
            arrival: self.cycle,
            tag: ep.tag,
            pending_fork: false,
            killed: false,
            finished: None,
        };

        while rp.finished.is_none()
            && rp.k < ep.trace.len()
            && ep.trace[rp.k].cycle_end <= rp.arrival
        {
            if let Some(sm) = sup {
                if self.validate_super(thread, sm, &ep.trace, &mut rp)? {
                    continue;
                }
            }
            let step = {
                let mut view = MemView::Direct(&mut self.memory);
                thread.step(self.decoded, &mut view, None)?
            };
            let (rec, event) = step;
            self.replay_commit(
                &ep.trace,
                &mut rp,
                rec.func,
                rec.inst,
                rec.result,
                rec.store,
                rec.latency,
            );

            match event {
                StepEvent::Fork { tag, .. } if tag == ep.tag => rp.pending_fork = true,
                StepEvent::Kill { tag } => {
                    if tag == ep.tag {
                        rp.killed = true;
                    }
                    self.deactivate(tag);
                    if rp.killed {
                        self.loops[rp.ti].1.wasted_insts += (ep.trace.len() - rp.k) as u64;
                        rp.k = ep.trace.len();
                    }
                }
                StepEvent::Finished { value } => rp.finished = Some(value),
                _ => {}
            }
        }

        // Work the speculative core did beyond the catch-up point is wasted.
        if rp.k < ep.trace.len() {
            self.loops[rp.ti].1.wasted_insts += (ep.trace.len() - rp.k) as u64;
        }

        self.cycle += self.config.commit_overhead;
        self.recycle_trace(ep.trace);

        if let Some(value) = rp.finished {
            return Ok((None, Some(value)));
        }

        // Spawn the next episode only when the main thread is back in the
        // loop's own frame (validation may have stopped inside a callee, in
        // which case the context is not the loop's and the fork is dropped).
        if rp.pending_fork
            && !rp.killed
            && thread.depth() == ep.depth
            && thread.current_func() == ep.spawn_func
        {
            let ep2 = self.spawn(thread, sup, ep.spawn_func, ep.spawn_target, ep.tag);
            return Ok((Some(ep2), None));
        }
        Ok((None, None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Module {
        spt_frontend::compile(src).unwrap()
    }

    #[test]
    fn baseline_module_runs_and_matches_interpreter() {
        let src = "
            global a[64]: int;
            fn main(n: int) -> int {
                let s = 0;
                for (let i = 0; i < n; i = i + 1) {
                    a[i % 64] = i * i;
                    s = s + a[i % 64] % 7;
                }
                return s;
            }
        ";
        let module = compile(src);
        let sim = SptSimulator::new();
        let r = sim.run(&module, "main", &[100]).unwrap();
        let expected = spt_profile::Interp::new(&module)
            .run(
                "main",
                &[spt_profile::Val::from_i64(100)],
                &mut spt_profile::NoProfiler,
            )
            .unwrap();
        assert_eq!(r.ret.unwrap(), expected.ret.unwrap().0);
        assert!(r.cycles > 0);
        assert!(r.ipc() > 0.0);
        assert_eq!(r.memory, expected.memory);
    }

    #[test]
    fn fuel_guard() {
        let src = "fn main() -> int { let x = 1; while (x > 0) { x = x + 1; } return x; }";
        let module = compile(src);
        let sim = SptSimulator::with_config(MachineConfig {
            fuel: 5000,
            ..MachineConfig::default()
        });
        assert_eq!(
            sim.run(&module, "main", &[]).unwrap_err(),
            SimError::OutOfFuel
        );
    }

    #[test]
    fn unknown_entry() {
        let module = compile("fn main() -> int { return 1; }");
        let sim = SptSimulator::new();
        assert!(matches!(
            sim.run(&module, "nope", &[]),
            Err(SimError::NoSuchFunction(_))
        ));
    }

    /// Hand-transforms a loop with an *empty* partition (only the forced
    /// header-test closure moves): the carried accumulator stays post-fork,
    /// so every speculative iteration misspeculates its accumulator chain —
    /// and validation must both catch it and keep results exact.
    fn force_transform(src: &str, fname: &str) -> Module {
        use spt_cost::dep_graph::{DepGraph, DepGraphConfig, NodeClass, Profiles};
        use spt_transform::{emit_spt_loop, SptLoopSpec};
        let mut module = spt_frontend::compile(src).unwrap();
        let fid = module.func_by_name(fname).unwrap();
        // Minimal pre-fork set: the header-test closure (as the pipeline
        // forces) and nothing else, so every other carried value stays
        // speculative.
        let graph = DepGraph::build(
            &module,
            fid,
            spt_ir::loops::LoopId::new(0),
            Profiles::default(),
            &DepGraphConfig::default(),
        );
        let func = module.func(fid);
        let header = {
            let cfg = spt_ir::Cfg::compute(func);
            let dom = spt_ir::DomTree::compute(&cfg);
            let forest = spt_ir::LoopForest::compute(func, &cfg, &dom);
            forest.get(spt_ir::loops::LoopId::new(0)).header
        };
        let term = func.terminator(header).unwrap();
        let mut move_insts = std::collections::HashSet::new();
        let mut replicate_insts = std::collections::HashSet::new();
        if let Some(&tnode) = graph.index.get(&term) {
            for n in graph.closure(&[tnode]) {
                let inst = graph.nodes[n];
                if graph.class[n] == NodeClass::Branch {
                    replicate_insts.insert(inst);
                } else {
                    move_insts.insert(inst);
                }
            }
        }
        let spec = SptLoopSpec {
            loop_id: spt_ir::loops::LoopId::new(0),
            move_insts,
            replicate_insts,
            loop_tag: 9,
        };
        emit_spt_loop(module.func_mut(fid), &spec).expect("emit");
        spt_ir::passes::cleanup(module.func_mut(fid));
        spt_ir::verify::verify_module(&module).expect("verifies");
        module
    }

    #[test]
    fn forced_misspeculation_is_detected_and_repaired() {
        // `s` is carried and stays post-fork: the speculative thread always
        // reads a stale `s`, so its accumulator chain re-executes. The `i`
        // chain is carried too but the header-test closure moves it.
        let src = "
            global sink[64]: int;
            fn f(n: int) -> int {
                let i = 0;
                let s = 0;
                while (i < n) {
                    let a = (i * 17 + 3) % 97;
                    let b = (a * a + i) % 211;
                    sink[i % 64] = b;
                    s = s + b % 13;
                    i = i + 1;
                }
                return s;
            }
        ";
        let module = force_transform(src, "f");
        let sim = SptSimulator::new();
        let r = sim.run(&module, "f", &[300]).unwrap();
        // Exactness first.
        let expected = spt_profile::Interp::new(&module)
            .run(
                "f",
                &[spt_profile::Val::from_i64(300)],
                &mut spt_profile::NoProfiler,
            )
            .unwrap()
            .ret
            .unwrap()
            .0;
        assert_eq!(r.ret.unwrap(), expected);
        let stats = r.loops.get(&9).expect("loop stats");
        assert!(stats.commits > 100, "{stats:?}");
        assert!(
            stats.reexec_insts > 0,
            "stale accumulator must be re-executed: {stats:?}"
        );
        // With only the exit test pre-forked, both the accumulator and the
        // induction chain are stale in the speculative thread, so most
        // instructions re-execute — but the header phi evaluations and the
        // iteration-independent fragments still commit free.
        assert!(stats.free_insts > 0, "{stats:?}");
        assert!(
            stats.misspec_ratio() > 0.3 && stats.misspec_ratio() < 0.95,
            "mostly misspeculating: {stats:?}"
        );
        assert_eq!(stats.forks, stats.commits, "every episode validates");
    }

    #[test]
    fn tiny_spec_buffer_limits_but_never_breaks() {
        let src = "
            global a[512]: int;
            fn f(n: int) -> int {
                let i = 0;
                let s = 0;
                while (i < n) {
                    a[i % 512] = i * 3;
                    a[(i + 7) % 512] = i * 5;
                    a[(i + 13) % 512] = i * 7;
                    s = s + a[(i + 1) % 512] % 11;
                    i = i + 1;
                }
                return s;
            }
        ";
        let module = force_transform(src, "f");
        // Overflow on the second store.
        let sim = SptSimulator::with_config(MachineConfig {
            spec_buffer_entries: 1,
            ..MachineConfig::default()
        });
        let r = sim.run(&module, "f", &[200]).unwrap();
        let expected = spt_profile::Interp::new(&module)
            .run(
                "f",
                &[spt_profile::Val::from_i64(200)],
                &mut spt_profile::NoProfiler,
            )
            .unwrap()
            .ret
            .unwrap()
            .0;
        assert_eq!(
            r.ret.unwrap(),
            expected,
            "overflow must only stop, not corrupt"
        );
    }

    #[test]
    fn spec_ops_cap_shortens_traces() {
        let src = "
            global a[256]: int;
            fn f(n: int) -> int {
                let i = 0;
                let s = 0;
                while (i < n) {
                    let x = (i * 31 + 7) % 256;
                    a[x] = x;
                    s = s + a[(x + 3) % 256] % 7 + (x * x) % 13;
                    i = i + 1;
                }
                return s;
            }
        ";
        let module = force_transform(src, "f");
        let run_with_cap = |cap: usize| {
            SptSimulator::with_config(MachineConfig {
                max_spec_ops: cap,
                ..MachineConfig::default()
            })
            .run(&module, "f", &[300])
            .unwrap()
        };
        let tight = run_with_cap(4);
        let loose = run_with_cap(4000);
        assert_eq!(tight.ret, loose.ret);
        let tight_free: u64 = tight.loops.values().map(|s| s.free_insts).sum();
        let loose_free: u64 = loose.loops.values().map(|s| s.free_insts).sum();
        assert!(
            loose_free > tight_free,
            "more headroom commits more: {tight_free} vs {loose_free}"
        );
        assert!(loose.cycles <= tight.cycles, "headroom never slows the run");
    }

    #[test]
    fn control_divergence_discards_speculative_tail() {
        // The branch direction depends on the carried `s` (post-fork), so
        // the speculative thread frequently guesses the wrong arm; the
        // divergence must be caught and the tail discarded.
        let src = "
            global a[128]: int;
            fn f(n: int) -> int {
                let i = 0;
                let s = 0;
                while (i < n) {
                    let x = (i * 13 + 5) % 128;
                    if (s % 3 == 0) {
                        s = s + a[x] % 7 + x;
                    } else {
                        s = s + 1;
                    }
                    a[(x + 1) % 128] = s % 251;
                    i = i + 1;
                }
                return s;
            }
        ";
        let module = force_transform(src, "f");
        let sim = SptSimulator::new();
        let r = sim.run(&module, "f", &[400]).unwrap();
        let expected = spt_profile::Interp::new(&module)
            .run(
                "f",
                &[spt_profile::Val::from_i64(400)],
                &mut spt_profile::NoProfiler,
            )
            .unwrap()
            .ret
            .unwrap()
            .0;
        assert_eq!(r.ret.unwrap(), expected);
        let stats = r.loops.get(&9).expect("stats");
        assert!(
            stats.wasted_insts > 0,
            "wrong-arm speculation must be discarded: {stats:?}"
        );
    }
}

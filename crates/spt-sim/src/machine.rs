//! Machine configuration: the paper's SPT hardware parameters.

use crate::cache::CacheConfig;

/// Parameters of the simulated two-core SPT machine.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineConfig {
    /// Cycles to spawn a speculative thread (paper: 6).
    pub fork_overhead: u64,
    /// Cycles to commit a speculative thread's results (paper: 5).
    pub commit_overhead: u64,
    /// Branch misprediction penalty (paper: 5).
    pub branch_mispredict_penalty: u64,
    /// Maximum operations a speculative thread may run ahead (hardware
    /// buffering limit; "hardware resources can only support speculative
    /// execution of limited size", §6.1).
    pub max_spec_ops: usize,
    /// Maximum distinct cells in the speculative store buffer.
    pub spec_buffer_entries: usize,
    /// Cache hierarchy parameters.
    pub cache: CacheConfig,
    /// Abort runs longer than this many retired instructions.
    pub fuel: u64,
    /// Maximum call depth.
    pub max_depth: usize,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            fork_overhead: 6,
            commit_overhead: 5,
            branch_mispredict_penalty: 5,
            max_spec_ops: 4000,
            spec_buffer_entries: 512,
            cache: CacheConfig::default(),
            fuel: 500_000_000,
            max_depth: 256,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_overheads_are_defaults() {
        let c = MachineConfig::default();
        assert_eq!(c.fork_overhead, 6);
        assert_eq!(c.commit_overhead, 5);
        assert_eq!(c.branch_mispredict_penalty, 5);
    }
}

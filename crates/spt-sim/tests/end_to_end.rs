//! End-to-end: pipeline-transformed programs must (a) compute exactly the
//! baseline results under simulation and (b) run faster when the cost model
//! selected loops.

use spt_core::{compile_and_transform, CompilerConfig, ProfilingInput};
use spt_sim::SptSimulator;

const KERNEL: &str = "
    global data[8192]: int;
    global out[8192]: int;
    fn seed(n: int) {
        let v = 12345;
        for (let i = 0; i < n; i = i + 1) {
            v = (v * 1103515245 + 12345) % 2147483648;
            data[i] = v % 1000;
        }
    }
    fn kernel(n: int) -> int {
        let s = 0;
        for (let i = 0; i < n; i = i + 1) {
            let x = data[i];
            let t = (x * x) % 97 + (x / 3) * 2 - (x % 7);
            let u = (t * 13 + 7) % 1000;
            let w = (u * u + x) % 4096;
            out[i] = w + t - u + x * 2 + (w % 5) * (t % 11);
            s = s + w % 17 + t % 19;
        }
        return s;
    }
    fn main(n: int) -> int {
        seed(n);
        return kernel(n);
    }
";

#[test]
fn spt_execution_matches_baseline_results() {
    let input = ProfilingInput::new("main", [800]);
    let result = compile_and_transform(KERNEL, &input, &CompilerConfig::best()).unwrap();
    assert!(!result.report.selected.is_empty());

    let sim = SptSimulator::new();
    for n in [0i64, 17, 500, 2000] {
        let base = sim.run(&result.baseline, "main", &[n]).unwrap();
        let spt = sim.run(&result.module, "main", &[n]).unwrap();
        assert_eq!(spt.ret, base.ret, "n={n}");
        // The SPT module may have extra predictor cells; compare the shared
        // prefix (the original globals).
        let shared = base.memory.len();
        assert_eq!(
            &spt.memory[..shared.min(spt.memory.len())],
            &base.memory[..shared]
        );
    }
}

#[test]
fn selected_loops_speed_up() {
    let input = ProfilingInput::new("main", [800]);
    let result = compile_and_transform(KERNEL, &input, &CompilerConfig::best()).unwrap();
    let sim = SptSimulator::new();
    let n = 4000i64;
    let base = sim.run(&result.baseline, "main", &[n]).unwrap();
    let spt = sim.run(&result.module, "main", &[n]).unwrap();
    let speedup = base.cycles as f64 / spt.cycles as f64;
    // Per-loop stats exist for every selected loop that ran.
    let mut any_commits = false;
    for sel in &result.report.selected {
        if let Some(stats) = spt.loops.get(&sel.loop_tag) {
            if stats.commits > 0 {
                any_commits = true;
                assert!(
                    stats.misspec_ratio() < 0.8,
                    "selected loop should mostly speculate correctly: {:?}",
                    stats
                );
            }
        }
    }
    assert!(
        any_commits,
        "speculation must actually happen: {:?}",
        spt.loops
    );
    assert!(
        speedup > 1.0,
        "SPT must win on this kernel: base={} spt={} speedup={speedup:.3}",
        base.cycles,
        spt.cycles
    );
}

#[test]
fn hostile_loop_is_not_slowed_down_much() {
    // A true pointer-chase recurrence: the compiler should refuse to
    // speculate, so SPT cycles stay close to baseline.
    let src = "
        global next[1024]: int;
        fn main(n: int) -> int {
            for (let i = 0; i < 1024; i = i + 1) { next[i] = (i * 7 + 3) % 1024; }
            let cur = 0;
            let s = 0;
            for (let k = 0; k < n; k = k + 1) {
                cur = next[cur];
                next[cur] = (next[cur] + k) % 1024;
                s = s + cur % 13 + (cur * cur) % 7 + (s % 11) * 3 + cur / 5 + (s / 7) % 23;
            }
            return s;
        }
    ";
    let input = ProfilingInput::new("main", [600]);
    let result = compile_and_transform(src, &input, &CompilerConfig::best()).unwrap();
    let sim = SptSimulator::new();
    let base = sim.run(&result.baseline, "main", &[3000]).unwrap();
    let spt = sim.run(&result.module, "main", &[3000]).unwrap();
    assert_eq!(spt.ret, base.ret);
    let ratio = spt.cycles as f64 / base.cycles as f64;
    assert!(
        ratio < 1.15,
        "cost-driven selection must avoid big slowdowns: ratio={ratio:.3}"
    );
}

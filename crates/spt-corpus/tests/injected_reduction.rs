//! End-to-end triage drill (feature `failpoints`): deliberately inject a
//! failure into the pipeline, watch the oracle battery catch it, and
//! assert the delta-debugging reducer shrinks the failing module to a
//! minimal repro that round-trips through the on-disk regression format.

#![cfg(feature = "failpoints")]

use spt_core::failpoint::{self, Action};
use spt_corpus::reduce::{load_repros, reduce_and_persist};
use spt_corpus::{
    bucket_of, check_program, generate, with_quiet_panic_hook, CheckOptions, ProgramUnderTest,
};

/// Forces every registered site over a couple of corpus seeds: no escaped
/// panic, contained sites degrade with baseline semantics, error-channel
/// sites fail cleanly or degrade.
#[test]
fn failpoint_sweep_contract_holds_on_generated_programs() {
    with_quiet_panic_hook(|| {
        let outcome = spt_corpus::sweep_failpoints(55, 2, &CheckOptions::default());
        assert_eq!(outcome.runs, 2 * failpoint::sites().len());
        assert!(outcome.is_green(), "{:#?}", outcome.failures);
    });
}

#[test]
fn injected_failure_is_caught_reduced_and_persisted() {
    with_quiet_panic_hook(|| {
        // The failpoint registry is process-global: hold the same lock the
        // sweep holds so the two tests cannot clear each other's rules.
        let _serial = spt_corpus::oracle::global_state_lock();
        let _scope = failpoint::scoped();
        failpoint::set(
            "pipeline::verify",
            Action::error("deliberate corpus injection"),
        );

        // Lean options: the injected failure fires in the base compile, so
        // the reducer's probes need no cross-compile oracles.
        let opts = CheckOptions {
            check_threads: false,
            check_tiers: false,
            cache_root: None,
            ..CheckOptions::default()
        };

        let seed = 424_242;
        let p = generate(seed);
        let under = ProgramUnderTest::from(&p);
        let failures = check_program(&under, &opts);
        assert!(
            !failures.is_empty(),
            "injected failpoint was not caught by the battery"
        );
        let target = bucket_of(&failures[0]);
        assert!(
            target.signature.contains("failpoint"),
            "unexpected bucket: {target}"
        );

        let dir = std::env::temp_dir().join(format!("spt-corpus-injected-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (path, repro) =
            reduce_and_persist(seed, &under, failures[0].kind, &target, &opts, &dir)
                .expect("persist repro");

        // The acceptance bar: a minimal repro of at most 25 minic lines.
        let lines = repro.source.lines().count();
        assert!(
            lines <= 25,
            "reduction stopped at {lines} lines:\n{}",
            repro.source
        );

        // The minimized program still reproduces the bucket.
        let replayed = check_program(&repro.under_test("replay"), &opts);
        assert!(
            replayed.iter().any(|f| bucket_of(f) == target),
            "minimized repro no longer reproduces {target}"
        );

        // And it round-trips through the regression store.
        let loaded = load_repros(&dir);
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].0, path);
        assert_eq!(loaded[0].1.source, repro.source);
        let _ = std::fs::remove_dir_all(&dir);
    });
}

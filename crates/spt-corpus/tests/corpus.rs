//! Corpus integration tests: a green slice end-to-end, generator
//! determinism (satellite: same seed → byte-identical source and
//! byte-identical reports across worker counts), and frontend mutation
//! fuzzing (satellite: no panic on corrupted input).

use spt_corpus::{
    check_program, generate, mutate, run_corpus, CheckOptions, CorpusConfig, ProgramUnderTest,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A corpus slice with every oracle enabled must be green: the five
/// oracles hold on each module.
#[test]
fn corpus_slice_is_green() {
    let cfg = CorpusConfig {
        start_seed: 100,
        count: 12,
        ..CorpusConfig::default()
    };
    let outcome = run_corpus(&cfg);
    assert_eq!(outcome.checked, 12);
    assert!(
        outcome.is_green(),
        "corpus failures: {:#?}",
        outcome.failing
    );
}

/// Same seed → byte-identical source, across repeated calls and unrelated
/// generator invocations in between.
#[test]
fn generator_is_deterministic() {
    let first: Vec<String> = (0..20).map(|s| generate(s).source).collect();
    let _noise = generate(987_654_321);
    let second: Vec<String> = (0..20).map(|s| generate(s).source).collect();
    assert_eq!(first, second);
}

/// Same seed → byte-identical `CompilationReport` whether the pipeline
/// runs sequentially or sharded (the worker-count override is process
/// global; `check_program` serializes it internally and compares the
/// reports from 1 and 4 workers against the ambient compile).
#[test]
fn reports_are_thread_invariant() {
    for seed in [7u64, 8, 9] {
        let p = generate(seed);
        let opts = CheckOptions {
            check_tiers: false,
            cache_root: None,
            ..CheckOptions::default()
        };
        let failures = check_program(&ProgramUnderTest::from(&p), &opts);
        assert!(failures.is_empty(), "seed {seed}: {failures:#?}");
    }
}

/// Token-corrupted programs must never panic the frontend: every mutant is
/// answered with `Ok` or a clean `CompileError`.
#[test]
fn mutation_fuzz_never_panics_the_frontend() {
    let mut panics = Vec::new();
    for seed in 0..40u64 {
        let valid = generate(seed);
        for round in 1..6usize {
            let mutant = mutate(&valid.source, seed * 31 + round as u64, round * 2);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let _ = spt_frontend::compile(&mutant);
            }));
            if outcome.is_err() {
                panics.push((seed, round, mutant));
            }
        }
    }
    assert!(
        panics.is_empty(),
        "frontend panicked on {} mutants; first: seed {} round {}:\n{}",
        panics.len(),
        panics[0].0,
        panics[0].1,
        panics[0].2
    );
}

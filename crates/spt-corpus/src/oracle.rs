//! The five differential oracles every corpus module must satisfy.
//!
//! For one module the battery checks, in order:
//!
//! 1. **No escaped panic** — `compile_and_transform` and every execution
//!    run is wrapped in `catch_unwind`; a payload reaching the corpus is a
//!    broken fault-isolation boundary.
//! 2. **No clean failure** — the generator only emits valid programs, so a
//!    `PipelineError` on a generated module is a compiler bug too (mutated
//!    or hand-written inputs go through the frontend fuzz path instead).
//! 3. **Semantics** — the transformed module must compute exactly the
//!    baseline's return value and memory image at every check argument
//!    (the transformed image may *append* SVP predictor globals; the
//!    baseline prefix must match bit-for-bit).
//! 4. **Tier identity** — the transformed module's execution is
//!    bit-identical across the reference, dense, and superblock tiers.
//! 5. **Report identity** — the `CompilationReport` (via its `Debug`
//!    rendering, diagnostics included) is byte-identical across
//!    `SPT_THREADS=1` vs. multi-threaded compiles, and across
//!    cache-off/cold-cache/warm-cache compiles.
//!
//! The exec-tier and worker-count knobs are process-global, so the battery
//! serializes those two sub-oracles through [`global_state_lock`]; racing
//! *observers* in other corpus workers are safe precisely because the
//! properties under test promise the globals do not change results.

use crate::gen::GeneratedProgram;
use spt_core::diag::panic_message;
use spt_core::parallel::set_thread_count_override;
use spt_core::pipeline::{transform_module_timed, PipelineError, ProfilingInput, StageTimings};
use spt_core::{CompilationReport, CompilerConfig};
use spt_ir::{set_exec_tier_override, ExecTier, Module};
use spt_profile::{Interp, NoProfiler, Val};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Serializes every mutation of process-global execution state (exec-tier
/// override, worker-count override, failpoint registry) across corpus
/// workers and the sweep.
pub fn global_state_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        // Holders only toggle overrides that their guards restore; a
        // poisoned lock carries no broken invariant.
        .unwrap_or_else(PoisonError::into_inner)
}

/// Which oracle a failure violated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OracleKind {
    /// A panic escaped the pipeline or an execution engine.
    EscapedPanic,
    /// A clean `PipelineError` on a generator-produced (valid) module.
    CleanFailure,
    /// Transformed result diverged from the baseline.
    Semantics,
    /// Execution diverged across exec tiers.
    TierDivergence,
    /// Report diverged across cache-off / cold / warm compiles.
    CacheDivergence,
    /// Report diverged across worker counts.
    ThreadDivergence,
}

impl OracleKind {
    /// Stable kebab-case label (bucket keys, repro file names).
    pub fn label(self) -> &'static str {
        match self {
            OracleKind::EscapedPanic => "escaped-panic",
            OracleKind::CleanFailure => "clean-failure",
            OracleKind::Semantics => "semantics",
            OracleKind::TierDivergence => "tier-divergence",
            OracleKind::CacheDivergence => "cache-divergence",
            OracleKind::ThreadDivergence => "thread-divergence",
        }
    }

    /// The inverse of [`label`](OracleKind::label), for repro headers.
    pub fn from_label(s: &str) -> Option<OracleKind> {
        [
            OracleKind::EscapedPanic,
            OracleKind::CleanFailure,
            OracleKind::Semantics,
            OracleKind::TierDivergence,
            OracleKind::CacheDivergence,
            OracleKind::ThreadDivergence,
        ]
        .into_iter()
        .find(|k| k.label() == s)
    }
}

/// One oracle violation.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Which oracle.
    pub kind: OracleKind,
    /// Human-readable evidence (panic message, diverging values, …).
    pub detail: String,
}

/// A module under test: source plus how to run it. Built from a
/// [`GeneratedProgram`] for corpus seeds, or directly by the reducer and
/// the regression replayer.
#[derive(Clone, Debug)]
pub struct ProgramUnderTest {
    /// `minic` source.
    pub source: String,
    /// Entry function.
    pub entry: String,
    /// Training argument for the profiling run.
    pub train_arg: i64,
    /// Arguments the semantics oracle replays.
    pub args: Vec<i64>,
    /// Unique tag naming per-module scratch (cache directories).
    pub tag: String,
}

impl From<&GeneratedProgram> for ProgramUnderTest {
    fn from(p: &GeneratedProgram) -> Self {
        ProgramUnderTest {
            source: p.source.clone(),
            entry: p.entry.to_string(),
            train_arg: p.train_arg,
            args: p.check_args().to_vec(),
            tag: format!("seed-{}", p.seed),
        }
    }
}

/// Which oracles to run and with what pipeline configuration.
#[derive(Clone, Debug)]
pub struct CheckOptions {
    /// Base pipeline configuration (trace settings are overridden per
    /// sub-oracle).
    pub config: CompilerConfig,
    /// Run the `SPT_THREADS`-invariance oracle (takes the global lock).
    pub check_threads: bool,
    /// Run the three-tier execution oracle (takes the global lock).
    pub check_tiers: bool,
    /// Run the cache-identity oracle, with per-module cache directories
    /// created under this root. `None` skips the oracle.
    pub cache_root: Option<PathBuf>,
}

impl Default for CheckOptions {
    fn default() -> Self {
        let mut config = CompilerConfig::best();
        // Corpus modules are small; a tighter fuel budget turns a
        // runaway-interpretation bug into a fast clean failure instead of
        // a stuck corpus.
        config.budget.interp_fuel = 50_000_000;
        CheckOptions {
            config,
            check_threads: true,
            check_tiers: true,
            cache_root: None,
        }
    }
}

/// A full compile with panics contained: `Err(msg)` is an escaped panic,
/// `Ok(Err(_))` a clean pipeline error.
type CompileOutcome = Result<Result<Compiled, PipelineError>, String>;

/// The pieces of one successful compile the oracles consume.
struct Compiled {
    baseline: Module,
    module: Module,
    report: CompilationReport,
    timings: StageTimings,
}

fn compile(p: &ProgramUnderTest, config: &CompilerConfig) -> CompileOutcome {
    let input = ProfilingInput::new(p.entry.clone(), [p.train_arg]);
    catch_unwind(AssertUnwindSafe(|| {
        let baseline = spt_frontend::compile(&p.source)?;
        let mut module = baseline.clone();
        let (report, timings) = transform_module_timed(&mut module, &input, config)?;
        Ok(Compiled {
            baseline,
            module,
            report,
            timings,
        })
    }))
    .map_err(|payload| panic_message(payload.as_ref()))
}

/// Runs `entry(arg)` on `module`, containing panics. Returns the raw
/// return bits and the final memory image, so float divergence cannot hide
/// behind `==`.
fn execute(module: &Module, entry: &str, arg: i64) -> Result<(Option<u64>, Vec<u64>), String> {
    catch_unwind(AssertUnwindSafe(|| {
        let mut interp = Interp::new(module);
        interp.fuel = 200_000_000;
        interp
            .run(entry, &[Val::from_i64(arg)], &mut NoProfiler)
            .map(|r| (r.ret.map(|v| v.0), r.memory))
            .map_err(|e| format!("execution failed: {e}"))
    }))
    .map_err(|payload| {
        format!(
            "panic during execution: {}",
            panic_message(payload.as_ref())
        )
    })?
}

/// Restores the exec-tier override on drop.
struct TierRestore;
impl Drop for TierRestore {
    fn drop(&mut self) {
        set_exec_tier_override(None);
    }
}

/// Restores the worker-count override on drop.
struct ThreadRestore;
impl Drop for ThreadRestore {
    fn drop(&mut self) {
        set_thread_count_override(None);
    }
}

/// Runs the full oracle battery on one module. An empty vector means every
/// requested oracle held.
pub fn check_program(p: &ProgramUnderTest, opts: &CheckOptions) -> Vec<Failure> {
    let mut failures = Vec::new();

    // Oracles 1+2: the base compile itself.
    let base = match compile(p, &opts.config) {
        Err(panic) => {
            failures.push(Failure {
                kind: OracleKind::EscapedPanic,
                detail: format!("compile panicked: {panic}"),
            });
            return failures;
        }
        Ok(Err(e)) => {
            failures.push(Failure {
                kind: OracleKind::CleanFailure,
                detail: e.to_string(),
            });
            return failures;
        }
        Ok(Ok(c)) => c,
    };
    let base_report = format!("{:?}", base.report);

    // Oracle 3: baseline-vs-transformed semantics at every check argument.
    let is_panic = |r: &Result<(Option<u64>, Vec<u64>), String>| matches!(r, Err(m) if m.starts_with("panic during execution"));
    for &arg in &p.args {
        let b = execute(&base.baseline, &p.entry, arg);
        let t = execute(&base.module, &p.entry, arg);
        match (&b, &t) {
            (Ok((br, bm)), Ok((tr, tm))) => {
                if br != tr {
                    failures.push(Failure {
                        kind: OracleKind::Semantics,
                        detail: format!("return diverged at arg {arg}: {br:?} vs {tr:?}"),
                    });
                } else if tm.len() < bm.len() || tm[..bm.len()] != bm[..] {
                    failures.push(Failure {
                        kind: OracleKind::Semantics,
                        detail: format!("memory image diverged at arg {arg}"),
                    });
                }
            }
            _ if is_panic(&b) || is_panic(&t) => failures.push(Failure {
                kind: OracleKind::EscapedPanic,
                detail: format!("at arg {arg}: baseline {b:?}, transformed {t:?}"),
            }),
            // Matching clean failures (e.g. fuel exhaustion on both sides)
            // are consistent semantics, not a divergence.
            (Err(eb), Err(et)) if eb == et => {}
            _ => failures.push(Failure {
                kind: OracleKind::Semantics,
                detail: format!(
                    "execution outcome diverged at arg {arg}: baseline {b:?} vs transformed {t:?}"
                ),
            }),
        }
    }

    // Oracle 4: three-way exec-tier bit-identity on the transformed module.
    if opts.check_tiers {
        let _guard = global_state_lock();
        let _restore = TierRestore;
        let mut runs = Vec::new();
        for tier in [ExecTier::Reference, ExecTier::Dense, ExecTier::Super] {
            set_exec_tier_override(Some(tier));
            runs.push((tier, execute(&base.module, &p.entry, p.train_arg)));
        }
        set_exec_tier_override(None);
        let (dense_tier, dense) = &runs[1];
        debug_assert_eq!(*dense_tier, ExecTier::Dense);
        for (tier, run) in &runs {
            if run != dense {
                failures.push(Failure {
                    kind: OracleKind::TierDivergence,
                    detail: format!("{tier:?} diverged from Dense at arg {}", p.train_arg),
                });
            }
        }
    }

    // Oracle 5a: SPT_THREADS-invariant reports.
    if opts.check_threads {
        let _guard = global_state_lock();
        let _restore = ThreadRestore;
        let mut reports = Vec::new();
        for threads in [1usize, 4] {
            set_thread_count_override(Some(threads));
            reports.push((threads, compile(p, &opts.config)));
        }
        set_thread_count_override(None);
        for (threads, outcome) in reports {
            match outcome {
                Ok(Ok(c)) => {
                    let r = format!("{:?}", c.report);
                    if r != base_report {
                        failures.push(Failure {
                            kind: OracleKind::ThreadDivergence,
                            detail: format!("report at {threads} worker(s) differs from base"),
                        });
                    }
                }
                Ok(Err(e)) => failures.push(Failure {
                    kind: OracleKind::ThreadDivergence,
                    detail: format!(
                        "compile failed at {threads} worker(s) but succeeded at base: {e}"
                    ),
                }),
                Err(panic) => failures.push(Failure {
                    kind: OracleKind::EscapedPanic,
                    detail: format!("compile panicked at {threads} worker(s): {panic}"),
                }),
            }
        }
    }

    // Oracle 5b: cache-off / cold / warm report identity.
    if let Some(root) = &opts.cache_root {
        let dir = root.join(&p.tag);
        let _ = std::fs::remove_dir_all(&dir);
        let mut traced = opts.config.clone();
        traced.trace.enabled = true;
        traced.trace.cache_dir = Some(dir.clone());
        for (mode, expect_hits) in [("cold", false), ("warm", true)] {
            match compile(p, &traced) {
                Ok(Ok(c)) => {
                    let r = format!("{:?}", c.report);
                    if r != base_report {
                        failures.push(Failure {
                            kind: OracleKind::CacheDivergence,
                            detail: format!("{mode}-cache report differs from cache-off"),
                        });
                    }
                    if expect_hits
                        && c.timings.trace_cache_hits == 0
                        && c.timings.trace_cache_misses > 0
                    {
                        failures.push(Failure {
                            kind: OracleKind::CacheDivergence,
                            detail: "warm compile re-captured every trace (cache never hit)"
                                .to_string(),
                        });
                    }
                }
                Ok(Err(e)) => failures.push(Failure {
                    kind: OracleKind::CacheDivergence,
                    detail: format!("{mode}-cache compile failed but cache-off succeeded: {e}"),
                }),
                Err(panic) => failures.push(Failure {
                    kind: OracleKind::EscapedPanic,
                    detail: format!("{mode}-cache compile panicked: {panic}"),
                }),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    failures
}

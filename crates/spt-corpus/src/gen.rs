//! Seeded `minic` program generator.
//!
//! [`generate`] derives a complete, *valid* `minic` module from a single
//! `u64` seed — deterministically, so any corpus failure is reproducible
//! from its seed alone. The generator aims for grammar and pipeline-shape
//! coverage rather than volume: every program combines a data-seeding
//! function, optional helper functions (cross-function calls inside hot
//! loops), and one to three kernels drawn from the shapes the cost model
//! has to price:
//!
//! * **reductions** — accumulator chains over counted loops, with guarded
//!   stores (`if (…) { b[…] = …; }`) as violation candidates;
//! * **loop nests** to depth 3 with small inner trip counts;
//! * **`while` loops** with data-dependent `continue`/`break` paths (the
//!   *anticipated* configuration's unroll target);
//! * **irregular chases** — `j = a[j % N] % N` pointer-style indirection
//!   that defeats static disambiguation;
//! * **float kernels** using `fabs`/`sqrt` and `int()`/`float()`
//!   conversions;
//! * **division/remainder by possibly-zero subexpressions** (the IR defines
//!   `x/0 == x%0 == 0`, so these are semantically safe but exercise the
//!   latency-heavy cost-model paths).
//!
//! Every array index is written `[<nonnegative expr> % N]`, so generated
//! programs never fault: any pipeline error on a generated program is a
//! compiler bug by construction, which is what lets the corpus runner
//! treat *clean* failures as oracle violations too.
//!
//! [`mutate`] is the adversarial counterpart: token-level corruption of a
//! valid program (drop/duplicate/swap/replace tokens, plus raw character
//! splices) for hardening the frontend, which must answer every mutant
//! with `Ok` or a clean `CompileError` — never a panic.

use crate::rng::SplitMix64;
use std::fmt::Write as _;

/// One generated corpus module plus everything needed to run it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GeneratedProgram {
    /// The seed it was derived from.
    pub seed: u64,
    /// Complete `minic` source text.
    pub source: String,
    /// Entry function (always `main`).
    pub entry: &'static str,
    /// The profiling (training) argument.
    pub train_arg: i64,
}

impl GeneratedProgram {
    /// The argument set differential oracles replay: empty, small, and the
    /// training input itself.
    pub fn check_args(&self) -> [i64; 3] {
        [0, 17, self.train_arg]
    }
}

/// Number of accumulator locals every kernel declares.
const ACCS: usize = 4;

/// Derives a valid `minic` program from `seed`. Identical seeds yield
/// byte-identical source on every call, process, and platform.
pub fn generate(seed: u64) -> GeneratedProgram {
    let mut r = SplitMix64::new(seed);
    let n_elems = *r.pick(&[64i64, 128, 256]);
    let with_float = r.chance(1, 2);
    let n_helpers = r.below(3) as usize;
    let n_kernels = 1 + r.below(2) as usize;
    let train_arg = r.range(80, 160);

    let mut src = String::new();
    let _ = writeln!(src, "// spt-corpus generated program, seed {seed}");
    let _ = writeln!(src, "global a[{n_elems}]: int;");
    let _ = writeln!(src, "global b[{n_elems}]: int;");
    if with_float {
        let _ = writeln!(src, "global w[{n_elems}]: float;");
    }
    let _ = writeln!(src, "global g0: int = {};", r.range(1, 9));
    src.push('\n');

    // Data seeding: affine-mod patterns keep every cell non-negative, the
    // invariant the chase shape's index arithmetic relies on.
    let (ma, ba, pa) = (r.range(7, 37), r.range(1, 11), r.range(53, 101));
    let (mb, bb, pb) = (r.range(5, 29), r.range(1, 13), r.range(47, 97));
    let _ = writeln!(src, "fn seed_data() {{");
    let _ = writeln!(src, "  for (let k = 0; k < {n_elems}; k = k + 1) {{");
    let _ = writeln!(src, "    a[k] = (k * {ma} + {ba}) % {pa};");
    let _ = writeln!(src, "    b[k] = (k * {mb} + {bb}) % {pb};");
    if with_float {
        let _ = writeln!(src, "    w[k] = float((k * 13 + 5) % 31) * 0.125;");
    }
    let _ = writeln!(src, "  }}");
    let _ = writeln!(src, "}}\n");

    for h in 0..n_helpers {
        render_helper(&mut src, &mut r, h);
    }

    let mut kernel_calls = Vec::new();
    for k in 0..n_kernels {
        let call = render_kernel(&mut src, &mut r, k, n_elems, n_helpers);
        kernel_calls.push(call);
    }
    if with_float {
        render_float_kernel(&mut src, &mut r, n_elems);
        kernel_calls.push("int(kf(n % 37 + 3) * 64.0)".to_string());
    }

    let _ = writeln!(src, "fn main(n: int) -> int {{");
    let _ = writeln!(src, "  seed_data();");
    let _ = writeln!(src, "  let r = 0;");
    for call in &kernel_calls {
        let _ = writeln!(src, "  r = r + {call};");
    }
    let _ = writeln!(src, "  return r ^ g0;");
    let _ = writeln!(src, "}}");

    GeneratedProgram {
        seed,
        source: src,
        entry: "main",
        train_arg,
    }
}

/// A small integer helper, sometimes with a branch or a maybe-zero divisor,
/// so kernels exercise cross-function calls inside hot loops.
fn render_helper(src: &mut String, r: &mut SplitMix64, idx: usize) {
    let m = r.range(3, 23);
    let p = r.range(101, 997);
    match r.below(3) {
        0 => {
            let _ = writeln!(
                src,
                "fn h{idx}(x: int) -> int {{\n  return x * {m} % {p} + g0;\n}}\n"
            );
        }
        1 => {
            let d = r.range(2, 9);
            let _ = writeln!(
                src,
                "fn h{idx}(x: int) -> int {{\n  if (x % {d} == 0) {{\n    return x / {d} + g0;\n  }}\n  return x * {m} % {p};\n}}\n"
            );
        }
        _ => {
            // Division by a possibly-zero subexpression: defined as 0.
            let d = r.range(3, 11);
            let _ = writeln!(
                src,
                "fn h{idx}(x: int) -> int {{\n  return x + x / (x % {d});\n}}\n"
            );
        }
    }
}

/// One accumulator-update expression. `counters` are the in-scope loop
/// counters (all non-negative); the result may be any value but index
/// subexpressions stay `nonneg % N`.
fn render_update(
    r: &mut SplitMix64,
    acc: usize,
    counters: &[&str],
    n_elems: i64,
    n_helpers: usize,
) -> String {
    let i = *r.pick(counters);
    let c = r.range(1, 11);
    let o = (acc + 1) % ACCS;
    match r.below(8) {
        0 => format!("s{acc} + {c}"),
        1 => format!("s{acc} * {c} % 1013"),
        2 => format!("s{acc} + a[({i} * {} + {acc}) % {n_elems}]", r.range(1, 7)),
        3 => format!("s{acc} ^ ({i} << {})", r.range(0, 4)),
        // Maybe-zero divisor: x/0 == x%0 == 0 by IR definition.
        4 => format!("s{acc} + s{o} / (s{} % {c})", (acc + 2) % ACCS),
        5 => format!("s{acc} % ({i} % {c} - 1)"),
        6 if n_helpers > 0 => {
            let h = r.below(n_helpers as u64);
            format!("s{acc} + h{h}(s{o} % 4093)")
        }
        6 => format!("min(s{acc}, s{o}) + max({i}, {c})"),
        _ => format!("s{acc} + {i} % {c} + b[({i} + {acc}) % {n_elems}]"),
    }
}

/// A guarded store — the archetypal violation candidate.
fn render_guarded_store(r: &mut SplitMix64, counter: &str, n_elems: i64) -> String {
    let g = r.range(2, 8);
    let stride = r.range(1, 6);
    let acc = r.below(ACCS as u64);
    format!(
        "    if ({counter} % {g} == 0) {{ b[({counter} * {stride}) % {n_elems}] = s{acc} % 509; }}\n"
    )
}

/// Renders kernel `k` and returns the `main` call expression for it.
fn render_kernel(
    src: &mut String,
    r: &mut SplitMix64,
    k: usize,
    n_elems: i64,
    n_helpers: usize,
) -> String {
    let shape = r.below(4);
    let _ = writeln!(src, "fn k{k}(n: int) -> int {{");
    for v in 0..ACCS {
        let _ = writeln!(src, "  let s{v} = {};", 2 * v as i64 + 1);
    }
    match shape {
        // Counted reduction with guarded store.
        0 => {
            let _ = writeln!(src, "  for (let i = 0; i < n; i = i + 1) {{");
            for _ in 0..r.range(1, 4) {
                let acc = r.below(ACCS as u64) as usize;
                let e = render_update(r, acc, &["i"], n_elems, n_helpers);
                let _ = writeln!(src, "    s{acc} = {e};");
            }
            src.push_str(&render_guarded_store(r, "i", n_elems));
            let _ = writeln!(src, "  }}");
        }
        // Loop nest to depth 2 or 3 with small inner trips.
        1 => {
            let depth3 = r.chance(1, 2);
            let tj = r.range(2, 4);
            let tk = r.range(2, 3);
            let _ = writeln!(src, "  for (let i = 0; i < n; i = i + 1) {{");
            let _ = writeln!(src, "    for (let j = 0; j < {tj}; j = j + 1) {{");
            if depth3 {
                let _ = writeln!(src, "      for (let t = 0; t < {tk}; t = t + 1) {{");
                let acc = r.below(ACCS as u64) as usize;
                let e = render_update(r, acc, &["i", "j", "t"], n_elems, n_helpers);
                let _ = writeln!(src, "        s{acc} = {e};");
                let _ = writeln!(src, "      }}");
            }
            let acc = r.below(ACCS as u64) as usize;
            let e = render_update(r, acc, &["i", "j"], n_elems, n_helpers);
            let _ = writeln!(src, "      s{acc} = {e};");
            let _ = writeln!(src, "    }}");
            src.push_str(&render_guarded_store(r, "i", n_elems));
            let _ = writeln!(src, "  }}");
        }
        // While loop with data-dependent continue/break. The counter
        // strictly increases on every path, so termination is guaranteed.
        2 => {
            let g = r.range(3, 9);
            let _ = writeln!(src, "  let i = 0;");
            let _ = writeln!(src, "  while (i < n) {{");
            let acc = r.below(ACCS as u64) as usize;
            let e = render_update(r, acc, &["i"], n_elems, n_helpers);
            let _ = writeln!(src, "    s{acc} = {e};");
            if r.chance(1, 2) {
                let _ = writeln!(src, "    if (s{acc} % {g} == 1) {{ i = i + 2; continue; }}");
            } else {
                let _ = writeln!(src, "    if (s{acc} % 8191 == 7) {{ break; }}");
            }
            src.push_str(&render_guarded_store(r, "i", n_elems));
            let _ = writeln!(src, "    i = i + 1;");
            let _ = writeln!(src, "  }}");
        }
        // Irregular chase: array-driven indirection. Seeded cells are
        // non-negative, so `j` stays within `0..N` forever.
        _ => {
            let _ = writeln!(src, "  let j = {};", r.range(0, n_elems - 1));
            let _ = writeln!(src, "  for (let t = 0; t < n; t = t + 1) {{");
            let _ = writeln!(src, "    j = a[j % {n_elems}] % {n_elems};");
            let acc = r.below(ACCS as u64) as usize;
            let _ = writeln!(src, "    s{acc} = s{acc} + b[j % {n_elems}];");
            if r.chance(1, 2) {
                // The stored value must stay non-negative: `a` drives the
                // chase index, and `s` ranges over all of i64.
                let _ = writeln!(src, "    a[(j + t) % {n_elems}] = (s{acc} % 89 + 89) % 90;");
            }
            let _ = writeln!(src, "  }}");
        }
    }
    let _ = writeln!(src, "  return s0 + s1 * 3 + s2 * 5 + s3 * 7;");
    let _ = writeln!(src, "}}\n");
    let arg = match r.below(3) {
        0 => "n".to_string(),
        1 => format!("n % {} + 5", r.range(31, 91)),
        _ => format!("n / 2 + {}", r.range(1, 9)),
    };
    format!("k{k}({arg})")
}

/// A float reduction over `w` with `fabs`/`sqrt`; multipliers below one
/// keep the accumulator's growth linear in the trip count.
fn render_float_kernel(src: &mut String, r: &mut SplitMix64, n_elems: i64) {
    let _ = writeln!(src, "fn kf(n: int) -> float {{");
    let _ = writeln!(src, "  let acc = 0.5;");
    let _ = writeln!(src, "  for (let i = 0; i < n; i = i + 1) {{");
    let _ = writeln!(
        src,
        "    acc = acc + fabs(w[i % {n_elems}]) * 0.25 + sqrt(fabs(acc)) * 0.125;"
    );
    if r.chance(1, 2) {
        let _ = writeln!(src, "    w[(i * 3) % {n_elems}] = acc * 0.5;");
    }
    let _ = writeln!(src, "  }}");
    let _ = writeln!(src, "  return acc;");
    let _ = writeln!(src, "}}\n");
}

/// Replacement tokens the mutator splices in; chosen to collide with every
/// parser decision point (delimiters, keywords, extreme literals).
const MUTANT_TOKENS: &[&str] = &[
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    ":",
    "->",
    "=",
    "==",
    "!=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&&",
    "||",
    "!",
    "~",
    "^",
    "<<",
    ">>",
    "fn",
    "global",
    "let",
    "if",
    "else",
    "while",
    "for",
    "return",
    "break",
    "continue",
    "int",
    "float",
    "q",
    "zz9",
    "9223372036854775807",
    "0",
    "1e308",
    "0.0",
];

/// Raw characters spliced in by character-level mutations, aimed at the
/// lexer (unknown characters, truncated comments, digit runs).
const MUTANT_CHARS: &[&str] = &[
    "@",
    "#",
    "$",
    "\"",
    "`",
    "\\",
    "/*",
    "*/",
    "//",
    "\u{2603}",
    "99999999999999999999",
];

/// Token-level corruption of (valid) `source`: `rounds` mutations, each a
/// delete/duplicate/swap/replace of one whitespace-delimited token or a raw
/// character splice. The result is usually invalid — that is the point: the
/// frontend must reject it cleanly.
pub fn mutate(source: &str, seed: u64, rounds: usize) -> String {
    let mut r = SplitMix64::new(seed ^ 0x6D75_7461_7465_2121);
    // Mutants collapse to a single line, so comment lines must go first —
    // a surviving `//` would comment out everything after it and turn the
    // mutant into a trivially empty program.
    let mut toks: Vec<String> = source
        .lines()
        .filter(|l| !l.trim_start().starts_with("//"))
        .flat_map(str::split_whitespace)
        .map(str::to_string)
        .collect();
    for _ in 0..rounds {
        if toks.is_empty() {
            toks.push("fn".to_string());
        }
        let i = r.below(toks.len() as u64) as usize;
        match r.below(5) {
            0 => {
                toks.remove(i);
            }
            1 => {
                let t = toks[i].clone();
                toks.insert(i, t);
            }
            2 => {
                let j = r.below(toks.len() as u64) as usize;
                toks.swap(i, j);
            }
            3 => {
                toks[i] = r.pick(MUTANT_TOKENS).to_string();
            }
            _ => {
                // Character splice inside the token.
                let c = *r.pick(MUTANT_CHARS);
                let t = &toks[i];
                let cut = r.below(t.len() as u64 + 1) as usize;
                let cut = (0..=cut)
                    .rev()
                    .find(|&p| t.is_char_boundary(p))
                    .unwrap_or(0);
                toks[i] = format!("{}{}{}", &t[..cut], c, &t[cut..]);
            }
        }
    }
    toks.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_bytes() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            assert_eq!(generate(seed), generate(seed));
        }
    }

    #[test]
    fn seeds_produce_distinct_programs() {
        let a = generate(1).source;
        let b = generate(2).source;
        assert_ne!(a, b);
    }

    #[test]
    fn generated_programs_compile() {
        for seed in 0..50 {
            let p = generate(seed);
            if let Err(e) = spt_frontend::compile(&p.source) {
                panic!("seed {seed} generated invalid minic: {e}\n{}", p.source);
            }
        }
    }

    #[test]
    fn mutation_is_deterministic() {
        let p = generate(9).source;
        assert_eq!(mutate(&p, 3, 8), mutate(&p, 3, 8));
        assert_ne!(mutate(&p, 3, 8), mutate(&p, 4, 8));
    }
}

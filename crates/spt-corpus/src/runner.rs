//! Corpus runner: shards thousands of generated modules over
//! [`spt_core::parallel::parallel_map`] and collects oracle verdicts.
//!
//! Workers are mutually independent — each generates its module from its
//! seed and runs the full battery. The two sub-oracles that toggle
//! process-global knobs serialize internally through
//! [`crate::oracle::global_state_lock`], so corpus shards stay correct at
//! any worker count; results merge by seed order, so runner output is
//! deterministic regardless of scheduling.

use crate::gen::generate;
use crate::oracle::{check_program, CheckOptions, Failure, ProgramUnderTest};
use spt_core::parallel::parallel_map;
use std::path::PathBuf;

/// What to run.
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// First seed; modules use `start_seed..start_seed + count`.
    pub start_seed: u64,
    /// Number of modules.
    pub count: usize,
    /// Oracle selection and pipeline configuration. When
    /// `opts.cache_root` is `None` and `use_temp_cache` is set, the runner
    /// provisions (and afterwards removes) a scratch root so the cache
    /// oracle still runs.
    pub opts: CheckOptions,
    /// Provision a temporary cache root when none is configured.
    pub use_temp_cache: bool,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            start_seed: 1,
            count: 1000,
            opts: CheckOptions::default(),
            use_temp_cache: true,
        }
    }
}

/// Verdict for one seed.
#[derive(Clone, Debug)]
pub struct SeedOutcome {
    /// The module's seed.
    pub seed: u64,
    /// Oracle violations (empty = green).
    pub failures: Vec<Failure>,
}

/// Aggregate result of a corpus run.
#[derive(Clone, Debug, Default)]
pub struct CorpusOutcome {
    /// Modules checked.
    pub checked: usize,
    /// Seeds with at least one failure, in seed order.
    pub failing: Vec<SeedOutcome>,
}

impl CorpusOutcome {
    /// True when every oracle held on every module.
    pub fn is_green(&self) -> bool {
        self.failing.is_empty()
    }
}

/// Runs `f` with the panic hook silenced, restoring it afterwards. The
/// sweep (and injected corpus runs) *contain* thousands of deliberate
/// panics; without this each would spew a backtrace. The hook is
/// process-global, so callers already inside a corpus run must not nest.
pub fn with_quiet_panic_hook<T>(f: impl FnOnce() -> T) -> T {
    type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;
    let saved = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    struct Restore(Option<PanicHook>);
    impl Drop for Restore {
        fn drop(&mut self) {
            if let Some(hook) = self.0.take() {
                std::panic::set_hook(hook);
            }
        }
    }
    let _restore = Restore(Some(saved));
    f()
}

/// A scratch directory under the system temp dir, removed on drop.
struct TempRoot(PathBuf);

impl TempRoot {
    fn new(tag: &str) -> TempRoot {
        let dir = std::env::temp_dir().join(format!("spt-corpus-{}-{tag}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        TempRoot(dir)
    }
}

impl Drop for TempRoot {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Runs the corpus. Deterministic: the same config yields the same
/// verdicts (and the same order) at any worker count.
pub fn run_corpus(cfg: &CorpusConfig) -> CorpusOutcome {
    let mut opts = cfg.opts.clone();
    let _temp = if opts.cache_root.is_none() && cfg.use_temp_cache {
        let t = TempRoot::new(&format!("s{}", cfg.start_seed));
        opts.cache_root = Some(t.0.clone());
        Some(t)
    } else {
        None
    };

    let seeds: Vec<u64> = (0..cfg.count as u64).map(|i| cfg.start_seed + i).collect();
    let verdicts = parallel_map(&seeds, |&seed| {
        let p = generate(seed);
        check_program(&ProgramUnderTest::from(&p), &opts)
    });

    let mut outcome = CorpusOutcome {
        checked: seeds.len(),
        ..CorpusOutcome::default()
    };
    for (&seed, failures) in seeds.iter().zip(verdicts) {
        if !failures.is_empty() {
            outcome.failing.push(SeedOutcome { seed, failures });
        }
    }
    outcome
}

/// FNV-1a fold of every module's source and base `CompilationReport` over
/// a seed range: a process-independent fingerprint for the cross-process
/// determinism test (two invocations must print identical digests).
pub fn corpus_digest(start_seed: u64, count: usize, opts: &CheckOptions) -> u64 {
    let seeds: Vec<u64> = (0..count as u64).map(|i| start_seed + i).collect();
    let entries = parallel_map(&seeds, |&seed| {
        let p = generate(seed);
        let under = ProgramUnderTest::from(&p);
        let input = spt_core::pipeline::ProfilingInput::new(under.entry.clone(), [under.train_arg]);
        let rendered = match spt_frontend::compile(&under.source) {
            Ok(mut module) => {
                match spt_core::pipeline::transform_module(&mut module, &input, &opts.config) {
                    Ok(report) => format!("{report:?}"),
                    Err(e) => format!("pipeline error: {e}"),
                }
            }
            Err(e) => format!("compile error: {e}"),
        };
        (p.source, rendered)
    });
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    };
    for (seed, (source, rendered)) in seeds.iter().zip(entries) {
        eat(&seed.to_le_bytes());
        eat(source.as_bytes());
        eat(rendered.as_bytes());
    }
    hash
}

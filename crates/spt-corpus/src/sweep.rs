//! Failpoint sweep: force every registered fault-injection site in turn
//! over generated programs, asserting the fault-isolation contract on
//! arbitrary corpus modules instead of the curated suite.
//!
//! For each site in [`spt_core::failpoint::sites`] and each seed in the
//! slice, the sweep arms the site (a `panic` action at `Contained` sites,
//! an `error` action at `ErrorChannel` sites) and pushes the generated
//! module through the full pipeline. The contract:
//!
//! * **no panic ever escapes**, whatever the site;
//! * a `Contained` site's compile **succeeds**, and the (degraded)
//!   transformed module still computes baseline semantics;
//! * an `ErrorChannel` site yields either a clean `PipelineError` or a
//!   successful degraded compile (the cache-load site degrades to
//!   re-capture) — again with baseline semantics when it succeeds.
//!
//! The failpoint registry is process-global, so the whole sweep holds
//! [`crate::oracle::global_state_lock`] and runs sequentially. Two sites
//! need special staging: `trace::cache_load` only fires when tracing with
//! a cache directory is enabled, and `superblock::lower` only fires while
//! the superblock tier is lowering, i.e. under an `ExecTier::Super`
//! override.

#![cfg(feature = "failpoints")]

use crate::gen::generate;
use crate::oracle::{check_program, global_state_lock, CheckOptions, Failure, OracleKind};
use spt_core::failpoint::{self, Action, SiteKind};
use spt_ir::{set_exec_tier_override, ExecTier};

/// One sweep violation.
#[derive(Clone, Debug)]
pub struct SweepFailure {
    /// The forced site.
    pub site: &'static str,
    /// The module's seed.
    pub seed: u64,
    /// What broke.
    pub failure: Failure,
}

/// Aggregate sweep result.
#[derive(Clone, Debug, Default)]
pub struct SweepOutcome {
    /// (site, seed) combinations exercised.
    pub runs: usize,
    /// Contract violations.
    pub failures: Vec<SweepFailure>,
}

impl SweepOutcome {
    /// True when the degradation contract held everywhere.
    pub fn is_green(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Restores the exec-tier override on drop.
struct TierRestore;
impl Drop for TierRestore {
    fn drop(&mut self) {
        set_exec_tier_override(None);
    }
}

/// Sweeps every registered site over `count` seeds starting at
/// `start_seed`. Call inside [`crate::runner::with_quiet_panic_hook`] —
/// contained panics are the *point* of the sweep.
pub fn sweep_failpoints(start_seed: u64, count: usize, opts: &CheckOptions) -> SweepOutcome {
    let _guard = global_state_lock();
    let mut outcome = SweepOutcome::default();

    for site in failpoint::sites() {
        // Only the battery's base compile + semantics oracles run under
        // injection: report-identity oracles would recompile with the
        // fault still armed and trivially agree, telling us nothing.
        let mut sweep_opts = CheckOptions {
            config: opts.config.clone(),
            check_threads: false,
            check_tiers: false,
            cache_root: None,
        };
        // The cache-load site never fires unless tracing with an on-disk
        // cache is enabled.
        let cache_tmp = if site.name == "trace::cache_load" {
            let dir = std::env::temp_dir().join(format!(
                "spt-corpus-sweep-{}-{start_seed}",
                std::process::id()
            ));
            let _ = std::fs::create_dir_all(&dir);
            sweep_opts.config.trace.enabled = true;
            sweep_opts.config.trace.cache_dir = Some(dir.clone());
            Some(dir)
        } else {
            None
        };
        // The superblock lowering hook only runs while the fused tier is
        // active.
        let _tier = if site.name == "superblock::lower" {
            set_exec_tier_override(Some(ExecTier::Super));
            Some(TierRestore)
        } else {
            None
        };

        for i in 0..count as u64 {
            let seed = start_seed + i;
            let p = generate(seed);
            let _scope = failpoint::scoped();
            match site.kind {
                SiteKind::Contained => {
                    failpoint::set(site.name, Action::panic("corpus sweep injected panic"))
                }
                SiteKind::ErrorChannel => {
                    failpoint::set(site.name, Action::error("corpus sweep injected error"))
                }
            }
            outcome.runs += 1;
            for failure in check_program(&(&p).into(), &sweep_opts) {
                let ok = match (site.kind, failure.kind) {
                    // An ErrorChannel fault surfacing as a clean pipeline
                    // error is the contract, not a violation.
                    (SiteKind::ErrorChannel, OracleKind::CleanFailure) => {
                        failure.detail.contains("failpoint")
                            || failure.detail.contains("corpus sweep")
                    }
                    _ => false,
                };
                if !ok {
                    outcome.failures.push(SweepFailure {
                        site: site.name,
                        seed,
                        failure,
                    });
                }
            }
        }
        if let Some(dir) = cache_tmp {
            let _ = std::fs::remove_dir_all(&dir);
        }
        set_exec_tier_override(None);
    }
    outcome
}

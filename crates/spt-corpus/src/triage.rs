//! Failure triage: collapse corpus failures into buckets.
//!
//! A thousand-module run of a single compiler bug should read as **one**
//! bucket with a thousand seeds, not a thousand lines of noise. Failures
//! bucket by *(oracle kind, normalized signature)*, where the signature is
//! the failure detail with digit runs collapsed — panic messages and
//! diverging values differ per seed in their numbers (`index 512 out of
//! bounds`, `index 63 out of bounds`) but share a shape.
//!
//! Buckets are also the reducer's preservation predicate: a candidate
//! program "still fails" exactly when it reproduces the original bucket,
//! which automatically rejects candidates that merely fail differently
//! (e.g. reduction-introduced parse errors).

use crate::oracle::Failure;
use crate::runner::SeedOutcome;
use std::collections::BTreeMap;

/// A failure equivalence class.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bucket {
    /// [`crate::oracle::OracleKind::label`] of the violated oracle.
    pub kind: &'static str,
    /// Normalized failure signature.
    pub signature: String,
}

impl std::fmt::Display for Bucket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.kind, self.signature)
    }
}

/// Normalizes a failure detail into a bucket signature: digit runs become
/// `#`, whitespace runs collapse to one space, and the result is truncated
/// to 120 characters (panic messages can embed whole programs).
pub fn signature_of(detail: &str) -> String {
    let mut out = String::new();
    let mut last_digit = false;
    let mut last_space = false;
    for c in detail.chars() {
        if c.is_ascii_digit() {
            if !last_digit {
                out.push('#');
            }
            last_digit = true;
            last_space = false;
        } else if c.is_whitespace() {
            if !last_space {
                out.push(' ');
            }
            last_space = true;
            last_digit = false;
        } else {
            out.push(c);
            last_digit = false;
            last_space = false;
        }
        if out.len() >= 120 {
            break;
        }
    }
    out.trim().to_string()
}

/// The bucket a failure belongs to.
pub fn bucket_of(f: &Failure) -> Bucket {
    Bucket {
        kind: f.kind.label(),
        signature: signature_of(&f.detail),
    }
}

/// Groups failing seeds by bucket (each seed counts once per bucket even
/// if several of its failures share one).
pub fn group(failing: &[SeedOutcome]) -> BTreeMap<Bucket, Vec<u64>> {
    let mut map: BTreeMap<Bucket, Vec<u64>> = BTreeMap::new();
    for s in failing {
        let mut seen = Vec::new();
        for f in &s.failures {
            let b = bucket_of(f);
            if !seen.contains(&b) {
                seen.push(b.clone());
                map.entry(b).or_default().push(s.seed);
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::OracleKind;

    #[test]
    fn digits_collapse() {
        assert_eq!(
            signature_of("index 512 out of   bounds at line 9"),
            "index # out of bounds at line #"
        );
        assert_eq!(
            signature_of("index 63 out of bounds at line 12"),
            signature_of("index 512 out of bounds at line 7"),
        );
    }

    #[test]
    fn buckets_split_by_kind() {
        let a = Failure {
            kind: OracleKind::Semantics,
            detail: "x".into(),
        };
        let b = Failure {
            kind: OracleKind::TierDivergence,
            detail: "x".into(),
        };
        assert_ne!(bucket_of(&a), bucket_of(&b));
    }

    #[test]
    fn grouping_merges_seeds() {
        let mk = |seed| SeedOutcome {
            seed,
            failures: vec![Failure {
                kind: OracleKind::Semantics,
                detail: format!("return diverged at arg {seed}"),
            }],
        };
        let grouped = group(&[mk(3), mk(8)]);
        assert_eq!(grouped.len(), 1);
        assert_eq!(grouped.values().next().map(Vec::len), Some(2));
    }
}

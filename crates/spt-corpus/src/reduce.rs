//! Automatic delta-debugging reducer and minimized-repro persistence.
//!
//! [`ddmin_lines`] is Zeller–Hildebrandt ddmin over source lines: try ever
//! finer partitions, keep any subset/complement that still reproduces the
//! failure, restart coarser whenever something sticks, and finish with a
//! single-line elimination fixpoint. The preservation predicate is bucket
//! equality (see [`crate::triage`]), so candidates that fail *differently*
//! — a reduction-introduced parse error instead of the original semantics
//! divergence — are rejected automatically.
//!
//! Minimized repros persist under `tests/corpus-regressions/` as plain
//! `minic` files with a machine-readable comment header, and are replayed
//! by an ordinary test forever after: a corpus find is only valuable if
//! its fix can never silently regress, and a seed alone would go stale the
//! moment the generator's grammar changes.

use crate::oracle::{check_program, CheckOptions, OracleKind, ProgramUnderTest};
use crate::triage::{bucket_of, Bucket};
use std::path::{Path, PathBuf};

/// Upper bound on predicate evaluations per reduction; each evaluation is
/// a full oracle battery, so the reducer trades minimality for a bounded
/// wall clock once a failure case is pathological.
const MAX_PROBES: usize = 600;

/// Minimizes `lines of source` under `reproduces` (which must hold for the
/// input). Returns the minimized source; every intermediate candidate that
/// was kept also reproduced.
pub fn ddmin_lines(source: &str, mut reproduces: impl FnMut(&str) -> bool) -> String {
    let mut lines: Vec<String> = source.lines().map(str::to_string).collect();
    let mut probes = 0usize;
    let probe = |cand: &[String], probes: &mut usize, rep: &mut dyn FnMut(&str) -> bool| {
        if *probes >= MAX_PROBES {
            return false;
        }
        *probes += 1;
        rep(&cand.join("\n"))
    };

    let mut granularity = 2usize;
    while lines.len() >= 2 {
        let chunk = lines.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < lines.len() {
            let end = (start + chunk).min(lines.len());
            // Complement: drop lines[start..end].
            let cand: Vec<String> = lines[..start]
                .iter()
                .chain(&lines[end..])
                .cloned()
                .collect();
            if !cand.is_empty() && probe(&cand, &mut probes, &mut reproduces) {
                lines = cand;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                // Restart the sweep on the shrunk input.
                start = 0;
                continue;
            }
            start = end;
        }
        if !reduced {
            if granularity >= lines.len() || probes >= MAX_PROBES {
                break;
            }
            granularity = (granularity * 2).min(lines.len());
        }
    }

    // Single-line elimination to a fixpoint (ddmin at the finest
    // granularity can still leave removable stragglers behind).
    let mut changed = true;
    while changed && probes < MAX_PROBES {
        changed = false;
        let mut i = 0;
        while i < lines.len() && lines.len() > 1 {
            let mut cand = lines.clone();
            cand.remove(i);
            if probe(&cand, &mut probes, &mut reproduces) {
                lines = cand;
                changed = true;
            } else {
                i += 1;
            }
        }
    }
    lines.join("\n")
}

/// Reduces a failing program to a minimal source that still reproduces
/// `target`. Entry, training argument, and check arguments are held fixed;
/// only the source shrinks.
pub fn reduce_program(p: &ProgramUnderTest, target: &Bucket, opts: &CheckOptions) -> String {
    let reproduces = |cand: &str| {
        let candidate = ProgramUnderTest {
            source: cand.to_string(),
            tag: format!("{}-reduce", p.tag),
            ..p.clone()
        };
        check_program(&candidate, opts)
            .iter()
            .any(|f| bucket_of(f) == *target)
    };
    ddmin_lines(&p.source, reproduces)
}

/// A minimized regression: everything needed to replay it later.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Repro {
    /// Seed that originally found it (informational).
    pub seed: u64,
    /// Violated oracle's label.
    pub oracle: String,
    /// Bucket signature at find time (informational).
    pub signature: String,
    /// Entry function.
    pub entry: String,
    /// Training argument.
    pub train_arg: i64,
    /// Minimized `minic` source.
    pub source: String,
}

impl Repro {
    /// Replay harness input for this repro.
    pub fn under_test(&self, tag: impl Into<String>) -> ProgramUnderTest {
        ProgramUnderTest {
            source: self.source.clone(),
            entry: self.entry.clone(),
            train_arg: self.train_arg,
            args: vec![0, 17, self.train_arg],
            tag: tag.into(),
        }
    }
}

/// File name for a repro: oracle label plus a short signature hash, so one
/// bucket maps to one file and re-finding a known bug overwrites rather
/// than accumulates.
pub fn repro_file_name(oracle: &str, signature: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in signature.as_bytes() {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    format!("{oracle}-{:08x}.minic", hash as u32)
}

/// Serializes a repro to `dir`, returning the path written.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_repro(dir: &Path, repro: &Repro) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(repro_file_name(&repro.oracle, &repro.signature));
    let mut text = String::new();
    text.push_str("// spt-corpus minimized regression\n");
    text.push_str(&format!("// seed: {}\n", repro.seed));
    text.push_str(&format!("// oracle: {}\n", repro.oracle));
    text.push_str(&format!("// signature: {}\n", repro.signature));
    text.push_str(&format!("// entry: {}\n", repro.entry));
    text.push_str(&format!("// train: {}\n", repro.train_arg));
    text.push_str(&repro.source);
    if !text.ends_with('\n') {
        text.push('\n');
    }
    std::fs::write(&path, text)?;
    Ok(path)
}

/// Parses a repro file written by [`write_repro`]. Unknown or missing
/// header keys fall back to safe defaults (`main`, train 140), so hand-
/// written repro files need no header at all.
pub fn parse_repro(text: &str) -> Repro {
    let mut repro = Repro {
        seed: 0,
        oracle: String::new(),
        signature: String::new(),
        entry: "main".to_string(),
        train_arg: 140,
        source: String::new(),
    };
    let mut body = Vec::new();
    for line in text.lines() {
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix("//") {
            let rest = rest.trim();
            if let Some((key, value)) = rest.split_once(':') {
                let value = value.trim();
                match key.trim() {
                    "seed" => repro.seed = value.parse().unwrap_or(0),
                    "oracle" => repro.oracle = value.to_string(),
                    "signature" => repro.signature = value.to_string(),
                    "entry" => repro.entry = value.to_string(),
                    "train" => repro.train_arg = value.parse().unwrap_or(140),
                    _ => {}
                }
            }
            continue;
        }
        body.push(line);
    }
    repro.source = body.join("\n");
    repro
}

/// Loads every `.minic` repro under `dir`, sorted by file name for
/// deterministic replay order. A missing directory is an empty corpus.
pub fn load_repros(dir: &Path) -> Vec<(PathBuf, Repro)> {
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "minic"))
            .collect(),
        Err(_) => Vec::new(),
    };
    paths.sort();
    paths
        .into_iter()
        .filter_map(|p| {
            let text = std::fs::read_to_string(&p).ok()?;
            Some((p, parse_repro(&text)))
        })
        .collect()
}

/// Convenience for the runner/bin: reduce one failure and persist it.
///
/// # Errors
///
/// Propagates filesystem errors from [`write_repro`].
pub fn reduce_and_persist(
    seed: u64,
    p: &ProgramUnderTest,
    failure_kind: OracleKind,
    target: &Bucket,
    opts: &CheckOptions,
    out_dir: &Path,
) -> std::io::Result<(PathBuf, Repro)> {
    let minimized = reduce_program(p, target, opts);
    let repro = Repro {
        seed,
        oracle: failure_kind.label().to_string(),
        signature: target.signature.clone(),
        entry: p.entry.clone(),
        train_arg: p.train_arg,
        source: minimized,
    };
    let path = write_repro(out_dir, &repro)?;
    Ok((path, repro))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddmin_shrinks_to_the_failing_line() {
        let source: String = (0..40)
            .map(|i| {
                if i == 23 {
                    "BUG\n".to_string()
                } else {
                    format!("line {i}\n")
                }
            })
            .collect();
        let reduced = ddmin_lines(&source, |cand| cand.contains("BUG"));
        assert_eq!(reduced.trim(), "BUG");
    }

    #[test]
    fn ddmin_keeps_multi_line_dependencies() {
        // Failure needs BOTH markers: the reducer must keep both lines.
        let source = "a\nFIRST\nb\nc\nSECOND\nd\n";
        let reduced = ddmin_lines(source, |cand| {
            cand.contains("FIRST") && cand.contains("SECOND")
        });
        let lines: Vec<&str> = reduced.lines().collect();
        assert_eq!(lines, vec!["FIRST", "SECOND"]);
    }

    #[test]
    fn repro_round_trips() {
        let repro = Repro {
            seed: 77,
            oracle: "semantics".to_string(),
            signature: "return diverged at arg #".to_string(),
            entry: "main".to_string(),
            train_arg: 99,
            source: "fn main(n: int) -> int {\n  return n;\n}".to_string(),
        };
        let dir =
            std::env::temp_dir().join(format!("spt-corpus-repro-test-{}", std::process::id()));
        let path = write_repro(&dir, &repro).expect("write");
        let loaded = load_repros(&dir);
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].0, path);
        assert_eq!(loaded[0].1, repro);
    }

    #[test]
    fn headerless_repro_gets_defaults() {
        let r = parse_repro("fn main() -> int { return 1; }");
        assert_eq!(r.entry, "main");
        assert_eq!(r.train_arg, 140);
        assert_eq!(r.source, "fn main() -> int { return 1; }");
    }
}

//! Corpus-scale differential fuzzing for the SPT pipeline.
//!
//! PR 3's robustness story — 64 random programs survive the pipeline — is
//! a smoke test. This crate graduates it to an always-on, corpus-scale
//! guarantee in the spirit of infrastructure frameworks like CPF, whose
//! claims are regression-gated over a large corpus rather than a handful
//! of hand-ported kernels:
//!
//! * [`gen`] — a deterministic, seeded `minic` program generator covering
//!   every shape the frontend accepts (loop nests, while-loops, irregular
//!   chases, reductions, guarded stores, cross-function calls, maybe-zero
//!   divisors, float kernels), plus a token-level mutator for frontend
//!   hardening;
//! * [`oracle`] — the five differential oracles checked per module: no
//!   escaped panic, baseline-vs-transformed semantics, three-way exec-tier
//!   bit-identity, cache-off/cold/warm report identity, and
//!   worker-count-invariant reports;
//! * [`runner`] — shards thousands of modules over
//!   [`spt_core::parallel::parallel_map`] and folds deterministic
//!   verdicts (and a cross-process digest);
//! * [`triage`] — buckets failures by oracle and normalized signature;
//! * [`reduce`] — a ddmin delta-debugging reducer that shrinks any failing
//!   module to a minimal repro, persisted under `tests/corpus-regressions/`
//!   and replayed as an ordinary test forever after;
//! * [`sweep`] (feature `failpoints`) — forces every registered
//!   `fail_point!` site in turn over generated programs, asserting the
//!   fault-isolation contract on arbitrary modules.
//!
//! The `corpus` binary in `spt-bench` is the command-line face of all of
//! this; CI runs a pinned-seed slice of it on every push.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod gen;
pub mod oracle;
pub mod reduce;
pub mod rng;
pub mod runner;
pub mod sweep;
pub mod triage;

pub use gen::{generate, mutate, GeneratedProgram};
pub use oracle::{check_program, CheckOptions, Failure, OracleKind, ProgramUnderTest};
pub use reduce::{ddmin_lines, load_repros, reduce_program, write_repro, Repro};
pub use runner::{corpus_digest, run_corpus, with_quiet_panic_hook, CorpusConfig, CorpusOutcome};
#[cfg(feature = "failpoints")]
pub use sweep::{sweep_failpoints, SweepOutcome};
pub use triage::{bucket_of, group, signature_of, Bucket};

//! Deterministic pseudo-random source for the generator.
//!
//! SplitMix64: a tiny, well-mixed 64-bit generator whose entire state is
//! one `u64`, so every corpus module is reproducible from its seed alone —
//! across processes, platforms, and thread counts. (`std` offers no seeded
//! RNG and the container vendors no `rand`, so the corpus carries its own.)

/// SplitMix64 (Steele, Lea & Flood; the `java.util.SplittableRandom`
/// mixer). Passes BigCrush when used as a stream; more than strong enough
/// for program-shape selection.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`. Every distinct seed yields an
    /// independent-looking stream; sequential seeds are fine.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (`n > 0`). Simple modulo: the tiny bias is
    /// irrelevant for shape selection and keeps the stream consumption
    /// fixed at one draw per call (important for reproducibility).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform in `lo..=hi` as `i64` (`lo <= hi`).
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    /// True with probability `num`/`den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A uniformly chosen element of `items`.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_is_inclusive_and_bounded() {
        let mut r = SplitMix64::new(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..500 {
            let v = r.range(3, 6);
            assert!((3..=6).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 6;
        }
        assert!(seen_lo && seen_hi);
    }
}

//! Cache-aware simulation entry point, shared by the daemon service and the
//! bench harnesses (re-exported through `spt-bench` for the table/figure
//! binaries).
//!
//! This is the *disk* tier: the daemon's in-memory `SimResult` layer (see
//! [`crate::service`]) probes its sharded LRU first and only falls through
//! to [`sim_with_cache`], which consults the content-addressed
//! `.spt-cache/` memo, then trace replay, then direct simulation.

use spt_core::{ResourceBudget, TraceSettings};
use spt_profile::{Interp, NoProfiler, Val};
use spt_sim::{MachineConfig, SimError, SimResult, SptSimulator};
use spt_trace::{
    has_spt_markers, replay_sim, ArtifactCache, CaptureProfiler, LoadOutcome, WatchSet,
};

/// Trace/artifact-cache statistics of the simulation side of a run (the
/// pipeline's own trace counters live in
/// [`StageTimings`](spt_core::StageTimings)).
#[derive(Clone, Copy, Debug, Default)]
pub struct SimTraceStats {
    /// Simulations served whole from a cached `SimResult` memo.
    pub memo_hits: u64,
    /// Replays whose input trace came from the artifact cache.
    pub trace_hits: u64,
    /// Traces captured (interpreter run + recording) this call.
    pub captures: u64,
    /// Simulations run directly (tracing disabled for the module — e.g. it
    /// carries SPT markers — or replay fell back).
    pub direct_runs: u64,
    /// Seconds spent capturing simulation traces.
    pub capture_s: f64,
    /// Seconds spent replaying traces through the simulator.
    pub replay_s: f64,
}

impl SimTraceStats {
    /// Artifact-cache hits (memo or trace).
    pub fn hits(&self) -> u64 {
        self.memo_hits + self.trace_hits
    }

    /// Runs that could not be served from the cache while tracing was on.
    pub fn misses(&self) -> u64 {
        self.captures + self.direct_runs
    }

    /// Accumulates `other` into `self`.
    pub fn absorb(&mut self, other: &SimTraceStats) {
        self.memo_hits += other.memo_hits;
        self.trace_hits += other.trace_hits;
        self.captures += other.captures;
        self.direct_runs += other.direct_runs;
        self.capture_s += other.capture_s;
        self.replay_s += other.replay_s;
    }
}

/// Simulates `entry(arg)` of `module` under `machine`, going through the
/// trace backend when `settings.enabled`:
///
/// 1. a content-addressed `SimResult` memo (module hash + entry + args +
///    machine config) is probed first — an exact repeat costs one file read;
/// 2. otherwise, for marker-free modules, the run's trace is loaded from the
///    cache (or captured once and stored) and **replayed** through the
///    simulator — bit-identical to direct simulation (pinned by
///    `tests/trace_equivalence.rs`) but shared across machine configs;
/// 3. SPT-transformed modules (fork/kill markers) and any trace problem fall
///    back to direct simulation.
///
/// With `settings.enabled == false` this is exactly a direct
/// [`SptSimulator`] run.
///
/// # Errors
///
/// Whatever the underlying simulation returns; cache/trace problems never
/// surface as errors.
pub fn sim_with_cache(
    module: &spt_ir::Module,
    entry: &str,
    arg: i64,
    machine: &MachineConfig,
    settings: &TraceSettings,
    stats: &mut SimTraceStats,
) -> Result<SimResult, SimError> {
    if !settings.enabled {
        return SptSimulator::with_config(machine.clone()).run(module, entry, &[arg]);
    }
    let cache = settings.cache_dir.as_ref().map(ArtifactCache::new);
    sim_with_cache_in(module, entry, arg, machine, cache.as_ref(), stats)
}

/// [`sim_with_cache`] against a caller-owned [`ArtifactCache`] handle (or
/// none, for capture-and-replay without persistence). The daemon routes
/// through here with its byte-budgeted handle so every store also enforces
/// the disk bound and lands in the daemon's eviction counters; the
/// settings-based wrapper above constructs a transient unbudgeted handle
/// per call, which is fine for the one-shot harness binaries.
///
/// # Errors
///
/// See [`sim_with_cache`].
pub fn sim_with_cache_in(
    module: &spt_ir::Module,
    entry: &str,
    arg: i64,
    machine: &MachineConfig,
    cache: Option<&ArtifactCache>,
    stats: &mut SimTraceStats,
) -> Result<SimResult, SimError> {
    let module_hash = module.content_hash();
    let sim_key = ArtifactCache::sim_key(module_hash, entry, &[arg], machine);
    if let Some(cache) = cache {
        if let LoadOutcome::Hit(hit) = cache.load_sim(sim_key) {
            stats.memo_hits += 1;
            return Ok(hit);
        }
    }
    let result = match replayed_sim(module, module_hash, entry, arg, machine, cache, stats) {
        Some(r) => r,
        None => {
            stats.direct_runs += 1;
            SptSimulator::with_config(machine.clone()).run(module, entry, &[arg])?
        }
    };
    if let Some(cache) = cache {
        cache.store_sim(sim_key, &result);
    }
    Ok(result)
}

/// The trace-replay path of [`sim_with_cache`]: `None` means "use direct
/// simulation" (marker-bearing module, failed capture, or replay error).
fn replayed_sim(
    module: &spt_ir::Module,
    module_hash: u64,
    entry: &str,
    arg: i64,
    machine: &MachineConfig,
    cache: Option<&ArtifactCache>,
    stats: &mut SimTraceStats,
) -> Option<SimResult> {
    let interp = Interp::new(module);
    if has_spt_markers(interp.decoded()) {
        return None;
    }
    let entry_id = module.func_by_name(entry)?;
    let val_args = [Val::from_i64(arg)];
    let watch = WatchSet::empty();
    let trace_key = ArtifactCache::trace_key(
        module_hash,
        entry,
        &[val_args[0].0],
        watch.hash(),
        ArtifactCache::memory_hash(None),
    );
    let cached = match cache.map(|c| c.load_trace(trace_key)) {
        Some(LoadOutcome::Hit(t)) => {
            stats.trace_hits += 1;
            Some(t)
        }
        _ => None,
    };
    let trace = match cached {
        Some(t) => t,
        None => {
            let t0 = std::time::Instant::now();
            let mut cap =
                CaptureProfiler::new(NoProfiler, watch, ResourceBudget::default().trace_max_bytes);
            let run = interp.run(entry, &val_args, &mut cap).ok()?;
            let (trace, _) = cap.finish(&run, module_hash, entry, &val_args);
            let trace = trace?; // over budget: direct fallback
            stats.captures += 1;
            stats.capture_s += t0.elapsed().as_secs_f64();
            if let Some(cache) = cache {
                cache.store_trace(trace_key, &trace);
            }
            trace
        }
    };
    let t0 = std::time::Instant::now();
    let out = replay_sim(
        interp.decoded(),
        entry_id,
        &trace,
        machine,
        interp.initial_memory(),
    )
    .ok()?;
    stats.replay_s += t0.elapsed().as_secs_f64();
    Some(out)
}

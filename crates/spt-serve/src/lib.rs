//! Compilation-as-a-service for the SPT pipeline.
//!
//! A cost-driven compile is expensive (profiling runs, per-loop partition
//! searches, simulation) and perfectly memoizable — every product is a pure
//! function of (source, configuration, inputs, machine model). This crate
//! exploits that with a long-running daemon, `sptd`, that keeps the hot
//! artifacts resident instead of re-deriving them per process:
//!
//! * [`proto`] — the length-framed Unix-socket protocol (requests: ping /
//!   compile / compile-batch / sim / stats / shutdown);
//! * [`spt_trace::mem_cache`] (re-exported here) — the sharded,
//!   byte-bounded in-memory LRU underlying the hot tiers;
//! * [`sim`] — the cache-aware simulation entry point ([`sim_with_cache`]),
//!   shared with the bench harnesses via re-export from `spt-bench`;
//! * [`service`] — [`CompileService`]: the two-tier (memory over
//!   `.spt-cache/` disk) cache, single-flight compile deduplication, and
//!   global counters;
//! * [`server`] — the accept/reader/worker thread machinery behind `sptd`;
//! * [`client`] — the blocking [`Client`] the CLI (`sptc --daemon`) and
//!   `loadgen` use.
//!
//! The load-bearing property is *byte identity*: a response served from any
//! tier — memory, disk, or a concurrent request's single-flight result — is
//! byte-identical to what a cold single-process `sptc` run prints, pinned
//! by `crates/spt-serve/tests/daemon_equivalence.rs`.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod proto;
pub mod server;
pub mod service;
pub mod sim;

pub use client::{Client, ClientError};
pub use proto::{CompileReq, CompileResp, OkBody, ReqBody, Request, RespBody, SimReq, SimResp};
pub use server::{serve, ServerHandle};
pub use service::{CompileService, ServiceConfig};
pub use sim::{sim_with_cache, sim_with_cache_in, SimTraceStats};
pub use spt_trace::mem_cache::{self, ShardStats, ShardedLru};

//! `sptd` — the persistent SPT compile daemon.
//!
//! ```text
//! sptd --socket PATH [options]
//!
//! options:
//!   --socket PATH        Unix socket to listen on (required)
//!   --workers N          worker threads (default: SPT_THREADS or cores)
//!   --cache-dir DIR      on-disk artifact cache (default .spt-cache;
//!                        "none" disables the disk tier)
//!   --mem-budget BYTES   in-memory cache bound (default 134217728)
//!   --disk-budget BYTES  on-disk cache bound (default unbounded)
//!   --shards N           in-memory cache shards (default 8)
//! ```
//!
//! The daemon serves until a client sends a `Shutdown` request (e.g.
//! `loadgen --socket PATH --shutdown`), then drains, removes its socket
//! file, and exits 0.

use std::process::ExitCode;
use std::sync::Arc;

use spt_serve::{serve, CompileService, ServiceConfig};

struct Options {
    socket: String,
    workers: usize,
    service: ServiceConfig,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: sptd --socket PATH [--workers N] [--cache-dir DIR|none] \
         [--mem-budget BYTES] [--disk-budget BYTES] [--shards N]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut socket = None;
    let mut workers = 0usize;
    let mut service = ServiceConfig::default();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<String, ExitCode> {
            *i += 1;
            argv.get(*i).cloned().ok_or_else(usage)
        };
        match argv[i].as_str() {
            "--socket" => socket = Some(take(&mut i)?),
            "--workers" => workers = parse_num(&take(&mut i)?)? as usize,
            "--cache-dir" => {
                let dir = take(&mut i)?;
                service.cache_dir = if dir == "none" {
                    None
                } else {
                    Some(dir.into())
                };
            }
            "--mem-budget" => service.mem_budget_bytes = parse_num(&take(&mut i)?)?,
            "--disk-budget" => service.disk_budget_bytes = Some(parse_num(&take(&mut i)?)?),
            "--shards" => service.shards = parse_num(&take(&mut i)?)? as usize,
            other => {
                eprintln!("sptd: unknown option {other:?}");
                return Err(usage());
            }
        }
        i += 1;
    }
    let Some(socket) = socket else {
        return Err(usage());
    };
    Ok(Options {
        socket,
        workers,
        service,
    })
}

fn parse_num(s: &str) -> Result<u64, ExitCode> {
    s.parse().map_err(|_| {
        eprintln!("sptd: {s:?} is not a number");
        usage()
    })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };
    let service = Arc::new(CompileService::new(opts.service));
    let handle = match serve(service, &opts.socket, opts.workers) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("sptd: cannot listen on {}: {e}", opts.socket);
            return ExitCode::FAILURE;
        }
    };
    eprintln!("sptd: serving on {}", opts.socket);
    handle.join();
    eprintln!("sptd: shut down cleanly");
    ExitCode::SUCCESS
}

//! The compile service: request execution against the two-tier cache.
//!
//! One [`CompileService`] owns everything a daemon worker needs to answer a
//! request, independent of any socket:
//!
//! * three in-memory [`ShardedLru`] tiers — decoded frontend **modules**
//!   keyed by source hash, whole **compiled units** (transformed module,
//!   baseline, report renderings, stage timings) keyed by baseline IR hash +
//!   configuration + profiling input, and **`SimResult`s** keyed by the
//!   artifact cache's own sim key (module hash + entry + args + machine);
//! * the byte-budgeted on-disk [`ArtifactCache`] (`.spt-cache/` tier) that
//!   traces and simulation memos persist through, shared with the one-shot
//!   CLI so a daemon warm-up also warms `sptc`;
//! * a **single-flight** table: concurrent requests for the same unit key
//!   elect one leader to run the pipeline while the rest block on its
//!   result, so N identical cold requests cost exactly one compile;
//! * global counters (per-kind request totals, cache hits/misses/evictions
//!   per tier, single-flight dedups, a log₂ latency histogram for p50/p99)
//!   snapshotted by the `Stats` request.
//!
//! Everything is keyed by content, so the service never invalidates: a new
//! source, configuration, or machine model is a new key. Determinism: the
//! pipeline's reports are byte-identical across thread counts and trace
//! settings (pinned by `tests/trace_equivalence.rs` and the report contract
//! in `spt-core`), so a response assembled from any mix of tiers is
//! byte-identical to a cold single-process compile — `sptd` can never serve
//! a "close enough" answer.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use spt_core::pipeline::transform_module_timed_with;
use spt_core::{CompilerConfig, IncrementalCache, ProfilingInput, StageTimings, TraceSettings};
use spt_ir::Module;
use spt_sim::{MachineConfig, SimResult};
use spt_trace::codec::Fnv;
use spt_trace::{sim_to_bytes, ArtifactCache};

use crate::mem_cache::ShardedLru;
use crate::proto::{CompileReq, CompileResp, OkBody, ReqBody, RespBody, SimReq, SimResp};
use crate::sim::{sim_with_cache_in, SimTraceStats};

/// Construction parameters of a [`CompileService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Directory of the on-disk artifact tier; `None` disables disk caching
    /// (and trace capture/replay) entirely.
    pub cache_dir: Option<PathBuf>,
    /// Byte bound on the disk tier; enforced after every store by evicting
    /// oldest artifacts first. `None` = unbounded (the one-shot CLI
    /// behavior).
    pub disk_budget_bytes: Option<u64>,
    /// Total byte bound across the in-memory tiers: three-eighths to
    /// compiled units, a quarter each to frontend modules and simulation
    /// results, and an eighth to the function-granular incremental cache
    /// (split evenly between analysis and emission units).
    pub mem_budget_bytes: u64,
    /// Shard count of each in-memory tier.
    pub shards: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_dir: Some(".spt-cache".into()),
            disk_budget_bytes: None,
            mem_budget_bytes: 128 << 20,
            shards: 8,
        }
    }
}

/// One fully compiled program under one configuration: everything any
/// `Compile` or `Sim` response needs, immutable behind an `Arc`.
pub struct CompiledUnit {
    /// `format!("{:?}")` of the report — the byte-exact digest form.
    pub report_debug: String,
    /// `CompilationReport::analyze_text()` rendering.
    pub analyze_text: String,
    /// Printed IR of the transformed module.
    pub module_text: String,
    /// The SPT-transformed module.
    pub module: Arc<Module>,
    /// The untransformed baseline.
    pub baseline: Arc<Module>,
    /// Timings of the pipeline run that built this unit.
    pub timings: StageTimings,
}

impl CompiledUnit {
    /// Bytes billed against the unit tier: the owned strings exactly, plus
    /// the two modules estimated by their printed size (the in-memory form
    /// tracks it within a small factor, and the estimate only has to make
    /// the budget meaningful, not account to the byte).
    fn approx_bytes(&self) -> u64 {
        (self.report_debug.len()
            + self.analyze_text.len()
            + self.module_text.len()
            + 2 * self.module_text.len()) as u64
    }
}

/// A single-flight slot: the leader publishes into `result` and wakes the
/// joiners; a leader that panicked publishes the panic as an `Err`, so
/// joiners can never deadlock on a dead flight.
#[derive(Default)]
struct Flight {
    result: Mutex<Option<Result<Arc<CompiledUnit>, String>>>,
    done: Condvar,
}

/// Log₂-bucketed latency histogram (microseconds). Bucket `i` counts
/// requests with `latency_us < 2^i`; quantiles report the bucket's upper
/// bound, so p50/p99 are order-of-magnitude figures, cheap and lock-free.
const LATENCY_BUCKETS: usize = 40;

struct Counters {
    requests_total: AtomicU64,
    requests_ping: AtomicU64,
    requests_compile: AtomicU64,
    requests_compile_batch: AtomicU64,
    requests_sim: AtomicU64,
    requests_stats: AtomicU64,
    requests_shutdown: AtomicU64,
    errors_total: AtomicU64,
    frontend_runs: AtomicU64,
    pipeline_runs: AtomicU64,
    flights_led: AtomicU64,
    flights_joined: AtomicU64,
    disk_memo_hits: AtomicU64,
    disk_trace_hits: AtomicU64,
    disk_captures: AtomicU64,
    disk_direct_runs: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for Counters {
    fn default() -> Self {
        Counters {
            requests_total: AtomicU64::new(0),
            requests_ping: AtomicU64::new(0),
            requests_compile: AtomicU64::new(0),
            requests_compile_batch: AtomicU64::new(0),
            requests_sim: AtomicU64::new(0),
            requests_stats: AtomicU64::new(0),
            requests_shutdown: AtomicU64::new(0),
            errors_total: AtomicU64::new(0),
            frontend_runs: AtomicU64::new(0),
            pipeline_runs: AtomicU64::new(0),
            flights_led: AtomicU64::new(0),
            flights_joined: AtomicU64::new(0),
            disk_memo_hits: AtomicU64::new(0),
            disk_trace_hits: AtomicU64::new(0),
            disk_captures: AtomicU64::new(0),
            disk_direct_runs: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The daemon's request executor. Thread-safe: workers share one instance
/// behind an `Arc` and call [`CompileService::execute`] concurrently.
pub struct CompileService {
    cfg: ServiceConfig,
    trace: TraceSettings,
    disk: Option<ArtifactCache>,
    modules: ShardedLru<Arc<Module>>,
    units: ShardedLru<Arc<CompiledUnit>>,
    sims: ShardedLru<Arc<SimResult>>,
    func_cache: Arc<IncrementalCache>,
    flights: Mutex<HashMap<u64, Arc<Flight>>>,
    counters: Counters,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // Flight and flight-table state is published atomically (a whole Option
    // / a whole map entry), so a poisoned lock left by a panicking holder is
    // still consistent.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl CompileService {
    /// Builds a service over `cfg`, creating the disk tier handle (budgeted
    /// if asked) and empty in-memory tiers.
    pub fn new(cfg: ServiceConfig) -> Self {
        let disk = cfg
            .cache_dir
            .as_ref()
            .map(|dir| match cfg.disk_budget_bytes {
                Some(b) => ArtifactCache::with_byte_budget(dir, b),
                None => ArtifactCache::new(dir),
            });
        let trace = TraceSettings {
            enabled: cfg.cache_dir.is_some(),
            cache_dir: cfg.cache_dir.clone(),
        };
        // The function-granular cache persists its analysis units through
        // its own handle on the same disk directory (same byte budget), so
        // edit-recompile cycles survive daemon restarts too.
        let func_mem = cfg.mem_budget_bytes / 8;
        let func_cache = Arc::new(match (&cfg.cache_dir, cfg.disk_budget_bytes) {
            (Some(dir), Some(b)) => IncrementalCache::with_disk(
                func_mem,
                cfg.shards,
                ArtifactCache::with_byte_budget(dir, b),
            ),
            (Some(dir), None) => {
                IncrementalCache::with_disk(func_mem, cfg.shards, ArtifactCache::new(dir))
            }
            (None, _) => IncrementalCache::in_memory(func_mem, cfg.shards),
        });
        CompileService {
            modules: ShardedLru::new(cfg.shards, cfg.mem_budget_bytes / 4),
            units: ShardedLru::new(cfg.shards, 3 * cfg.mem_budget_bytes / 8),
            sims: ShardedLru::new(cfg.shards, cfg.mem_budget_bytes / 4),
            func_cache,
            flights: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            disk,
            trace,
            cfg,
        }
    }

    /// The shared function-granular incremental cache every pipeline run
    /// compiles through (tests pin its hit/miss counters).
    pub fn incremental_cache(&self) -> &IncrementalCache {
        &self.func_cache
    }

    /// The service's trace settings (what `sim_with_cache` would see).
    pub fn trace_settings(&self) -> &TraceSettings {
        &self.trace
    }

    /// Executes one request body, recording counters and latency. Never
    /// panics out: pipeline panics are contained by the single-flight
    /// leader's `catch_unwind` and surface as [`RespBody::Err`]. (The server
    /// adds one more containment layer around the *whole* call, so even a
    /// bug in this bookkeeping degrades only the one request.)
    pub fn execute(&self, body: &ReqBody) -> RespBody {
        let t0 = Instant::now();
        let resp = match body {
            ReqBody::Ping => RespBody::Ok(OkBody::Pong),
            ReqBody::Compile(c) => self.compile_resp(c),
            ReqBody::CompileBatch(items) => self.compile_batch_resp(items),
            ReqBody::Sim(s) => self.sim_resp(s),
            ReqBody::Stats => RespBody::Ok(OkBody::Stats(self.stats())),
            ReqBody::Shutdown => RespBody::Ok(OkBody::ShuttingDown),
        };
        self.record(body, &resp, t0.elapsed());
        resp
    }

    fn record(&self, body: &ReqBody, resp: &RespBody, elapsed: Duration) {
        let c = &self.counters;
        c.requests_total.fetch_add(1, Ordering::Relaxed);
        match body {
            ReqBody::Ping => &c.requests_ping,
            ReqBody::Compile(_) => &c.requests_compile,
            ReqBody::CompileBatch(_) => &c.requests_compile_batch,
            ReqBody::Sim(_) => &c.requests_sim,
            ReqBody::Stats => &c.requests_stats,
            ReqBody::Shutdown => &c.requests_shutdown,
        }
        .fetch_add(1, Ordering::Relaxed);
        if matches!(resp, RespBody::Err(_)) {
            c.errors_total.fetch_add(1, Ordering::Relaxed);
        }
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        let bucket = (64 - us.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        c.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    fn config_for(id: u8) -> Result<CompilerConfig, String> {
        match id {
            0 => Ok(CompilerConfig::basic()),
            1 => Ok(CompilerConfig::best()),
            2 => Ok(CompilerConfig::anticipated()),
            other => Err(format!(
                "unknown config id {other} (0=basic 1=best 2=anticipated)"
            )),
        }
    }

    /// Frontend tier: source text → decoded module, memoized by source hash.
    fn frontend(&self, source: &str) -> Result<Arc<Module>, String> {
        let mut key = Fnv::new();
        key.update(b"module\0");
        key.update(source.as_bytes());
        let key = key.finish();
        if let Some(m) = self.modules.get(key) {
            return Ok(m);
        }
        let module = spt_frontend::compile(source).map_err(|e| format!("compile error: {e}"))?;
        self.counters.frontend_runs.fetch_add(1, Ordering::Relaxed);
        let module = Arc::new(module);
        // Billed at source size: the decoded structure scales with it and
        // the budget only needs the right order of magnitude.
        self.modules
            .insert(key, module.clone(), source.len().max(64) as u64);
        Ok(module)
    }

    fn unit_key(baseline: &Module, req: &CompileReq) -> u64 {
        let mut key = Fnv::new();
        key.update(b"unit\0");
        key.update_u64(baseline.content_hash());
        key.update(&[req.config_id]);
        key.update(req.entry.as_bytes());
        key.update_u64(req.train as u64);
        key.finish()
    }

    /// Unit tier with single-flight: returns the compiled unit for
    /// `(source, entry, train, config)`, compiling at most once no matter
    /// how many threads ask concurrently. The bool is true when the unit
    /// came straight from the in-memory tier.
    fn unit_for(&self, req: &CompileReq) -> Result<(Arc<CompiledUnit>, bool), String> {
        let baseline = self.frontend(&req.source)?;
        let key = Self::unit_key(&baseline, req);
        if let Some(unit) = self.units.get(key) {
            return Ok((unit, true));
        }
        enum Role {
            Leader(Arc<Flight>),
            Joiner(Arc<Flight>),
        }
        let role = {
            let mut flights = lock(&self.flights);
            match flights.get(&key) {
                Some(f) => Role::Joiner(f.clone()),
                None => {
                    let f = Arc::new(Flight::default());
                    flights.insert(key, f.clone());
                    Role::Leader(f)
                }
            }
        };
        match role {
            Role::Leader(flight) => {
                self.counters.flights_led.fetch_add(1, Ordering::Relaxed);
                let result = catch_unwind(AssertUnwindSafe(|| self.compute_unit(&baseline, req)))
                    .unwrap_or_else(|payload| {
                        Err(format!("compile panicked: {}", panic_message(&payload)))
                    });
                if let Ok(unit) = &result {
                    self.units.insert(key, unit.clone(), unit.approx_bytes());
                }
                *lock(&flight.result) = Some(result.clone());
                flight.done.notify_all();
                lock(&self.flights).remove(&key);
                result.map(|u| (u, false))
            }
            Role::Joiner(flight) => {
                self.counters.flights_joined.fetch_add(1, Ordering::Relaxed);
                let mut slot = lock(&flight.result);
                while slot.is_none() {
                    slot = flight
                        .done
                        .wait(slot)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                match &*slot {
                    Some(r) => r.clone().map(|u| (u, false)),
                    // Unreachable: the loop above only exits on Some.
                    None => Err("single-flight slot empty after wakeup".to_string()),
                }
            }
        }
    }

    /// The actual pipeline run of a single-flight leader.
    fn compute_unit(
        &self,
        baseline: &Arc<Module>,
        req: &CompileReq,
    ) -> Result<Arc<CompiledUnit>, String> {
        spt_core::fail_point!("serve::compile", &req.entry);
        let mut config = Self::config_for(req.config_id)?;
        config.trace = self.trace.clone();
        let input = ProfilingInput::new(req.entry.clone(), [req.train]);
        let mut module = (**baseline).clone();
        let (report, timings) =
            transform_module_timed_with(&mut module, &input, &config, Some(&self.func_cache))
                .map_err(|e| e.to_string())?;
        self.counters.pipeline_runs.fetch_add(1, Ordering::Relaxed);
        Ok(Arc::new(CompiledUnit {
            report_debug: format!("{report:?}"),
            analyze_text: report.analyze_text(),
            module_text: spt_ir::printer::print_module(&module),
            module: Arc::new(module),
            baseline: baseline.clone(),
            timings,
        }))
    }

    fn compile_one(&self, req: &CompileReq) -> Result<CompileResp, String> {
        let (unit, from_mem) = self.unit_for(req)?;
        Ok(CompileResp {
            report_debug: unit.report_debug.clone(),
            analyze_text: unit.analyze_text.clone(),
            module_text: if req.want_module_text {
                unit.module_text.clone()
            } else {
                String::new()
            },
            timings: unit.timings,
            served_from_memory: from_mem,
        })
    }

    fn compile_resp(&self, req: &CompileReq) -> RespBody {
        match self.compile_one(req) {
            Ok(resp) => RespBody::Ok(OkBody::Compile(resp)),
            Err(e) => RespBody::Err(e),
        }
    }

    /// Batch compile: the items run sequentially in this worker, each
    /// through the ordinary unit path. Deduplication happens at two levels
    /// — identical *modules* collapse through the unit tier and the
    /// single-flight table (also against concurrent non-batch requests),
    /// and *functions shared across distinct variants* collapse through the
    /// function-granular cache, so a batch of K variants of one module
    /// costs roughly one full compile plus K splices. Per-item failures
    /// come back as `Err` entries; the batch itself always succeeds.
    fn compile_batch_resp(&self, items: &[CompileReq]) -> RespBody {
        RespBody::Ok(OkBody::CompileBatch(
            items.iter().map(|req| self.compile_one(req)).collect(),
        ))
    }

    /// `SimResult` tier: in-memory probe keyed exactly like the disk memo,
    /// then [`sim_with_cache_in`] over the service's budgeted disk handle.
    /// The bool is true on an in-memory hit.
    fn sim_one(
        &self,
        module: &Module,
        entry: &str,
        arg: i64,
        machine: &MachineConfig,
    ) -> Result<(Arc<SimResult>, bool), String> {
        let key = ArtifactCache::sim_key(module.content_hash(), entry, &[arg], machine);
        if let Some(hit) = self.sims.get(key) {
            return Ok((hit, true));
        }
        let mut stats = SimTraceStats::default();
        let result = sim_with_cache_in(module, entry, arg, machine, self.disk.as_ref(), &mut stats)
            .map_err(|e| format!("simulation failed: {e}"))?;
        let c = &self.counters;
        c.disk_memo_hits
            .fetch_add(stats.memo_hits, Ordering::Relaxed);
        c.disk_trace_hits
            .fetch_add(stats.trace_hits, Ordering::Relaxed);
        c.disk_captures.fetch_add(stats.captures, Ordering::Relaxed);
        c.disk_direct_runs
            .fetch_add(stats.direct_runs, Ordering::Relaxed);
        let bytes = sim_to_bytes(&result).len() as u64;
        let result = Arc::new(result);
        self.sims.insert(key, result.clone(), bytes);
        Ok((result, false))
    }

    fn sim_resp(&self, req: &SimReq) -> RespBody {
        let compile = CompileReq {
            source: req.source.clone(),
            entry: req.entry.clone(),
            train: req.train,
            config_id: req.config_id,
            want_module_text: false,
        };
        let unit = match self.unit_for(&compile) {
            Ok((unit, _)) => unit,
            Err(e) => return RespBody::Err(e),
        };
        let baseline = match self.sim_one(&unit.baseline, &req.entry, req.arg, &req.machine) {
            Ok(r) => r,
            Err(e) => return RespBody::Err(e),
        };
        let spt = match self.sim_one(&unit.module, &req.entry, req.arg, &req.machine) {
            Ok(r) => r,
            Err(e) => return RespBody::Err(e),
        };
        if baseline.0.ret != spt.0.ret {
            return RespBody::Err("SPT execution diverged from baseline".to_string());
        }
        RespBody::Ok(OkBody::Sim(SimResp {
            report_debug: unit.report_debug.clone(),
            timings: unit.timings,
            baseline: sim_to_bytes(&baseline.0),
            spt: sim_to_bytes(&spt.0),
            served_from_memory: baseline.1 && spt.1,
        }))
    }

    /// Latency quantile from the histogram: the upper bound (`2^bucket` µs)
    /// of the bucket where the cumulative count crosses `q`.
    fn latency_quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .counters
            .latency
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in counts.iter().enumerate() {
            seen += n;
            if seen >= target {
                return 1u64 << i;
            }
        }
        1u64 << (LATENCY_BUCKETS - 1)
    }

    /// Snapshot of every global counter, sorted by name (so `Stats`
    /// responses are deterministic given the same history).
    pub fn stats(&self) -> Vec<(String, u64)> {
        let c = &self.counters;
        let mut out: Vec<(String, u64)> = vec![
            ("requests_total", c.requests_total.load(Ordering::Relaxed)),
            ("requests_ping", c.requests_ping.load(Ordering::Relaxed)),
            (
                "requests_compile",
                c.requests_compile.load(Ordering::Relaxed),
            ),
            (
                "requests_compile_batch",
                c.requests_compile_batch.load(Ordering::Relaxed),
            ),
            ("requests_sim", c.requests_sim.load(Ordering::Relaxed)),
            ("requests_stats", c.requests_stats.load(Ordering::Relaxed)),
            (
                "requests_shutdown",
                c.requests_shutdown.load(Ordering::Relaxed),
            ),
            ("errors_total", c.errors_total.load(Ordering::Relaxed)),
            ("frontend_runs", c.frontend_runs.load(Ordering::Relaxed)),
            ("pipeline_runs", c.pipeline_runs.load(Ordering::Relaxed)),
            ("flights_led", c.flights_led.load(Ordering::Relaxed)),
            ("flights_joined", c.flights_joined.load(Ordering::Relaxed)),
            ("disk_memo_hits", c.disk_memo_hits.load(Ordering::Relaxed)),
            ("disk_trace_hits", c.disk_trace_hits.load(Ordering::Relaxed)),
            ("disk_captures", c.disk_captures.load(Ordering::Relaxed)),
            (
                "disk_direct_runs",
                c.disk_direct_runs.load(Ordering::Relaxed),
            ),
            ("latency_p50_us", self.latency_quantile(0.50)),
            ("latency_p99_us", self.latency_quantile(0.99)),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
        for (tier, cache_stats) in [
            ("mem_module", self.modules.stats()),
            ("mem_unit", self.units.stats()),
            ("mem_sim", self.sims.stats()),
            ("mem_func_analysis", self.func_cache.analysis_stats()),
            ("mem_func_emit", self.func_cache.emit_stats()),
        ] {
            out.push((format!("{tier}_hits"), cache_stats.hits));
            out.push((format!("{tier}_misses"), cache_stats.misses));
            out.push((format!("{tier}_insertions"), cache_stats.insertions));
            out.push((format!("{tier}_evictions"), cache_stats.evictions));
            out.push((format!("{tier}_oversize"), cache_stats.oversize_rejections));
            out.push((format!("{tier}_bytes"), cache_stats.bytes));
            out.push((format!("{tier}_entries"), cache_stats.entries));
        }
        if let Some(disk) = &self.disk {
            let counters = disk.counters();
            out.push((
                "disk_budget_evictions".to_string(),
                counters.budget_evictions.load(Ordering::Relaxed),
            ));
            out.push((
                "disk_corrupt_evictions".to_string(),
                counters.corrupt_evictions.load(Ordering::Relaxed),
            ));
            out.push((
                "disk_stores".to_string(),
                counters.stores.load(Ordering::Relaxed),
            ));
            out.push(("disk_bytes".to_string(), disk.disk_bytes()));
        }
        out.push(("mem_budget_bytes".to_string(), self.cfg.mem_budget_bytes));
        out.sort();
        out
    }
}

/// Best-effort panic payload rendering (`&str` and `String` payloads; the
/// pipeline only ever panics with those).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

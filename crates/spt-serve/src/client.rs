//! Blocking client for the `sptd` protocol.
//!
//! One [`Client`] owns one connection and issues one request at a time
//! (send frame, read frame), so correlation ids are checked but never
//! ambiguous. Concurrency comes from using several clients — each `loadgen`
//! worker thread, for instance, holds its own.

use std::fmt;
use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::proto::{
    decode_response, encode_request, read_frame, write_frame, CompileReq, CompileResp, OkBody,
    ReqBody, Request, RespBody, SimReq, SimResp,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, or write).
    Io(io::Error),
    /// The daemon answered, but the response was malformed or of the wrong
    /// kind for the request.
    Protocol(String),
    /// The daemon processed the request and reported an error.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "daemon i/o error: {e}"),
            ClientError::Protocol(e) => write!(f, "daemon protocol error: {e}"),
            ClientError::Server(e) => write!(f, "daemon error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected `sptd` client.
pub struct Client {
    stream: UnixStream,
    next_id: u64,
}

impl Client {
    /// Connects to a daemon at `socket_path`.
    ///
    /// # Errors
    ///
    /// Transport errors from [`UnixStream::connect`].
    pub fn connect(socket_path: impl AsRef<Path>) -> Result<Client, ClientError> {
        Ok(Client {
            stream: UnixStream::connect(socket_path)?,
            next_id: 1,
        })
    }

    fn call(&mut self, body: ReqBody) -> Result<OkBody, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = encode_request(&Request { id, body });
        write_frame(&mut self.stream, &frame)?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ))
        })?;
        let response = decode_response(&payload).map_err(ClientError::Protocol)?;
        if response.id != id {
            return Err(ClientError::Protocol(format!(
                "response id {} does not match request id {id}",
                response.id
            )));
        }
        match response.body {
            RespBody::Ok(ok) => Ok(ok),
            RespBody::Err(e) => Err(ClientError::Server(e)),
        }
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or protocol failure.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(ReqBody::Ping)? {
            OkBody::Pong => Ok(()),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Compiles on the daemon.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] carries pipeline/frontend failures.
    pub fn compile(&mut self, req: CompileReq) -> Result<CompileResp, ClientError> {
        match self.call(ReqBody::Compile(req))? {
            OkBody::Compile(resp) => Ok(resp),
            other => Err(unexpected("compile response", &other)),
        }
    }

    /// Compiles several variants in one round trip. The daemon dedups the
    /// work through its shared caches (identical modules via single-flight,
    /// shared functions via the function-granular cache) and returns one
    /// result per item in submission order; per-item failures come back as
    /// `Err` entries instead of failing the whole batch.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or protocol failure; per-item compile
    /// failures are in the returned vector, not here.
    pub fn compile_batch(
        &mut self,
        reqs: Vec<CompileReq>,
    ) -> Result<Vec<Result<CompileResp, String>>, ClientError> {
        match self.call(ReqBody::CompileBatch(reqs))? {
            OkBody::CompileBatch(items) => Ok(items),
            other => Err(unexpected("compile batch response", &other)),
        }
    }

    /// Compiles and simulates (baseline + SPT) on the daemon.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] carries pipeline/simulation failures.
    pub fn sim(&mut self, req: SimReq) -> Result<SimResp, ClientError> {
        match self.call(ReqBody::Sim(req))? {
            OkBody::Sim(resp) => Ok(resp),
            other => Err(unexpected("sim response", &other)),
        }
    }

    /// Snapshots the daemon's global counters.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or protocol failure.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, ClientError> {
        match self.call(ReqBody::Stats)? {
            OkBody::Stats(entries) => Ok(entries),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Asks the daemon to shut down; returns once it acknowledged.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or protocol failure.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(ReqBody::Shutdown)? {
            OkBody::ShuttingDown => Ok(()),
            other => Err(unexpected("shutdown ack", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &OkBody) -> ClientError {
    let kind = match got {
        OkBody::Pong => "pong",
        OkBody::Compile(_) => "compile response",
        OkBody::CompileBatch(_) => "compile batch response",
        OkBody::Sim(_) => "sim response",
        OkBody::Stats(_) => "stats",
        OkBody::ShuttingDown => "shutdown ack",
    };
    ClientError::Protocol(format!("expected {wanted}, daemon sent {kind}"))
}

//! Length-framed wire protocol between `sptd` and its clients.
//!
//! A connection is a Unix stream socket carrying *frames*: a 4-byte
//! little-endian payload length followed by the payload. Frames are
//! independent — a client may pipeline several requests and the daemon may
//! answer them out of order, so every request carries a caller-chosen `id`
//! that its response echoes. Payloads reuse the trace codec's primitives
//! ([`spt_trace::codec`]): LEB128 varints, zigzag for signed values,
//! varint-length-prefixed UTF-8 strings and byte blobs; `f64`s travel as
//! their fixed 8-byte little-endian bit patterns so timings round-trip
//! exactly.
//!
//! The protocol is deliberately tiny — six request kinds (`Ping`,
//! `Compile`, `CompileBatch`, `Sim`, `Stats`, `Shutdown`) — and versioned
//! by [`PROTO_VERSION`], which is folded into every frame's first byte so a
//! stale client fails loudly instead of misparsing. Oversized frames are
//! rejected at [`MAX_FRAME`] before allocation; a short read mid-frame is
//! an error, while EOF *between* frames is a clean close.

use std::io::{self, Read, Write};

use spt_core::StageTimings;
use spt_sim::{CacheConfig, MachineConfig};
use spt_trace::codec::{get_varint, put_varint, unzigzag, zigzag};

/// Bumped on any incompatible change to the frame payloads.
/// v2: [`StageTimings`] gained the function-granular incremental-compile
/// counters, and the `CompileBatch` request kind was added.
pub const PROTO_VERSION: u8 = 2;

/// Upper bound on a single frame's payload. Large enough for any report +
/// module text + simulation memo this repo produces (the biggest corpus
/// artifacts are low single-digit megabytes); small enough that a corrupt
/// length prefix cannot drive an allocation-of-doom.
pub const MAX_FRAME: usize = 64 << 20;

/// A client request: caller-chosen correlation id plus the operation.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Echoed verbatim in the matching [`Response`].
    pub id: u64,
    /// The operation to perform.
    pub body: ReqBody,
}

/// The operation a [`Request`] asks for.
#[derive(Clone, Debug, PartialEq)]
pub enum ReqBody {
    /// Liveness probe; answered with [`OkBody::Pong`].
    Ping,
    /// Compile `source` and return the report renderings.
    Compile(CompileReq),
    /// Compile several variants in one request. The daemon runs the items
    /// through one worker against its shared function-granular cache, so
    /// functions common to multiple variants are analyzed once and spliced
    /// into the rest; per-item results come back in submission order.
    CompileBatch(Vec<CompileReq>),
    /// Compile `source`, then simulate baseline and SPT binaries.
    Sim(SimReq),
    /// Snapshot the server's global counters.
    Stats,
    /// Drain in-flight work and exit the serve loop.
    Shutdown,
}

/// Arguments for [`ReqBody::Compile`].
#[derive(Clone, Debug, PartialEq)]
pub struct CompileReq {
    /// Frontend source text of the module.
    pub source: String,
    /// Entry function name.
    pub entry: String,
    /// Training input for the profiling runs.
    pub train: i64,
    /// Compiler configuration: 0 = basic, 1 = best, 2 = anticipated.
    pub config_id: u8,
    /// Also return the transformed module's printed IR (costly for big
    /// modules, so opt-in).
    pub want_module_text: bool,
}

/// Arguments for [`ReqBody::Sim`].
#[derive(Clone, Debug, PartialEq)]
pub struct SimReq {
    /// Frontend source text of the module.
    pub source: String,
    /// Entry function name.
    pub entry: String,
    /// Training input for the profiling runs.
    pub train: i64,
    /// Input for the simulated executions.
    pub arg: i64,
    /// Compiler configuration: 0 = basic, 1 = best, 2 = anticipated.
    pub config_id: u8,
    /// Machine model for both simulations.
    pub machine: MachineConfig,
}

/// A server reply, correlated to its request by `id`.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The `id` of the request this answers.
    pub id: u64,
    /// Success payload or error message.
    pub body: RespBody,
}

/// Success-or-error wrapper of a response payload.
#[derive(Clone, Debug, PartialEq)]
pub enum RespBody {
    /// The request succeeded.
    Ok(OkBody),
    /// The request failed; the string is the diagnostic message. A failed
    /// request never takes the connection or the daemon down with it.
    Err(String),
}

/// Success payloads, one per request kind.
#[derive(Clone, Debug, PartialEq)]
pub enum OkBody {
    /// Answer to [`ReqBody::Ping`].
    Pong,
    /// Answer to [`ReqBody::Compile`].
    Compile(CompileResp),
    /// Answer to [`ReqBody::CompileBatch`]: one result per submitted item,
    /// in submission order. Per-item failures are carried as `Err` entries
    /// so one bad variant never sinks its batch-mates.
    CompileBatch(Vec<Result<CompileResp, String>>),
    /// Answer to [`ReqBody::Sim`].
    Sim(SimResp),
    /// Answer to [`ReqBody::Stats`]: counter name/value pairs, sorted by
    /// name on the server so output is deterministic.
    Stats(Vec<(String, u64)>),
    /// Answer to [`ReqBody::Shutdown`], sent before the serve loop exits.
    ShuttingDown,
}

/// Compile result: the report rendered both ways, plus stage timings.
#[derive(Clone, Debug, PartialEq)]
pub struct CompileResp {
    /// `format!("{:?}", CompilationReport)` — the byte-exact form the
    /// equivalence tests and `report_digest` hash.
    pub report_debug: String,
    /// Human-readable analysis table (`CompilationReport::analyze_text`),
    /// byte-identical to `sptc analyze` output.
    pub analyze_text: String,
    /// Printed transformed IR; empty unless `want_module_text` was set.
    pub module_text: String,
    /// Per-stage pipeline timings for this unit. Served-from-cache
    /// responses echo the timings of the run that produced the unit.
    pub timings: StageTimings,
    /// True when the unit came from the in-memory cache rather than a
    /// pipeline run.
    pub served_from_memory: bool,
}

/// Sim result: the compile rendering plus both simulation outcomes,
/// encoded with the trace cache's `SimResult` codec.
#[derive(Clone, Debug, PartialEq)]
pub struct SimResp {
    /// `format!("{:?}", CompilationReport)` for the unit that was simulated.
    pub report_debug: String,
    /// Timings of the compile that produced (or cached) the unit.
    pub timings: StageTimings,
    /// Baseline simulation, `spt_trace::sim_to_bytes` encoded.
    pub baseline: Vec<u8>,
    /// SPT simulation, `spt_trace::sim_to_bytes` encoded.
    pub spt: Vec<u8>,
    /// True when both simulation results were in-memory hits.
    pub served_from_memory: bool,
}

const KIND_PING: u8 = 0;
const KIND_COMPILE: u8 = 1;
const KIND_SIM: u8 = 2;
const KIND_STATS: u8 = 3;
const KIND_SHUTDOWN: u8 = 4;
const KIND_COMPILE_BATCH: u8 = 5;

const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;

// ---------------------------------------------------------------------------
// Framing

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` on clean EOF (peer closed between frames);
/// an EOF mid-frame or an over-limit length prefix is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < len_buf.len() {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame length prefix",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Payload primitives

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_string(buf: &[u8], pos: &mut usize) -> Result<String, String> {
    let bytes = get_bytes(buf, pos)?;
    String::from_utf8(bytes).map_err(|_| "invalid utf-8 in string field".to_string())
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_varint(out, b.len() as u64);
    out.extend_from_slice(b);
}

fn get_bytes(buf: &[u8], pos: &mut usize) -> Result<Vec<u8>, String> {
    let len = need(buf, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or("truncated byte field")?;
    let out = buf[*pos..end].to_vec();
    *pos = end;
    Ok(out)
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn get_f64(buf: &[u8], pos: &mut usize) -> Result<f64, String> {
    let end = pos
        .checked_add(8)
        .filter(|&e| e <= buf.len())
        .ok_or("truncated f64")?;
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&buf[*pos..end]);
    *pos = end;
    Ok(f64::from_bits(u64::from_le_bytes(raw)))
}

fn need(buf: &[u8], pos: &mut usize) -> Result<u64, String> {
    get_varint(buf, pos).ok_or_else(|| "truncated varint".to_string())
}

fn get_u8(buf: &[u8], pos: &mut usize) -> Result<u8, String> {
    let b = *buf.get(*pos).ok_or("truncated byte")?;
    *pos += 1;
    Ok(b)
}

fn put_machine(out: &mut Vec<u8>, m: &MachineConfig) {
    put_varint(out, m.fork_overhead);
    put_varint(out, m.commit_overhead);
    put_varint(out, m.branch_mispredict_penalty);
    put_varint(out, m.max_spec_ops as u64);
    put_varint(out, m.spec_buffer_entries as u64);
    put_varint(out, m.fuel);
    put_varint(out, m.max_depth as u64);
    put_varint(out, m.cache.l1_line_cells as u64);
    put_varint(out, m.cache.l1_sets as u64);
    put_varint(out, m.cache.l1_ways as u64);
    put_varint(out, m.cache.l1_latency);
    put_varint(out, m.cache.l2_line_cells as u64);
    put_varint(out, m.cache.l2_sets as u64);
    put_varint(out, m.cache.l2_ways as u64);
    put_varint(out, m.cache.l2_latency);
    put_varint(out, m.cache.memory_latency);
}

fn get_machine(buf: &[u8], pos: &mut usize) -> Result<MachineConfig, String> {
    Ok(MachineConfig {
        fork_overhead: need(buf, pos)?,
        commit_overhead: need(buf, pos)?,
        branch_mispredict_penalty: need(buf, pos)?,
        max_spec_ops: need(buf, pos)? as usize,
        spec_buffer_entries: need(buf, pos)? as usize,
        fuel: need(buf, pos)?,
        max_depth: need(buf, pos)? as usize,
        cache: CacheConfig {
            l1_line_cells: need(buf, pos)? as usize,
            l1_sets: need(buf, pos)? as usize,
            l1_ways: need(buf, pos)? as usize,
            l1_latency: need(buf, pos)?,
            l2_line_cells: need(buf, pos)? as usize,
            l2_sets: need(buf, pos)? as usize,
            l2_ways: need(buf, pos)? as usize,
            l2_latency: need(buf, pos)?,
            memory_latency: need(buf, pos)?,
        },
    })
}

fn put_timings(out: &mut Vec<u8>, t: &StageTimings) {
    put_f64(out, t.preprocess_s);
    put_f64(out, t.profile_s);
    put_f64(out, t.analysis_s);
    put_f64(out, t.svp_s);
    put_f64(out, t.select_emit_s);
    put_varint(out, t.search_visited);
    put_f64(out, t.trace_capture_s);
    put_f64(out, t.trace_replay_s);
    put_varint(out, t.trace_cache_hits);
    put_varint(out, t.trace_cache_misses);
    put_varint(out, t.trace_cache_evictions);
    put_varint(out, t.func_units_total);
    put_varint(out, t.func_analysis_hits);
    put_varint(out, t.func_analysis_misses);
    put_varint(out, t.func_emit_hits);
    put_varint(out, t.func_emit_misses);
}

fn get_timings(buf: &[u8], pos: &mut usize) -> Result<StageTimings, String> {
    Ok(StageTimings {
        preprocess_s: get_f64(buf, pos)?,
        profile_s: get_f64(buf, pos)?,
        analysis_s: get_f64(buf, pos)?,
        svp_s: get_f64(buf, pos)?,
        select_emit_s: get_f64(buf, pos)?,
        search_visited: need(buf, pos)?,
        trace_capture_s: get_f64(buf, pos)?,
        trace_replay_s: get_f64(buf, pos)?,
        trace_cache_hits: need(buf, pos)?,
        trace_cache_misses: need(buf, pos)?,
        trace_cache_evictions: need(buf, pos)?,
        func_units_total: need(buf, pos)?,
        func_analysis_hits: need(buf, pos)?,
        func_analysis_misses: need(buf, pos)?,
        func_emit_hits: need(buf, pos)?,
        func_emit_misses: need(buf, pos)?,
    })
}

fn put_compile_req(out: &mut Vec<u8>, c: &CompileReq) {
    put_string(out, &c.source);
    put_string(out, &c.entry);
    put_varint(out, zigzag(c.train));
    out.push(c.config_id);
    out.push(c.want_module_text as u8);
}

fn get_compile_req(buf: &[u8], pos: &mut usize) -> Result<CompileReq, String> {
    Ok(CompileReq {
        source: get_string(buf, pos)?,
        entry: get_string(buf, pos)?,
        train: unzigzag(need(buf, pos)?),
        config_id: get_u8(buf, pos)?,
        want_module_text: get_u8(buf, pos)? != 0,
    })
}

fn put_compile_resp(out: &mut Vec<u8>, c: &CompileResp) {
    put_string(out, &c.report_debug);
    put_string(out, &c.analyze_text);
    put_string(out, &c.module_text);
    put_timings(out, &c.timings);
    out.push(c.served_from_memory as u8);
}

fn get_compile_resp(buf: &[u8], pos: &mut usize) -> Result<CompileResp, String> {
    Ok(CompileResp {
        report_debug: get_string(buf, pos)?,
        analyze_text: get_string(buf, pos)?,
        module_text: get_string(buf, pos)?,
        timings: get_timings(buf, pos)?,
        served_from_memory: get_u8(buf, pos)? != 0,
    })
}

// ---------------------------------------------------------------------------
// Requests

/// Serializes a request into a frame payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = vec![PROTO_VERSION];
    put_varint(&mut out, req.id);
    match &req.body {
        ReqBody::Ping => out.push(KIND_PING),
        ReqBody::Compile(c) => {
            out.push(KIND_COMPILE);
            put_compile_req(&mut out, c);
        }
        ReqBody::CompileBatch(items) => {
            out.push(KIND_COMPILE_BATCH);
            put_varint(&mut out, items.len() as u64);
            for c in items {
                put_compile_req(&mut out, c);
            }
        }
        ReqBody::Sim(s) => {
            out.push(KIND_SIM);
            put_string(&mut out, &s.source);
            put_string(&mut out, &s.entry);
            put_varint(&mut out, zigzag(s.train));
            put_varint(&mut out, zigzag(s.arg));
            out.push(s.config_id);
            put_machine(&mut out, &s.machine);
        }
        ReqBody::Stats => out.push(KIND_STATS),
        ReqBody::Shutdown => out.push(KIND_SHUTDOWN),
    }
    out
}

/// Parses a frame payload into a [`Request`].
pub fn decode_request(buf: &[u8]) -> Result<Request, String> {
    let mut pos = 0;
    check_version(buf, &mut pos)?;
    let id = need(buf, &mut pos)?;
    let kind = get_u8(buf, &mut pos)?;
    let body = match kind {
        KIND_PING => ReqBody::Ping,
        KIND_COMPILE => ReqBody::Compile(get_compile_req(buf, &mut pos)?),
        KIND_COMPILE_BATCH => {
            let n = need(buf, &mut pos)? as usize;
            if n > buf.len() {
                return Err("batch count exceeds payload".to_string());
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(get_compile_req(buf, &mut pos)?);
            }
            ReqBody::CompileBatch(items)
        }
        KIND_SIM => ReqBody::Sim(SimReq {
            source: get_string(buf, &mut pos)?,
            entry: get_string(buf, &mut pos)?,
            train: unzigzag(need(buf, &mut pos)?),
            arg: unzigzag(need(buf, &mut pos)?),
            config_id: get_u8(buf, &mut pos)?,
            machine: get_machine(buf, &mut pos)?,
        }),
        KIND_STATS => ReqBody::Stats,
        KIND_SHUTDOWN => ReqBody::Shutdown,
        other => return Err(format!("unknown request kind {other}")),
    };
    expect_end(buf, pos, "request")?;
    Ok(Request { id, body })
}

// ---------------------------------------------------------------------------
// Responses

/// Serializes a response into a frame payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = vec![PROTO_VERSION];
    put_varint(&mut out, resp.id);
    match &resp.body {
        RespBody::Err(msg) => {
            out.push(STATUS_ERR);
            put_string(&mut out, msg);
        }
        RespBody::Ok(ok) => {
            out.push(STATUS_OK);
            match ok {
                OkBody::Pong => out.push(KIND_PING),
                OkBody::Compile(c) => {
                    out.push(KIND_COMPILE);
                    put_compile_resp(&mut out, c);
                }
                OkBody::CompileBatch(items) => {
                    out.push(KIND_COMPILE_BATCH);
                    put_varint(&mut out, items.len() as u64);
                    for item in items {
                        match item {
                            Ok(c) => {
                                out.push(STATUS_OK);
                                put_compile_resp(&mut out, c);
                            }
                            Err(msg) => {
                                out.push(STATUS_ERR);
                                put_string(&mut out, msg);
                            }
                        }
                    }
                }
                OkBody::Sim(s) => {
                    out.push(KIND_SIM);
                    put_string(&mut out, &s.report_debug);
                    put_timings(&mut out, &s.timings);
                    put_bytes(&mut out, &s.baseline);
                    put_bytes(&mut out, &s.spt);
                    out.push(s.served_from_memory as u8);
                }
                OkBody::Stats(entries) => {
                    out.push(KIND_STATS);
                    put_varint(&mut out, entries.len() as u64);
                    for (name, value) in entries {
                        put_string(&mut out, name);
                        put_varint(&mut out, *value);
                    }
                }
                OkBody::ShuttingDown => out.push(KIND_SHUTDOWN),
            }
        }
    }
    out
}

/// Parses a frame payload into a [`Response`].
pub fn decode_response(buf: &[u8]) -> Result<Response, String> {
    let mut pos = 0;
    check_version(buf, &mut pos)?;
    let id = need(buf, &mut pos)?;
    let status = get_u8(buf, &mut pos)?;
    let body = match status {
        STATUS_ERR => RespBody::Err(get_string(buf, &mut pos)?),
        STATUS_OK => {
            let kind = get_u8(buf, &mut pos)?;
            let ok = match kind {
                KIND_PING => OkBody::Pong,
                KIND_COMPILE => OkBody::Compile(get_compile_resp(buf, &mut pos)?),
                KIND_COMPILE_BATCH => {
                    let n = need(buf, &mut pos)? as usize;
                    if n > buf.len() {
                        return Err("batch count exceeds payload".to_string());
                    }
                    let mut items = Vec::with_capacity(n);
                    for _ in 0..n {
                        items.push(match get_u8(buf, &mut pos)? {
                            STATUS_OK => Ok(get_compile_resp(buf, &mut pos)?),
                            STATUS_ERR => Err(get_string(buf, &mut pos)?),
                            other => return Err(format!("unknown batch item status {other}")),
                        });
                    }
                    OkBody::CompileBatch(items)
                }
                KIND_SIM => OkBody::Sim(SimResp {
                    report_debug: get_string(buf, &mut pos)?,
                    timings: get_timings(buf, &mut pos)?,
                    baseline: get_bytes(buf, &mut pos)?,
                    spt: get_bytes(buf, &mut pos)?,
                    served_from_memory: get_u8(buf, &mut pos)? != 0,
                }),
                KIND_STATS => {
                    let n = need(buf, &mut pos)? as usize;
                    if n > buf.len() {
                        return Err("stats count exceeds payload".to_string());
                    }
                    let mut entries = Vec::with_capacity(n);
                    for _ in 0..n {
                        let name = get_string(buf, &mut pos)?;
                        let value = need(buf, &mut pos)?;
                        entries.push((name, value));
                    }
                    OkBody::Stats(entries)
                }
                KIND_SHUTDOWN => OkBody::ShuttingDown,
                other => return Err(format!("unknown response kind {other}")),
            };
            RespBody::Ok(ok)
        }
        other => return Err(format!("unknown response status {other}")),
    };
    expect_end(buf, pos, "response")?;
    Ok(Response { id, body })
}

fn check_version(buf: &[u8], pos: &mut usize) -> Result<(), String> {
    let v = get_u8(buf, pos)?;
    if v != PROTO_VERSION {
        return Err(format!(
            "protocol version mismatch: peer speaks v{v}, this build v{PROTO_VERSION}"
        ));
    }
    Ok(())
}

fn expect_end(buf: &[u8], pos: usize, what: &str) -> Result<(), String> {
    if pos != buf.len() {
        return Err(format!(
            "{what} payload has {} trailing bytes",
            buf.len() - pos
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let bytes = encode_request(&req);
        assert_eq!(decode_request(&bytes).as_ref(), Ok(&req));
    }

    fn round_trip_response(resp: Response) {
        let bytes = encode_response(&resp);
        assert_eq!(decode_response(&bytes).as_ref(), Ok(&resp));
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request {
            id: 0,
            body: ReqBody::Ping,
        });
        round_trip_request(Request {
            id: 7,
            body: ReqBody::Stats,
        });
        round_trip_request(Request {
            id: u64::MAX,
            body: ReqBody::Shutdown,
        });
        round_trip_request(Request {
            id: 42,
            body: ReqBody::Compile(CompileReq {
                source: "func main() { return 1; }".to_string(),
                entry: "main".to_string(),
                train: -5,
                config_id: 2,
                want_module_text: true,
            }),
        });
        round_trip_request(Request {
            id: 44,
            body: ReqBody::CompileBatch(vec![]),
        });
        round_trip_request(Request {
            id: 45,
            body: ReqBody::CompileBatch(vec![
                CompileReq {
                    source: "fn main() -> int { return 1; }".to_string(),
                    entry: "main".to_string(),
                    train: 10,
                    config_id: 1,
                    want_module_text: false,
                },
                CompileReq {
                    source: "fn main() -> int { return 2; }".to_string(),
                    entry: "main".to_string(),
                    train: -3,
                    config_id: 0,
                    want_module_text: true,
                },
            ]),
        });
        round_trip_request(Request {
            id: 43,
            body: ReqBody::Sim(SimReq {
                source: "x".to_string(),
                entry: "main".to_string(),
                train: 100,
                arg: -100,
                config_id: 0,
                machine: MachineConfig::default(),
            }),
        });
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response {
            id: 1,
            body: RespBody::Ok(OkBody::Pong),
        });
        round_trip_response(Response {
            id: 2,
            body: RespBody::Err("boom".to_string()),
        });
        round_trip_response(Response {
            id: 3,
            body: RespBody::Ok(OkBody::Compile(CompileResp {
                report_debug: "CompilationReport { .. }".to_string(),
                analyze_text: "table".to_string(),
                module_text: String::new(),
                timings: StageTimings {
                    preprocess_s: 0.125,
                    profile_s: 1.5,
                    analysis_s: 0.0,
                    svp_s: f64::MIN_POSITIVE,
                    select_emit_s: 3.25,
                    search_visited: 999,
                    trace_capture_s: 0.5,
                    trace_replay_s: 0.25,
                    trace_cache_hits: 3,
                    trace_cache_misses: 1,
                    trace_cache_evictions: 0,
                    func_units_total: 12,
                    func_analysis_hits: 11,
                    func_analysis_misses: 1,
                    func_emit_hits: 4,
                    func_emit_misses: 1,
                },
                served_from_memory: true,
            })),
        });
        round_trip_response(Response {
            id: 30,
            body: RespBody::Ok(OkBody::CompileBatch(vec![
                Ok(CompileResp {
                    report_debug: "r1".to_string(),
                    analyze_text: "t1".to_string(),
                    module_text: String::new(),
                    timings: StageTimings {
                        func_units_total: 3,
                        func_analysis_hits: 2,
                        func_analysis_misses: 1,
                        ..StageTimings::default()
                    },
                    served_from_memory: false,
                }),
                Err("compile error: bad variant".to_string()),
            ])),
        });
        round_trip_response(Response {
            id: 31,
            body: RespBody::Ok(OkBody::CompileBatch(vec![])),
        });
        round_trip_response(Response {
            id: 4,
            body: RespBody::Ok(OkBody::Sim(SimResp {
                report_debug: "r".to_string(),
                timings: StageTimings::default(),
                baseline: vec![1, 2, 3],
                spt: vec![],
                served_from_memory: false,
            })),
        });
        round_trip_response(Response {
            id: 5,
            body: RespBody::Ok(OkBody::Stats(vec![
                ("hits".to_string(), 10),
                ("misses".to_string(), 2),
            ])),
        });
        round_trip_response(Response {
            id: 6,
            body: RespBody::Ok(OkBody::ShuttingDown),
        });
    }

    #[test]
    fn frame_round_trip_and_clean_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"first").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, b"third").unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"first"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"third"[..]));
        assert_eq!(
            read_frame(&mut r).unwrap(),
            None,
            "clean EOF between frames"
        );
    }

    #[test]
    fn truncated_frame_is_an_error_not_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();
        wire.truncate(wire.len() - 3);
        let mut r = &wire[..];
        assert!(read_frame(&mut r).is_err());

        // EOF inside the length prefix is also an error.
        let mut short = &wire[..2];
        assert!(read_frame(&mut short).is_err());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut wire = (u32::MAX).to_le_bytes().to_vec();
        wire.extend_from_slice(b"junk");
        let mut r = &wire[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn version_mismatch_is_loud() {
        let mut bytes = encode_request(&Request {
            id: 9,
            body: ReqBody::Ping,
        });
        bytes[0] = PROTO_VERSION.wrapping_add(1);
        let err = decode_request(&bytes).unwrap_err();
        assert!(err.contains("version"), "got: {err}");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode_request(&Request {
            id: 1,
            body: ReqBody::Ping,
        });
        bytes.push(0xff);
        assert!(decode_request(&bytes).unwrap_err().contains("trailing"));
    }
}

//! The daemon's socket front end: accept loop, per-connection readers, and
//! the bounded worker pool that executes requests.
//!
//! Thread layout, all owned by one [`ServerHandle`]:
//!
//! * **accept thread** — `accept()`s on the Unix listener, registers each
//!   connection and spawns its reader;
//! * **reader threads** (one per connection) — decode frames into jobs on
//!   the shared queue; a malformed frame earns an immediate error response
//!   and the connection keeps going;
//! * **worker threads** (`workers` of them, defaulting to
//!   [`spt_core::parallel::thread_count`]) — pop jobs, run them through
//!   [`CompileService::execute`] inside `catch_unwind`, and write the
//!   response frame under the connection's write lock (responses from
//!   different workers interleave per frame, never within one).
//!
//! A panicking request — whether from the `serve::request` fail point or a
//! real bug — is contained by the worker's `catch_unwind`: that request gets
//! an error response, the worker survives, and every other in-flight request
//! is untouched.
//!
//! Shutdown (a `Shutdown` request, or [`ServerHandle::shutdown`]) flips the
//! stop flag, `shutdown(2)`s every registered connection so blocked readers
//! unblock, self-connects once so the accept loop notices, and wakes the
//! workers; [`ServerHandle::join`] then reaps every thread and removes the
//! socket file, so a cleanly stopped daemon leaks neither a process nor a
//! socket.

use std::collections::VecDeque;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use crate::proto::{
    decode_request, encode_response, read_frame, write_frame, ReqBody, Request, RespBody, Response,
};
use crate::service::CompileService;

struct Job {
    conn: Arc<Mutex<UnixStream>>,
    request: Request,
}

struct Shared {
    service: Arc<CompileService>,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    stopping: AtomicBool,
    socket_path: PathBuf,
    conns: Mutex<Vec<Arc<Mutex<UnixStream>>>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    /// Flips the stop flag and unblocks every parked thread: readers via
    /// connection shutdown, the accept loop via a throwaway self-connect,
    /// workers via the queue condvar. Idempotent.
    fn stop(&self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        for conn in lock(&self.conns).iter() {
            let _ = lock(conn).shutdown(std::net::Shutdown::Both);
        }
        let _ = UnixStream::connect(&self.socket_path);
        self.queue_cv.notify_all();
    }
}

/// A running daemon: the listener plus its accept, reader, and worker
/// threads. Dropping the handle without [`ServerHandle::join`] detaches the
/// threads (the process-level `sptd` always joins).
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Binds `socket_path` and starts serving `service` on `workers` worker
/// threads (0 = [`spt_core::parallel::thread_count`]).
///
/// # Errors
///
/// Fails if the socket cannot be bound — including when the path already
/// exists, which usually means another daemon is (or died) there; refusing
/// to steal it beats silently orphaning a live instance.
pub fn serve(
    service: Arc<CompileService>,
    socket_path: impl Into<PathBuf>,
    workers: usize,
) -> io::Result<ServerHandle> {
    let socket_path = socket_path.into();
    let listener = UnixListener::bind(&socket_path)?;
    let workers = if workers == 0 {
        spt_core::parallel::thread_count()
    } else {
        workers
    };
    let shared = Arc::new(Shared {
        service,
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        stopping: AtomicBool::new(false),
        socket_path,
        conns: Mutex::new(Vec::new()),
        readers: Mutex::new(Vec::new()),
    });

    let accept = {
        let shared = shared.clone();
        std::thread::spawn(move || accept_loop(&listener, &shared))
    };
    let worker_handles = (0..workers)
        .map(|_| {
            let shared = shared.clone();
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();
    Ok(ServerHandle {
        shared,
        accept: Some(accept),
        workers: worker_handles,
    })
}

impl ServerHandle {
    /// The path the daemon is listening on.
    pub fn socket_path(&self) -> &std::path::Path {
        &self.shared.socket_path
    }

    /// Initiates shutdown without waiting (a client `Shutdown` request does
    /// the same from inside).
    pub fn shutdown(&self) {
        self.shared.stop();
    }

    /// Waits for the daemon to stop — until a `Shutdown` request arrives or
    /// [`ServerHandle::shutdown`] is called — then reaps every thread and
    /// removes the socket file.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        loop {
            let Some(reader) = lock(&self.shared.readers).pop() else {
                break;
            };
            let _ = reader.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let _ = std::fs::remove_file(&self.shared.socket_path);
    }

    /// [`ServerHandle::shutdown`] then [`ServerHandle::join`].
    pub fn shutdown_and_join(self) {
        self.shutdown();
        self.join();
    }
}

fn accept_loop(listener: &UnixListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let Ok(write_half) = stream.try_clone() else {
            continue;
        };
        let conn = Arc::new(Mutex::new(write_half));
        lock(&shared.conns).push(conn.clone());
        let shared2 = shared.clone();
        let reader = std::thread::spawn(move || reader_loop(stream, &conn, &shared2));
        lock(&shared.readers).push(reader);
    }
}

fn reader_loop(mut stream: UnixStream, conn: &Arc<Mutex<UnixStream>>, shared: &Arc<Shared>) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            // Clean close, read error, or our own shutdown(2): either way
            // this connection is done.
            Ok(None) | Err(_) => return,
        };
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        match decode_request(&payload) {
            Ok(request) => {
                let mut queue = lock(&shared.queue);
                queue.push_back(Job {
                    conn: conn.clone(),
                    request,
                });
                drop(queue);
                shared.queue_cv.notify_one();
            }
            Err(e) => {
                // The frame boundary is intact, so the connection can keep
                // going; only this request is lost. Id 0: an undecodable
                // request has no trustworthy id.
                respond(
                    conn,
                    &Response {
                        id: 0,
                        body: RespBody::Err(format!("bad request: {e}")),
                    },
                );
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.stopping.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(job) = job else { return };
        let is_shutdown = matches!(job.request.body, ReqBody::Shutdown);
        let body = catch_unwind(AssertUnwindSafe(|| {
            spt_core::fail_point!("serve::request", kind_name(&job.request.body));
            shared.service.execute(&job.request.body)
        }))
        .unwrap_or_else(|_| {
            RespBody::Err(format!(
                "internal: request handler panicked (kind {})",
                kind_name(&job.request.body)
            ))
        });
        respond(
            &job.conn,
            &Response {
                id: job.request.id,
                body,
            },
        );
        if is_shutdown {
            shared.stop();
        }
    }
}

fn respond(conn: &Arc<Mutex<UnixStream>>, response: &Response) {
    let payload = encode_response(response);
    // A write error means the client went away; nothing to do but drop the
    // response.
    let _ = write_frame(&mut *lock(conn), &payload);
}

fn kind_name(body: &ReqBody) -> &'static str {
    match body {
        ReqBody::Ping => "ping",
        ReqBody::Compile(_) => "compile",
        ReqBody::CompileBatch(_) => "compile_batch",
        ReqBody::Sim(_) => "sim",
        ReqBody::Stats => "stats",
        ReqBody::Shutdown => "shutdown",
    }
}

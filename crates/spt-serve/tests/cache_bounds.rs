//! Byte bounds on BOTH cache layers: driving many distinct programs through
//! a service with tiny budgets must evict — observably, via the counters —
//! at the in-memory tier and the disk tier, while each tier's accounted
//! bytes stay within its bound and the hottest entries stay served.

use spt_serve::{CompileReq, CompileService, OkBody, ReqBody, RespBody, ServiceConfig, SimReq};
use spt_sim::MachineConfig;
use std::collections::HashMap;

const PROGRAMS: usize = 20;
const MEM_BUDGET: u64 = 48 << 10;
const DISK_BUDGET: u64 = 12 << 10;

/// Distinct program per index: the seed constant changes the source hash
/// (and every key derived from it) while keeping shape and cost identical.
fn source(i: usize) -> String {
    format!(
        "global data[256]: int;
         fn main(n: int) -> int {{
             let s = {i};
             for (let j = 0; j < n; j = j + 1) {{
                 data[j % 256] = j * {i} + 3;
                 s = s + data[(j * 7) % 256] % 13;
             }}
             return s;
         }}"
    )
}

fn compile_req(i: usize) -> ReqBody {
    ReqBody::Compile(CompileReq {
        source: source(i),
        entry: "main".to_string(),
        train: 40,
        config_id: 1,
        want_module_text: false,
    })
}

fn sim_req(i: usize) -> ReqBody {
    ReqBody::Sim(SimReq {
        source: source(i),
        entry: "main".to_string(),
        train: 40,
        arg: 40,
        config_id: 1,
        machine: MachineConfig::default(),
    })
}

fn ok(resp: RespBody) -> OkBody {
    match resp {
        RespBody::Ok(body) => body,
        RespBody::Err(e) => panic!("request failed: {e}"),
    }
}

#[test]
fn both_cache_layers_enforce_their_byte_budgets() {
    let dir = std::env::temp_dir().join(format!("spt-serve-bounds-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let service = CompileService::new(ServiceConfig {
        cache_dir: Some(dir.clone()),
        disk_budget_bytes: Some(DISK_BUDGET),
        mem_budget_bytes: MEM_BUDGET,
        shards: 1, // one shard per tier, so the budget split is exact
    });
    for i in 0..PROGRAMS {
        ok(service.execute(&compile_req(i)));
        ok(service.execute(&sim_req(i)));
    }
    let stats: HashMap<String, u64> = service.stats().into_iter().collect();
    let get = |key: &str| stats.get(key).copied().unwrap_or(0);

    // Memory tier: the compiled units alone dwarf their half-budget share,
    // so evictions must have fired, and every tier's accounted bytes must
    // still be inside its share.
    let mem_evictions =
        get("mem_module_evictions") + get("mem_unit_evictions") + get("mem_sim_evictions");
    assert!(
        mem_evictions > 0,
        "{PROGRAMS} programs against a {MEM_BUDGET}-byte memory budget must evict: {stats:?}"
    );
    assert!(
        get("mem_unit_bytes") <= MEM_BUDGET / 2,
        "unit tier over budget: {stats:?}"
    );
    assert!(
        get("mem_module_bytes") <= MEM_BUDGET / 4,
        "module tier over budget: {stats:?}"
    );
    assert!(
        get("mem_sim_bytes") <= MEM_BUDGET / 4,
        "sim tier over budget: {stats:?}"
    );

    // Disk tier: traces and memos for 20 programs overflow the budget many
    // times over; eviction must be counted and the directory must fit.
    assert!(
        get("disk_budget_evictions") > 0,
        "disk budget evictions must be observable: {stats:?}"
    );
    assert!(
        get("disk_bytes") <= DISK_BUDGET,
        "disk tier over budget ({} > {DISK_BUDGET}): {stats:?}",
        get("disk_bytes")
    );

    // LRU, not random: the most recently inserted unit is still resident.
    match ok(service.execute(&compile_req(PROGRAMS - 1))) {
        OkBody::Compile(resp) => assert!(
            resp.served_from_memory,
            "the most recent unit must survive eviction"
        ),
        other => panic!("expected a compile response, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

//! The daemon's correctness bar: responses served through `sptd` — cold,
//! warm-from-memory, or warm-from-disk — are **byte-identical** to what a
//! single-process CLI compile produces, and N concurrent clients asking for
//! the same unit cost exactly one pipeline run.

use spt_core::pipeline::compile_and_transform;
use spt_core::{CompilerConfig, ProfilingInput};
use spt_serve::{serve, Client, CompileReq, CompileService, ServiceConfig, SimReq};
use spt_sim::{MachineConfig, SptSimulator};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};

/// A small cross-section of the suite — kept to three programs so the
/// debug-mode test stays quick; the full suite goes through the same code
/// path in `loadgen --digest` under CI.
const PROGRAMS: [&str; 3] = ["gap_s", "mcf_s", "twolf_s"];
const SIM_ARG: i64 = 60;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spt-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn compile_req(b: &spt_bench_suite::Benchmark) -> CompileReq {
    CompileReq {
        source: b.source.to_string(),
        entry: b.entry.to_string(),
        train: b.train_arg,
        config_id: 1,
        want_module_text: true,
    }
}

fn sim_req(b: &spt_bench_suite::Benchmark) -> SimReq {
    SimReq {
        source: b.source.to_string(),
        entry: b.entry.to_string(),
        train: b.train_arg,
        arg: SIM_ARG,
        config_id: 1,
        machine: MachineConfig::default(),
    }
}

/// Daemon-served analyze/compile/sim payloads equal the local single-process
/// pipeline's, byte for byte — cold and warm.
#[test]
fn daemon_responses_are_byte_identical_to_local_compiles() {
    let dir = temp_dir("equiv");
    let service = Arc::new(CompileService::new(ServiceConfig {
        cache_dir: Some(dir.join("cache")),
        ..ServiceConfig::default()
    }));
    let handle = serve(service, dir.join("sptd.sock"), 2).expect("daemon starts");
    let mut client = Client::connect(handle.socket_path()).expect("connects");

    for name in PROGRAMS {
        let bench = spt_bench_suite::benchmark(name).expect("exists");
        // The local reference: plain in-process compile, trace backend off —
        // the daemon's trace-backed tiers must be indistinguishable from it.
        let input = ProfilingInput::new(bench.entry, [bench.train_arg]);
        let local = compile_and_transform(bench.source, &input, &CompilerConfig::best())
            .unwrap_or_else(|e| panic!("{name}: local compile failed: {e}"));
        let sim = SptSimulator::new();
        let local_base = sim
            .run(&local.baseline, bench.entry, &[SIM_ARG])
            .expect("baseline sim");
        let local_spt = sim
            .run(&local.module, bench.entry, &[SIM_ARG])
            .expect("spt sim");

        let cold = client.compile(compile_req(&bench)).expect("daemon compile");
        assert!(
            !cold.served_from_memory,
            "{name}: first request cannot be warm"
        );
        assert_eq!(
            cold.report_debug,
            format!("{:?}", local.report),
            "{name}: report"
        );
        assert_eq!(
            cold.analyze_text,
            local.report.analyze_text(),
            "{name}: analyze"
        );
        assert_eq!(
            cold.module_text,
            spt_ir::printer::print_module(&local.module),
            "{name}: module text"
        );

        let warm = client.compile(compile_req(&bench)).expect("warm compile");
        assert!(
            warm.served_from_memory,
            "{name}: second request must be warm"
        );
        assert_eq!(warm.report_debug, cold.report_debug, "{name}: warm report");
        assert_eq!(warm.analyze_text, cold.analyze_text, "{name}: warm analyze");
        assert_eq!(
            warm.module_text, cold.module_text,
            "{name}: warm module text"
        );

        let sim_cold = client.sim(sim_req(&bench)).expect("daemon sim");
        assert_eq!(
            sim_cold.baseline,
            spt_trace::sim_to_bytes(&local_base),
            "{name}: baseline sim bytes"
        );
        assert_eq!(
            sim_cold.spt,
            spt_trace::sim_to_bytes(&local_spt),
            "{name}: spt sim bytes"
        );
        let sim_warm = client.sim(sim_req(&bench)).expect("warm sim");
        assert!(
            sim_warm.served_from_memory,
            "{name}: repeated sim must be warm"
        );
        assert_eq!(
            sim_warm.baseline, sim_cold.baseline,
            "{name}: warm baseline bytes"
        );
        assert_eq!(sim_warm.spt, sim_cold.spt, "{name}: warm spt bytes");
    }

    client.shutdown().expect("shutdown ack");
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Ident-boundary rename of `from` across the whole source (definition and
/// call sites), so a variant differs from the base in exactly one function.
fn rename_ident(source: &str, from: &str, to: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = String::with_capacity(source.len());
    let mut i = 0;
    while let Some(pos) = source[i..].find(from) {
        let abs = i + pos;
        let end = abs + from.len();
        let left_ok = abs == 0 || !is_ident_char(bytes[abs - 1] as char);
        let right_ok = end == bytes.len() || !is_ident_char(bytes[end] as char);
        out.push_str(&source[i..abs]);
        out.push_str(if left_ok && right_ok { to } else { from });
        i = end;
    }
    out.push_str(&source[i..]);
    out
}

/// First defined function whose name is not `entry`.
fn first_helper_name(source: &str, entry: &str) -> String {
    let mut off = 0;
    while let Some(pos) = source[off..].find("fn ") {
        let abs = off + pos;
        let name: String = source[abs + 3..]
            .chars()
            .take_while(|&c| is_ident_char(c))
            .collect();
        if !name.is_empty() && name != entry {
            return name;
        }
        off = abs + 3;
    }
    panic!("no helper function in source");
}

/// A cold `CompileBatch` of near-identical variants returns exactly the
/// bytes that individual `Compile` requests produce, reports per-item
/// failures without failing the batch, and dedups the variants' shared
/// functions through the function-granular cache.
#[test]
fn batched_variant_compiles_equal_individual_compiles() {
    let bench = spt_bench_suite::benchmark("gzip_s").expect("exists");
    let helper = first_helper_name(bench.source, bench.entry);
    // Variants share every function except one renamed helper. Renaming
    // changes only that function's IR (calls lower to FuncIds), so a batch
    // of K variants should cost ~1 module analysis plus K splices.
    let sources = [
        bench.source.to_string(),
        rename_ident(bench.source, &helper, &format!("{helper}_va")),
        rename_ident(bench.source, &helper, &format!("{helper}_vb")),
    ];
    let bad_source = "fn main(n: int) -> int { return oops; }".to_string();
    let req_for = |source: &str| CompileReq {
        source: source.to_string(),
        entry: bench.entry.to_string(),
        train: bench.train_arg,
        config_id: 1,
        want_module_text: true,
    };

    // Reference daemon: one individual compile per variant.
    let dir_a = temp_dir("batch-ref");
    let service = Arc::new(CompileService::new(ServiceConfig {
        cache_dir: Some(dir_a.join("cache")),
        ..ServiceConfig::default()
    }));
    let handle = serve(service, dir_a.join("sptd.sock"), 2).expect("daemon starts");
    let mut client = Client::connect(handle.socket_path()).expect("connects");
    let individual: Vec<_> = sources
        .iter()
        .map(|s| client.compile(req_for(s)).expect("individual compile"))
        .collect();
    let bad_err = match client.compile(req_for(&bad_source)) {
        Err(spt_serve::ClientError::Server(msg)) => msg,
        other => panic!("bad source should fail server-side, got {other:?}"),
    };
    client.shutdown().expect("shutdown ack");
    handle.join();
    let _ = std::fs::remove_dir_all(&dir_a);

    // Fresh daemon: the same work as one cold batch.
    let dir_b = temp_dir("batch-cold");
    let service = Arc::new(CompileService::new(ServiceConfig {
        cache_dir: Some(dir_b.join("cache")),
        ..ServiceConfig::default()
    }));
    let handle = serve(service, dir_b.join("sptd.sock"), 2).expect("daemon starts");
    let mut client = Client::connect(handle.socket_path()).expect("connects");
    let mut reqs: Vec<_> = sources.iter().map(|s| req_for(s)).collect();
    reqs.push(req_for(&bad_source));
    let batch = client.compile_batch(reqs).expect("batch call");
    assert_eq!(batch.len(), 4, "one result per submitted item");

    for (i, (item, reference)) in batch.iter().zip(&individual).enumerate() {
        let resp = item
            .as_ref()
            .unwrap_or_else(|e| panic!("item {i} failed: {e}"));
        assert_eq!(
            resp.report_debug, reference.report_debug,
            "variant {i}: batch report differs from individual compile"
        );
        assert_eq!(
            resp.analyze_text, reference.analyze_text,
            "variant {i}: batch analyze text differs"
        );
        assert_eq!(
            resp.module_text, reference.module_text,
            "variant {i}: batch module text differs"
        );
    }
    match &batch[3] {
        Err(msg) => assert_eq!(msg, &bad_err, "per-item error text differs"),
        Ok(_) => panic!("bad item must fail inside the batch"),
    }

    let stats: HashMap<String, u64> = client.stats().expect("stats").into_iter().collect();
    assert_eq!(
        stats.get("requests_compile_batch"),
        Some(&1),
        "batch counter: {stats:?}"
    );
    assert!(
        stats.get("mem_func_analysis_hits").copied().unwrap_or(0) > 0,
        "variants must dedup shared functions through the func cache: {stats:?}"
    );
    client.shutdown().expect("shutdown ack");
    handle.join();
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// N clients racing for the same cold unit: every response bit-identical,
/// and the daemon ran the pipeline exactly once (single-flight).
#[test]
fn concurrent_clients_get_identical_responses_from_one_compile() {
    const CLIENTS: usize = 6;
    let dir = temp_dir("flight");
    let service = Arc::new(CompileService::new(ServiceConfig {
        cache_dir: Some(dir.join("cache")),
        ..ServiceConfig::default()
    }));
    let handle = serve(service, dir.join("sptd.sock"), 4).expect("daemon starts");
    let socket = handle.socket_path().to_path_buf();
    let bench = spt_bench_suite::benchmark("gap_s").expect("exists");

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let socket = socket.clone();
            let barrier = Arc::clone(&barrier);
            let req = compile_req(&bench);
            std::thread::spawn(move || {
                let mut client = Client::connect(&socket).expect("connects");
                barrier.wait();
                client.compile(req).expect("compile succeeds")
            })
        })
        .collect();
    let responses: Vec<_> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .collect();

    let first = &responses[0];
    for resp in &responses[1..] {
        assert_eq!(resp.report_debug, first.report_debug, "reports diverged");
        assert_eq!(resp.analyze_text, first.analyze_text, "analyze diverged");
        assert_eq!(resp.module_text, first.module_text, "module text diverged");
    }

    let mut control = Client::connect(&socket).expect("connects");
    let stats: HashMap<String, u64> = control.stats().expect("stats").into_iter().collect();
    assert_eq!(
        stats.get("pipeline_runs"),
        Some(&1),
        "{CLIENTS} concurrent requests must cost exactly one pipeline run: {stats:?}"
    );
    assert_eq!(stats.get("flights_led"), Some(&1), "one leader: {stats:?}");
    control.shutdown().expect("shutdown ack");
    handle.join();
    assert!(
        !socket.exists(),
        "socket file must be removed on clean shutdown"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

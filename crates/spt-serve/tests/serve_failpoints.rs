//! Fault isolation of the daemon's request path, driven by the
//! `serve::request` and `serve::compile` fail points (armed only under the
//! `failpoints` feature).
//!
//! The contract: a panic inside ONE request — whether in the service logic
//! or the pipeline underneath — degrades exactly that request to an error
//! response. The worker survives, the connection survives, concurrent and
//! subsequent requests are untouched.

#![cfg(feature = "failpoints")]

use spt_core::failpoint::{self, Action};
use spt_serve::{serve, Client, ClientError, CompileReq, CompileService, ServiceConfig};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Barrier, Mutex};

/// The fail-point registry is process-global; these tests serialize on this
/// so one test's `scoped()` clear cannot disarm another's rules mid-flight.
static SERIAL: Mutex<()> = Mutex::new(());

fn temp_socket(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spt-serve-fp-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join("sptd.sock")
}

fn gap_compile() -> CompileReq {
    let bench = spt_bench_suite::benchmark("gap_s").expect("exists");
    CompileReq {
        source: bench.source.to_string(),
        entry: bench.entry.to_string(),
        train: bench.train_arg,
        config_id: 1,
        want_module_text: false,
    }
}

/// Arm `serve::request` to panic for `ping` only: the ping comes back as an
/// error response, while the same connection, other request kinds, and
/// other clients keep working — and disarming restores ping.
#[test]
fn panic_in_one_request_degrades_only_that_request() {
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let _guard = failpoint::scoped();
    let socket = temp_socket("panic");
    let service = Arc::new(CompileService::new(ServiceConfig {
        cache_dir: None,
        ..ServiceConfig::default()
    }));
    let handle = serve(service, &socket, 2).expect("daemon starts");
    let mut client = Client::connect(&socket).expect("connects");

    failpoint::set_keyed(
        "serve::request",
        "ping",
        Action::panic("injected request fault"),
    );
    match client.ping() {
        Err(ClientError::Server(msg)) => {
            assert!(
                msg.contains("panicked") && msg.contains("ping"),
                "error should name the contained panic: {msg}"
            );
        }
        other => panic!("expected a server error for the panicking ping, got {other:?}"),
    }

    // Same connection, different kind: untouched while the rule is armed.
    let stats: HashMap<String, u64> = client
        .stats()
        .expect("stats still works")
        .into_iter()
        .collect();
    assert_eq!(
        stats.get("errors_total"),
        Some(&0),
        "the panic never reached the service"
    );
    // A second client's compile is untouched too.
    let mut other = Client::connect(&socket).expect("connects");
    let resp = other
        .compile(gap_compile())
        .expect("compile unaffected by the armed ping fault");
    assert!(!resp.report_debug.is_empty());

    failpoint::clear("serve::request");
    client.ping().expect("ping works again once disarmed");

    client.shutdown().expect("shutdown ack");
    handle.join();
    assert!(!socket.exists(), "socket removed on clean shutdown");
}

/// Arm `serve::compile` with a delay so the second identical request
/// provably arrives while the leader is still computing: it must join the
/// leader's flight instead of compiling again.
#[test]
fn delayed_compile_forces_a_single_flight_join() {
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let _guard = failpoint::scoped();
    let socket = temp_socket("join");
    let service = Arc::new(CompileService::new(ServiceConfig {
        cache_dir: None,
        ..ServiceConfig::default()
    }));
    let handle = serve(service, &socket, 3).expect("daemon starts");

    failpoint::set_keyed("serve::compile", "main", Action::Delay(400));
    let barrier = Arc::new(Barrier::new(2));
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let socket = socket.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(&socket).expect("connects");
                barrier.wait();
                client.compile(gap_compile()).expect("compile succeeds")
            })
        })
        .collect();
    let responses: Vec<_> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .collect();
    assert_eq!(responses[0].report_debug, responses[1].report_debug);

    let mut control = Client::connect(&socket).expect("connects");
    let stats: HashMap<String, u64> = control.stats().expect("stats").into_iter().collect();
    assert_eq!(
        stats.get("pipeline_runs"),
        Some(&1),
        "one compile: {stats:?}"
    );
    assert!(
        stats.get("flights_joined").is_some_and(|&j| j >= 1),
        "the overlapping request must join the leader's flight: {stats:?}"
    );
    control.shutdown().expect("shutdown ack");
    handle.join();
}

//! Additional cost-model integration tests: ordering-dependence legality,
//! execution-probability overrides, static branch probabilities, and the
//! call-conservatism story behind Figure 19.

use spt_cost::dep_graph::{DepEdgeKind, DepGraph, DepGraphConfig, Profiles};
use spt_cost::{LoopCostModel, Partition};
use spt_ir::loops::LoopId;
use std::collections::HashMap;

fn graph_for(src: &str, fname: &str, config: &DepGraphConfig) -> (spt_ir::Module, DepGraph) {
    let module = spt_frontend::compile(src).unwrap();
    let func = module.func_by_name(fname).unwrap();
    let graph = DepGraph::build(&module, func, LoopId::new(0), Profiles::default(), config);
    (module, graph)
}

#[test]
fn order_edges_keep_stores_after_aliasing_loads() {
    // load a[i]; store a[i+1]: an anti-dependence. Moving the store must
    // drag the load along (the closure includes it), or reordering would
    // let the store clobber the value the load should see.
    let src = "
        global a[128]: int;
        fn f(n: int) -> int {
            let s = 0;
            for (let i = 0; i < n; i = i + 1) {
                let x = a[i % 128];
                a[(i + 1) % 128] = i;
                s = s + x % 7;
            }
            return s;
        }
    ";
    let (module, g) = graph_for(src, "f", &DepGraphConfig::default());
    let func = module.func(module.func_by_name("f").unwrap());
    let store_node = g
        .nodes
        .iter()
        .position(|&i| matches!(func.inst(i).kind, spt_ir::InstKind::Store { .. }))
        .expect("store");
    let load_node = g
        .nodes
        .iter()
        .position(|&i| matches!(func.inst(i).kind, spt_ir::InstKind::Load { .. }))
        .expect("load");
    assert!(
        g.order_edges.contains(&(load_node, store_node)),
        "anti-dependence must be an order edge: {:?}",
        g.order_edges
    );
    let closure = g.closure(&[store_node]);
    assert!(
        closure.contains(&load_node),
        "moving the store must move the load: {closure:?}"
    );
}

#[test]
fn exec_prob_overrides_reprice_violations() {
    let src = "
        global cell: int;
        fn f(n: int) -> int {
            let s = 0;
            for (let i = 0; i < n; i = i + 1) {
                s = s + cell;
                cell = s % 97;
            }
            return s;
        }
    ";
    let (module, base_graph) = graph_for(src, "f", &DepGraphConfig::default());
    let base_cost =
        LoopCostModel::new(base_graph.clone()).misspeculation_cost(&Partition::empty(&base_graph));

    // Override the store's execution probability down to 1%: the violation
    // almost never fires, so the cost collapses.
    let func = module.func(module.func_by_name("f").unwrap());
    let store_inst = base_graph
        .nodes
        .iter()
        .copied()
        .find(|&i| matches!(func.inst(i).kind, spt_ir::InstKind::Store { .. }))
        .expect("store");
    let mut overrides = HashMap::new();
    overrides.insert(store_inst, 0.01);
    let cfg = DepGraphConfig {
        exec_prob_overrides: overrides,
        ..DepGraphConfig::default()
    };
    let module2 = spt_frontend::compile(src).unwrap();
    let fid = module2.func_by_name("f").unwrap();
    let g2 = DepGraph::build(&module2, fid, LoopId::new(0), Profiles::default(), &cfg);
    let overridden_cost =
        LoopCostModel::new(g2.clone()).misspeculation_cost(&Partition::empty(&g2));
    assert!(
        overridden_cost < base_cost * 0.5,
        "override must cut the memory-dep cost: {base_cost} -> {overridden_cost}"
    );
}

#[test]
fn static_branch_probability_scales_costs() {
    let src = "
        global t: int;
        fn f(n: int) -> int {
            let s = 0;
            for (let i = 0; i < n; i = i + 1) {
                if (i % 2 == 0) {
                    t = s;
                }
                s = s + t % 5;
            }
            return s;
        }
    ";
    let cost_at = |p: f64| {
        let cfg = DepGraphConfig {
            static_branch_prob: p,
            ..DepGraphConfig::default()
        };
        let (_m, g) = graph_for(src, "f", &cfg);
        LoopCostModel::new(g.clone()).misspeculation_cost(&Partition::empty(&g))
    };
    let low = cost_at(0.1);
    let high = cost_at(0.9);
    assert!(
        high > low,
        "a likelier guarded store must cost more: {low} vs {high}"
    );
}

#[test]
fn pure_calls_do_not_pin_or_alias() {
    let src = "
        fn helper(x: int) -> int { return x * 3 + 1; }
        fn f(n: int) -> int {
            let s = 0;
            for (let i = 0; i < n; i = i + 1) {
                s = s + helper(i) % 7;
            }
            return s;
        }
    ";
    let (_m, g) = graph_for(src, "f", &DepGraphConfig::default());
    assert!(
        g.cross_edges
            .iter()
            .all(|e| e.kind != DepEdgeKind::CallEffect),
        "pure calls must not generate call-effect edges"
    );
    // And the loop is fully rescuable.
    let model = LoopCostModel::new(g);
    let all = Partition::from_seeds(&model.graph, model.vcs()).expect("legal");
    assert!(model.misspeculation_cost(&all) < 1e-9);
}

#[test]
fn impure_call_conservatism_is_the_fig19_outlier_mechanism() {
    // A call that *reads* globals: every store in the loop must be assumed
    // to feed it across iterations at probability 1, even though the
    // dynamic overlap may be nil. This is the paper's documented source of
    // cost over-estimation.
    let src = "
        global table[64]: int;
        global bias: int;
        fn peek(i: int) -> int { return table[i % 64] + bias; }
        fn f(n: int) -> int {
            let s = 0;
            for (let i = 0; i < n; i = i + 1) {
                table[(i + 32) % 64] = i;
                s = s + peek(i) % 9;
            }
            return s;
        }
    ";
    let (_m, g) = graph_for(src, "f", &DepGraphConfig::default());
    let call_cross = g
        .cross_edges
        .iter()
        .filter(|e| e.kind == DepEdgeKind::CallEffect)
        .count();
    assert!(call_cross > 0, "call-effect cross edges expected");
    let model = LoopCostModel::new(g);
    let best_possible: f64 = model
        .vcs()
        .iter()
        .filter_map(|&vc| Partition::from_seeds(&model.graph, &[vc]))
        .map(|p| model.misspeculation_cost(&p))
        .fold(f64::MAX, f64::min);
    assert!(
        best_possible > 0.2 * model.body_size() as f64,
        "conservatism keeps the estimate high: {best_possible} vs body {}",
        model.body_size()
    );
}

#[test]
fn suppressing_memory_sources_models_privatization() {
    let src = "
        global scratch[64]: int;
        fn f(n: int) -> int {
            let s = 0;
            for (let i = 0; i < n; i = i + 1) {
                scratch[i % 64] = i * 3;
                s = s + scratch[i % 64] % 5;
            }
            return s;
        }
    ";
    let (module, g) = graph_for(src, "f", &DepGraphConfig::default());
    let func = module.func(module.func_by_name("f").unwrap());
    let store = g
        .nodes
        .iter()
        .copied()
        .find(|&i| matches!(func.inst(i).kind, spt_ir::InstKind::Store { .. }))
        .expect("store");
    let mem_cross_before = g
        .cross_edges
        .iter()
        .filter(|e| e.kind == DepEdgeKind::Memory)
        .count();
    assert!(mem_cross_before > 0);

    let cfg = DepGraphConfig {
        suppressed_sources: [store].into_iter().collect(),
        ..DepGraphConfig::default()
    };
    let (_m2, g2) = graph_for(src, "f", &cfg);
    let mem_cross_after = g2
        .cross_edges
        .iter()
        .filter(|e| e.kind == DepEdgeKind::Memory)
        .count();
    assert_eq!(mem_cross_after, 0, "privatized store carries nothing");
}

//! The misspeculation cost model (§4 of the paper) — the central service
//! component of the cost-driven SPT compilation framework.
//!
//! Three layers:
//!
//! * [`dep_graph`] — builds, for one loop, a data-dependence graph whose
//!   true-dependence edges are annotated with probabilities (§4.1), from
//!   static type-based disambiguation optionally refined by dependence
//!   profiling (§7.3). Also computes per-node execution probabilities from
//!   the control-flow edge profile, intra-iteration dependence closures
//!   (used for partition legality) and movability.
//! * [`cost_graph`] — the cost graph (§4.2.2): pseudo nodes for violation
//!   candidates plus operation nodes, with the re-execution probability
//!   propagation `x = 1 - (1-x)(1 - r·v(p))` evaluated in topological order
//!   (§4.2.3) and the final cost `Σ v(c)·Cost(c)` (§4.2.4).
//! * [`model`] — [`model::LoopCostModel`] ties the two together for a given
//!   [`Partition`] (a pre-fork region), exposing the misspeculation cost and
//!   pre-fork size queries that drive the optimal-partition search.
//!
//! The worked example of §4.2.5 (Figures 5–6, cost = 0.58) is reproduced in
//! `cost_graph`'s tests and in the `cost_model_walkthrough` example.

pub mod cost_graph;
pub mod dep_graph;
pub mod model;

pub use cost_graph::{CostEvaluator, CostGraph, VcInfo};
pub use dep_graph::{DepEdge, DepEdgeKind, DepGraph, DepGraphConfig, Profiles};
pub use model::{LoopCostModel, Partition};

//! The per-loop cost model: [`DepGraph`] + [`CostGraph`] + [`Partition`].
//!
//! A [`Partition`] is a choice of pre-fork region — the set of loop-body
//! instructions executed sequentially before `SPT_FORK` (§1, Fig. 2). Legal
//! partitions are intra-iteration-dependence-closed node sets (§5).
//! [`LoopCostModel`] evaluates the misspeculation cost and the pre-fork size
//! of any partition; the optimal-partition search (crate `spt-partition`)
//! drives it.

use crate::cost_graph::{CostEvaluator, CostGraph};
use crate::dep_graph::DepGraph;

/// A pre-fork region over the nodes of a [`DepGraph`].
#[derive(Clone, Debug, PartialEq)]
pub struct Partition {
    in_prefork: Vec<bool>,
    size: u64,
}

impl Partition {
    /// The empty partition (everything speculative).
    pub fn empty(graph: &DepGraph) -> Self {
        Partition {
            in_prefork: vec![false; graph.nodes.len()],
            size: 0,
        }
    }

    /// Builds the partition containing the dependence closure of `seeds`.
    /// Returns `None` when the closure contains a pinned node (an illegal
    /// move, §5's legality constraint).
    pub fn from_seeds(graph: &DepGraph, seeds: &[usize]) -> Option<Self> {
        let closure = graph.closure(seeds);
        if !graph.closure_is_legal(&closure) {
            return None;
        }
        let mut in_prefork = vec![false; graph.nodes.len()];
        for &n in &closure {
            in_prefork[n] = true;
        }
        let size = graph.set_size(&closure);
        Some(Partition { in_prefork, size })
    }

    /// Whether node `n` is in the pre-fork region.
    pub fn contains(&self, n: usize) -> bool {
        self.in_prefork[n]
    }

    /// Static size (Σ node cost) of the pre-fork region.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The node indices in the pre-fork region, ascending.
    pub fn nodes(&self) -> Vec<usize> {
        self.in_prefork
            .iter()
            .enumerate()
            .filter_map(|(n, &b)| b.then_some(n))
            .collect()
    }

    /// Number of nodes in the pre-fork region.
    pub fn len(&self) -> usize {
        self.in_prefork.iter().filter(|&&b| b).count()
    }

    /// Returns `true` if the pre-fork region is empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Raw membership mask (one entry per dep-graph node).
    pub fn mask(&self) -> &[bool] {
        &self.in_prefork
    }
}

/// The assembled cost model of one loop.
#[derive(Clone, Debug)]
pub struct LoopCostModel {
    /// The annotated dependence graph.
    pub graph: DepGraph,
    cost_graph: CostGraph,
    vcs: Vec<usize>,
}

impl LoopCostModel {
    /// Assembles the cost graph for `graph` (§4.2.2): pseudo nodes for every
    /// violation candidate seeded with its violation probability, cross
    /// edges into the speculative iteration, intra edges for propagation.
    pub fn new(graph: DepGraph) -> Self {
        let vcs = graph.violation_candidates();
        let mut cg = CostGraph {
            num_nodes: graph.nodes.len(),
            node_cost: graph.cost.iter().map(|&c| c as f64).collect(),
            vcs: Vec::new(),
            vc_edges: Vec::new(),
            edges: Vec::new(),
        };
        let mut vc_pseudo = std::collections::HashMap::new();
        for &vc in &vcs {
            let idx = cg.add_vc(Some(vc), graph.exec_prob[vc].clamp(0.0, 1.0));
            vc_pseudo.insert(vc, idx);
        }
        for e in &graph.cross_edges {
            let pseudo = vc_pseudo[&e.src];
            cg.add_vc_edge(pseudo, e.dst, e.prob.clamp(0.0, 1.0));
        }
        for e in &graph.intra_edges {
            if e.src < e.dst {
                cg.add_edge(e.src, e.dst, e.prob.clamp(0.0, 1.0));
            }
        }
        LoopCostModel {
            graph,
            cost_graph: cg,
            vcs,
        }
    }

    /// The violation candidates, as dep-graph node indices in topological
    /// order.
    pub fn vcs(&self) -> &[usize] {
        &self.vcs
    }

    /// Misspeculation cost of a partition: the expected amount of computation
    /// re-executed per speculative iteration (§4.2.4).
    pub fn misspeculation_cost(&self, partition: &Partition) -> f64 {
        self.cost_graph.misspeculation_cost(partition.mask())
    }

    /// Per-node re-execution probabilities for a partition (§4.2.3);
    /// exposed for SVP target selection and diagnostics.
    pub fn reexec_probs(&self, partition: &Partition) -> Vec<f64> {
        self.cost_graph.reexec_probs(partition.mask())
    }

    /// Builds a reusable evaluation arena for this loop's cost graph; pair
    /// with [`LoopCostModel::misspeculation_cost_with`] when evaluating many
    /// partitions (the optimal-partition search does).
    pub fn evaluator(&self) -> CostEvaluator {
        self.cost_graph.evaluator()
    }

    /// Scratch-buffer variant of [`LoopCostModel::misspeculation_cost`].
    pub fn misspeculation_cost_with(&self, partition: &Partition, eval: &mut CostEvaluator) -> f64 {
        self.cost_graph
            .misspeculation_cost_with(partition.mask(), eval)
    }

    /// Static loop body size (Σ node latency).
    pub fn body_size(&self) -> u64 {
        self.graph.body_size
    }

    /// The underlying cost graph (read-only).
    pub fn cost_graph(&self) -> &CostGraph {
        &self.cost_graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dep_graph::{DepGraphConfig, Profiles};
    use spt_ir::loops::LoopId;

    fn model_for(src: &str, fname: &str) -> LoopCostModel {
        let module = spt_frontend::compile(src).unwrap();
        let func = module.func_by_name(fname).unwrap();
        let graph = DepGraph::build(
            &module,
            func,
            LoopId::new(0),
            Profiles::default(),
            &DepGraphConfig::default(),
        );
        LoopCostModel::new(graph)
    }

    const INDUCTION: &str = "
        fn f(n: int) -> int {
            let i = 0;
            let s = 0;
            while (i < n) {
                s = s + i * 3;
                i = i + 1;
            }
            return s;
        }
    ";

    #[test]
    fn moving_vcs_reduces_cost_to_zero() {
        let m = model_for(INDUCTION, "f");
        let empty = Partition::empty(&m.graph);
        let baseline = m.misspeculation_cost(&empty);
        assert!(baseline > 0.0, "loop-carried deps must cost something");

        let all_vcs = Partition::from_seeds(&m.graph, m.vcs()).expect("legal");
        let zero = m.misspeculation_cost(&all_vcs);
        assert!(
            zero < 1e-9,
            "all candidates pre-forked => no misspeculation, got {zero}"
        );
        assert!(all_vcs.size() > 0);
        assert!(all_vcs.size() < m.body_size());
    }

    #[test]
    fn partial_partitions_are_intermediate() {
        let m = model_for(INDUCTION, "f");
        let empty = Partition::empty(&m.graph);
        let baseline = m.misspeculation_cost(&empty);
        for &vc in m.vcs() {
            let p = Partition::from_seeds(&m.graph, &[vc]).expect("legal");
            let c = m.misspeculation_cost(&p);
            assert!(c <= baseline + 1e-9);
        }
    }

    #[test]
    fn partition_closure_is_dependence_closed() {
        let m = model_for(INDUCTION, "f");
        let p = Partition::from_seeds(&m.graph, m.vcs()).unwrap();
        // Every intra edge into the pre-fork region originates inside it.
        for e in &m.graph.intra_edges {
            if p.contains(e.dst) {
                assert!(
                    p.contains(e.src),
                    "intra edge {} -> {} violates closure",
                    e.src,
                    e.dst
                );
            }
        }
    }

    #[test]
    fn pinned_calls_make_partitions_illegal() {
        let src = "
            global t: int;
            fn bump(v: int) -> int { t = t + v; return t; }
            fn f(n: int) -> int {
                let s = 0;
                for (let i = 0; i < n; i = i + 1) {
                    s = s + bump(i);
                }
                return s;
            }
        ";
        let m = model_for(src, "f");
        // Seeding with the call node must fail.
        let module = spt_frontend::compile(src).unwrap();
        let func = module.func_by_name("f").unwrap();
        let f = module.func(func);
        let call_node = m
            .graph
            .nodes
            .iter()
            .position(|&i| matches!(f.inst(i).kind, spt_ir::InstKind::Call { .. }))
            .unwrap();
        assert!(Partition::from_seeds(&m.graph, &[call_node]).is_none());
    }

    #[test]
    fn partition_accessors() {
        let m = model_for(INDUCTION, "f");
        let empty = Partition::empty(&m.graph);
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
        assert_eq!(empty.size(), 0);
        let p = Partition::from_seeds(&m.graph, m.vcs()).unwrap();
        assert!(!p.is_empty());
        assert_eq!(p.nodes().len(), p.len());
        for n in p.nodes() {
            assert!(p.contains(n));
        }
    }

    #[test]
    fn fig2_style_loop_prefers_induction_in_prefork() {
        // The paper's Figure 2: cost0 accumulation over error[i][j] with the
        // induction increment at the end of the body. Moving `i = i + 1`
        // into the pre-fork region removes most re-executions.
        let src = "
            global error[4096]: float;
            global p[64]: float;
            global cost: float;
            fn f(n: int) -> int {
                let i = 0;
                while (i < n) {
                    let cost0 = 0.0;
                    for (let j = 0; j < i; j = j + 1) {
                        cost0 = cost0 + fabs(error[i * 64 + j] - p[j]);
                    }
                    cost = cost + cost0;
                    i = i + 1;
                }
                return i;
            }
        ";
        let module = spt_frontend::compile(src).unwrap();
        let func = module.func_by_name("f").unwrap();
        // Outer loop = the one whose header dominates: find loop with depth 1.
        let f = module.func(func);
        let cfg = spt_ir::Cfg::compute(f);
        let dom = spt_ir::DomTree::compute(&cfg);
        let forest = spt_ir::LoopForest::compute(f, &cfg, &dom);
        let outer = forest
            .ids()
            .find(|&l| forest.get(l).depth == 1)
            .expect("outer loop");
        let graph = DepGraph::build(
            &module,
            func,
            outer,
            Profiles::default(),
            &DepGraphConfig::default(),
        );
        let m = LoopCostModel::new(graph);
        let baseline = m.misspeculation_cost(&Partition::empty(&m.graph));
        assert!(baseline > 0.0);

        // Find the best single-VC move: it should cut cost substantially.
        let mut best = baseline;
        for &vc in m.vcs() {
            if let Some(p) = Partition::from_seeds(&m.graph, &[vc]) {
                best = best.min(m.misspeculation_cost(&p));
            }
        }
        assert!(
            best < baseline * 0.8,
            "one good move cuts cost: baseline={baseline}, best={best}"
        );
    }
}

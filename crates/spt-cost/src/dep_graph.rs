//! Per-loop data-dependence graphs with probability annotations (§4.1).
//!
//! Nodes are the instructions of the loop body in a fixed topological
//! (program) order. Edges are *true* dependences only — the SPT hardware
//! buffers speculative writes, so anti- and output-dependences cannot cause
//! misspeculation:
//!
//! * **register** edges follow SSA def–use chains; a use reached through a
//!   loop-header phi is a cross-iteration dependence (the φ's latch operand
//!   is the violation candidate);
//! * **memory** edges connect stores to loads. Without a dependence profile
//!   they come from type-based disambiguation (two accesses may depend iff
//!   their regions may alias) with conservative probability; with a profile
//!   (§7.3) each `(store, load)` pair carries its measured intra- and
//!   cross-iteration probabilities, and unobserved pairs carry none;
//! * **call-effect** edges conservatively connect calls that may read/write
//!   memory with every aliasing access — the source of the cost
//!   over-estimation the paper reports around Figure 19.
//!
//! The graph also records, per node, its execution probability per iteration
//! (from the edge profile, §4.2.3 step 1), its static cost, its movability
//! class, and the *intra-iteration dependence closure* used to form legal
//! partitions (§5: a legal partition preserves all forward intra-iteration
//! dependences).

use spt_ir::loops::LoopId;
use spt_ir::{
    BlockId, Cfg, DomTree, FuncId, InstId, InstKind, LoopForest, Module, Operand, RegionId,
};
use spt_profile::{DepProfile, EdgeProfile};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Kinds of true-dependence edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DepEdgeKind {
    /// SSA def–use.
    Register,
    /// Store-to-load through memory.
    Memory,
    /// Conservative dependence due to a call's memory effects.
    CallEffect,
}

/// A dependence edge between node indices of a [`DepGraph`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DepEdge {
    /// Source node (the producer; for cross edges, the violation candidate).
    pub src: usize,
    /// Destination node (the consumer in the speculative iteration).
    pub dst: usize,
    /// Dependence probability (§4.1's `p`).
    pub prob: f64,
    /// Edge kind.
    pub kind: DepEdgeKind,
}

/// Node classification for movability decisions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeClass {
    /// Ordinary computation, loads, stores, phis: freely movable into the
    /// pre-fork region (subject to closure legality).
    Movable,
    /// Conditional branches: never *moved*, but *replicable* into the
    /// pre-fork region when code control-dependent on them moves (§6.2,
    /// Fig. 12).
    Branch,
    /// Calls with memory effects: pinned in the post-fork region. This is
    /// the legality constraint that stops `x = bar(x)` from moving in the
    /// paper's Fig. 13 discussion.
    Pinned,
}

/// Profile inputs to graph construction. Either may be absent: the *basic*
/// compilation of §8 has only the edge profile; the *best* adds the
/// dependence profile.
#[derive(Clone, Copy, Debug, Default)]
pub struct Profiles<'a> {
    /// Control-flow edge profile.
    pub edges: Option<&'a EdgeProfile>,
    /// Data-dependence profile.
    pub deps: Option<&'a DepProfile>,
}

/// Tunables for static (profile-less) dependence estimation.
#[derive(Clone, Debug)]
pub struct DepGraphConfig {
    /// Probability assigned to a may-alias cross-iteration store→load pair
    /// when no dependence profile is available (conservative default 1.0,
    /// mirroring type-based analysis only).
    pub static_cross_prob: f64,
    /// Probability for static intra-iteration may-alias pairs.
    pub static_intra_prob: f64,
    /// Probability for call-effect edges.
    pub call_dep_prob: f64,
    /// Static probability of taking either arm of an unprofiled branch.
    pub static_branch_prob: f64,
    /// Cross-iteration dependences to suppress, keyed by the producing
    /// instruction: used by software value prediction (§7.2, the predicted
    /// definition's violations are repaired in-thread) and privatization.
    pub suppressed_sources: HashSet<InstId>,
    /// Per-instruction execution-probability overrides. Software value
    /// prediction registers its recovery store here with the measured
    /// misprediction rate, since the profile predates the rewrite.
    pub exec_prob_overrides: HashMap<InstId, f64>,
}

impl Default for DepGraphConfig {
    fn default() -> Self {
        DepGraphConfig {
            static_cross_prob: 1.0,
            static_intra_prob: 1.0,
            call_dep_prob: 1.0,
            static_branch_prob: 0.5,
            suppressed_sources: HashSet::new(),
            exec_prob_overrides: HashMap::new(),
        }
    }
}

/// The annotated dependence graph of one loop.
#[derive(Clone, Debug)]
pub struct DepGraph {
    /// The function containing the loop.
    pub func: FuncId,
    /// The loop.
    pub loop_id: LoopId,
    /// Loop-body instructions in topological (program) order.
    pub nodes: Vec<InstId>,
    /// Inverse of `nodes`.
    pub index: HashMap<InstId, usize>,
    /// Containing block of each node.
    pub node_block: Vec<BlockId>,
    /// Execution probability per iteration of each node (§4.2.3 step 1).
    pub exec_prob: Vec<f64>,
    /// Static cost (latency) of each node.
    pub cost: Vec<u64>,
    /// Movability class of each node.
    pub class: Vec<NodeClass>,
    /// Immediate controlling branch of each node (a chain towards the
    /// header gives the full control-dependence over-approximation).
    pub ctrl: Vec<Option<usize>>,
    /// Intra-iteration forward dependence edges (`src < dst`).
    pub intra_edges: Vec<DepEdge>,
    /// Cross-iteration dependence edges (source = violation candidate).
    pub cross_edges: Vec<DepEdge>,
    /// Intra-iteration *ordering* edges (`src < dst`): anti- (load→store)
    /// and output- (store→store) dependences between may-aliasing accesses,
    /// plus call-effect ordering. They never cause misspeculation (the SPT
    /// hardware buffers speculative writes) so they are excluded from the
    /// cost graph, but code motion must respect them, so the closure
    /// includes them.
    pub order_edges: Vec<(usize, usize)>,
    /// Static loop body size: `Σ cost`.
    pub body_size: u64,
}

impl DepGraph {
    /// Builds the dependence graph for `loop_id` of `func` in `module`.
    ///
    /// # Panics
    ///
    /// Panics if the ids are out of range for the module.
    pub fn build(
        module: &Module,
        func_id: FuncId,
        loop_id: LoopId,
        profiles: Profiles<'_>,
        config: &DepGraphConfig,
    ) -> DepGraph {
        let func = module.func(func_id);
        let cfg = Cfg::compute(func);
        let dom = DomTree::compute(&cfg);
        let forest = LoopForest::compute(func, &cfg, &dom);
        let l = forest.get(loop_id);
        let header = l.header;
        let body_blocks: Vec<BlockId> = program_order_blocks(&cfg, &forest, loop_id);
        let in_loop: HashSet<BlockId> = body_blocks.iter().copied().collect();

        // --- Node collection, program order. Header phis are excluded as
        // nodes (they are the cross-iteration carriers, modeled as edges).
        let mut nodes: Vec<InstId> = Vec::new();
        let mut node_block: Vec<BlockId> = Vec::new();
        let mut header_phis: Vec<InstId> = Vec::new();
        for &bb in &body_blocks {
            for &i in &func.block(bb).insts {
                let is_header_phi =
                    bb == header && matches!(func.inst(i).kind, InstKind::Phi { .. });
                if is_header_phi {
                    header_phis.push(i);
                } else {
                    nodes.push(i);
                    node_block.push(bb);
                }
            }
        }
        let index: HashMap<InstId, usize> =
            nodes.iter().enumerate().map(|(k, &i)| (i, k)).collect();

        // --- Execution probabilities.
        let exec_prob_block = block_exec_probs(
            func,
            &cfg,
            header,
            &body_blocks,
            &in_loop,
            profiles.edges.map(|e| (func_id, e)),
            config.static_branch_prob,
        );
        let mut exec_prob: Vec<f64> = node_block
            .iter()
            .map(|bb| exec_prob_block.get(bb).copied().unwrap_or(1.0))
            .collect();
        for (k, &i) in nodes.iter().enumerate() {
            if let Some(&p) = config.exec_prob_overrides.get(&i) {
                exec_prob[k] = p.clamp(0.0, 1.0);
            }
        }

        // --- Cost and class.
        let summaries = module.effect_summaries();
        let mut cost = Vec::with_capacity(nodes.len());
        let mut class = Vec::with_capacity(nodes.len());
        for (k, &i) in nodes.iter().enumerate() {
            let inst = func.inst(i);
            cost.push(inst.latency().max(1));
            // Instructions inside *inner* loops are pinned: their
            // intra-iteration dependences form cycles (through the inner
            // back edge) that the forward closure cannot legalize, and
            // hoisting an inner loop into the pre-fork region would defeat
            // the size threshold anyway.
            if forest.innermost(node_block[k]) != Some(loop_id) {
                class.push(NodeClass::Pinned);
                continue;
            }
            class.push(match &inst.kind {
                InstKind::Branch { .. } => NodeClass::Branch,
                InstKind::Call { callee, .. } => {
                    if summaries[callee.index()].is_pure() {
                        NodeClass::Movable
                    } else {
                        NodeClass::Pinned
                    }
                }
                InstKind::Jump { .. } => NodeClass::Branch,
                _ => NodeClass::Movable,
            });
        }
        let body_size: u64 = cost.iter().sum();

        // --- Control dependence (over-approximation): each node's
        // controlling branch is the terminator of its block's immediate
        // dominator within the loop, if that terminator is conditional.
        let mut ctrl: Vec<Option<usize>> = vec![None; nodes.len()];
        for (k, &bb) in node_block.iter().enumerate() {
            if bb == header {
                continue;
            }
            let mut cur = dom.idom(bb);
            while let Some(d) = cur {
                if !in_loop.contains(&d) {
                    break;
                }
                if let Some(term) = func.terminator(d) {
                    // An inner-loop exit test does not control blocks after
                    // the inner loop (they run once the inner loop
                    // terminates), so skip it unless the node is inside that
                    // inner loop.
                    let inner_exit_only = match forest.innermost(d) {
                        Some(il) if il != loop_id => !forest.get(il).contains(bb),
                        _ => false,
                    };
                    if matches!(func.inst(term).kind, InstKind::Branch { .. }) && !inner_exit_only {
                        ctrl[k] = index.get(&term).copied();
                        break;
                    }
                }
                if d == header {
                    break;
                }
                cur = dom.idom(d);
            }
        }

        let mut intra_edges: Vec<DepEdge> = Vec::new();
        let mut cross_edges: Vec<DepEdge> = Vec::new();

        // --- Register edges.
        // Map each header phi to the body definition feeding it from the
        // latch (the cross-iteration carrier).
        let latch: HashSet<BlockId> = l.latches.iter().copied().collect();
        let mut phi_source: HashMap<InstId, InstId> = HashMap::new();
        for &phi in &header_phis {
            if let InstKind::Phi { args } = &func.inst(phi).kind {
                for (pred, op) in args {
                    if latch.contains(pred) {
                        if let Operand::Inst(def) = op {
                            if index.contains_key(def) {
                                phi_source.insert(phi, *def);
                            }
                        }
                    }
                }
            }
        }
        let edge_r = |src: usize, dst: usize, exec_prob: &[f64]| -> f64 {
            if exec_prob[src] <= 0.0 {
                1.0
            } else {
                (exec_prob[dst] / exec_prob[src]).clamp(0.0, 1.0)
            }
        };
        for (dst, &i) in nodes.iter().enumerate() {
            func.inst(i).kind.for_each_operand(|op| {
                let Operand::Inst(def) = op else { return };
                if let Some(&src) = index.get(&def) {
                    // Plain intra-iteration def-use.
                    if src < dst {
                        intra_edges.push(DepEdge {
                            src,
                            dst,
                            prob: edge_r(src, dst, &exec_prob),
                            kind: DepEdgeKind::Register,
                        });
                    }
                    // src >= dst would be a cycle through an inner loop or a
                    // non-canonical shape; dropped (documented approximation).
                } else if let Some(&carrier) = phi_source.get(&def) {
                    // Use of a header phi: value produced by `carrier` in
                    // the previous iteration — a cross-iteration dependence.
                    if let Some(&src) = index.get(&carrier) {
                        if !config.suppressed_sources.contains(&carrier) {
                            cross_edges.push(DepEdge {
                                src,
                                dst,
                                prob: exec_prob[dst].clamp(0.0, 1.0),
                                kind: DepEdgeKind::Register,
                            });
                        }
                    }
                }
            });
        }

        // --- Memory edges.
        let mut stores: Vec<(usize, RegionId)> = Vec::new();
        let mut loads: Vec<(usize, RegionId)> = Vec::new();
        let mut effect_calls: Vec<(usize, bool, bool)> = Vec::new(); // (node, reads, writes)
        for (k, &i) in nodes.iter().enumerate() {
            match &func.inst(i).kind {
                InstKind::Store { region, .. } => stores.push((k, *region)),
                InstKind::Load { region, .. } => loads.push((k, *region)),
                InstKind::Call { callee, .. } => {
                    let s = summaries[callee.index()];
                    if s.reads_memory || s.writes_memory {
                        effect_calls.push((k, s.reads_memory, s.writes_memory));
                    }
                }
                _ => {}
            }
        }

        if let Some(deps) = profiles.deps {
            // Profiled memory dependences: exact pairs with measured
            // probabilities; unobserved pairs carry no edge.
            let pairs = deps.pairs_for_loop(func_id, loop_id);
            for ((store, load), (intra, cross_adj, _far)) in pairs {
                let (Some(&src), Some(&dst)) = (index.get(&store), index.get(&load)) else {
                    continue;
                };
                let writes = deps.store_count(func_id, store);
                if writes == 0 {
                    continue;
                }
                if intra > 0 && src < dst {
                    intra_edges.push(DepEdge {
                        src,
                        dst,
                        prob: (intra as f64 / writes as f64).clamp(0.0, 1.0),
                        kind: DepEdgeKind::Memory,
                    });
                }
                if cross_adj > 0 && !config.suppressed_sources.contains(&store) {
                    cross_edges.push(DepEdge {
                        src,
                        dst,
                        prob: (cross_adj as f64 / writes as f64).clamp(0.0, 1.0),
                        kind: DepEdgeKind::Memory,
                    });
                }
            }
        } else {
            // Static type-based disambiguation: may-alias iff same region or
            // either unknown.
            let alias = |a: RegionId, b: RegionId| a == b || a.is_unknown() || b.is_unknown();
            for &(s, rs) in &stores {
                if config.suppressed_sources.contains(&nodes[s]) {
                    continue;
                }
                for &(ld, rl) in &loads {
                    if !alias(rs, rl) {
                        continue;
                    }
                    if s < ld {
                        intra_edges.push(DepEdge {
                            src: s,
                            dst: ld,
                            prob: config.static_intra_prob,
                            kind: DepEdgeKind::Memory,
                        });
                    }
                    cross_edges.push(DepEdge {
                        src: s,
                        dst: ld,
                        prob: config.static_cross_prob,
                        kind: DepEdgeKind::Memory,
                    });
                }
            }
        }

        // Ordering edges (anti/output) are purely structural and always
        // static: the dependence profile only measures *true* dependences.
        let mut order_edges: Vec<(usize, usize)> = Vec::new();
        {
            let alias = |a: RegionId, b: RegionId| a == b || a.is_unknown() || b.is_unknown();
            // store -> store (output) and load -> store (anti).
            for &(s, rs) in &stores {
                for &(s2, rs2) in &stores {
                    if s < s2 && alias(rs, rs2) {
                        order_edges.push((s, s2));
                    }
                }
                for &(ld, rl) in &loads {
                    if ld < s && alias(rl, rs) {
                        order_edges.push((ld, s));
                    }
                }
            }
            // Calls with effects order against every access and each other.
            for &(c, reads, writes) in &effect_calls {
                for &(s, _) in &stores {
                    if reads || writes {
                        if s < c {
                            order_edges.push((s, c));
                        } else if c < s {
                            order_edges.push((c, s));
                        }
                    }
                }
                for &(ld, _) in &loads {
                    if writes {
                        if ld < c {
                            order_edges.push((ld, c));
                        } else if c < ld {
                            order_edges.push((c, ld));
                        }
                    }
                }
                for &(c2, _, _) in &effect_calls {
                    if c < c2 {
                        order_edges.push((c, c2));
                    }
                }
            }
        }

        // Calls with memory effects stay conservative in *both* modes: the
        // dependence profiler classifies same-frame accesses only, so callee
        // effects are unknown to the caller loop (the paper's Fig. 19
        // discussion).
        for &(c, reads, writes) in &effect_calls {
            if writes {
                for &(ld, _) in &loads {
                    if c < ld {
                        intra_edges.push(DepEdge {
                            src: c,
                            dst: ld,
                            prob: config.call_dep_prob,
                            kind: DepEdgeKind::CallEffect,
                        });
                    }
                    if !config.suppressed_sources.contains(&nodes[c]) {
                        cross_edges.push(DepEdge {
                            src: c,
                            dst: ld,
                            prob: config.call_dep_prob,
                            kind: DepEdgeKind::CallEffect,
                        });
                    }
                }
            }
            if reads {
                for &(s, _) in &stores {
                    if s < c {
                        intra_edges.push(DepEdge {
                            src: s,
                            dst: c,
                            prob: config.call_dep_prob,
                            kind: DepEdgeKind::CallEffect,
                        });
                    }
                    if !config.suppressed_sources.contains(&nodes[s]) {
                        cross_edges.push(DepEdge {
                            src: s,
                            dst: c,
                            prob: config.call_dep_prob,
                            kind: DepEdgeKind::CallEffect,
                        });
                    }
                }
            }
            // Calls both reading and writing depend on each other across
            // iterations.
            for &(c2, reads2, _w2) in &effect_calls {
                if writes && reads2 && c != c2 && !config.suppressed_sources.contains(&nodes[c]) {
                    cross_edges.push(DepEdge {
                        src: c,
                        dst: c2,
                        prob: config.call_dep_prob,
                        kind: DepEdgeKind::CallEffect,
                    });
                }
            }
        }

        DepGraph {
            func: func_id,
            loop_id,
            nodes,
            index,
            node_block,
            exec_prob,
            cost,
            class,
            ctrl,
            intra_edges,
            cross_edges,
            order_edges,
            body_size,
        }
    }

    /// The violation candidates: unique sources of cross-iteration edges, in
    /// node order (§4.2.1).
    pub fn violation_candidates(&self) -> Vec<usize> {
        let mut set = BTreeSet::new();
        for e in &self.cross_edges {
            set.insert(e.src);
        }
        set.into_iter().collect()
    }

    /// The intra-iteration dependence closure of `seed` nodes: everything
    /// that must accompany them into the pre-fork region — transitive data
    /// predecessors plus (replicated) controlling branches and *their*
    /// operand closures. The result includes the seeds and is sorted.
    ///
    /// One-shot convenience over [`DepGraph::closure_with`]; callers that
    /// compute many closures of the same graph should build
    /// [`DepGraph::closure_preds`] once and reuse scratch buffers.
    pub fn closure(&self, seeds: &[usize]) -> Vec<usize> {
        let preds = self.closure_preds();
        let mut in_set = vec![false; self.nodes.len()];
        let mut work = Vec::new();
        let mut out = Vec::new();
        self.closure_with(&preds, seeds, &mut in_set, &mut work, &mut out);
        out
    }

    /// The predecessor adjacency closure computations walk: intra-iteration
    /// dependence edges plus ordering (anti/output) edges, reversed. Ordering
    /// dependences matter because moving a memory operation requires moving
    /// the accesses it must stay after.
    pub fn closure_preds(&self) -> Vec<Vec<usize>> {
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for e in &self.intra_edges {
            preds[e.dst].push(e.src);
        }
        for &(src, dst) in &self.order_edges {
            preds[dst].push(src);
        }
        preds
    }

    /// Scratch-buffer variant of [`DepGraph::closure`]: writes the sorted
    /// closure of `seeds` into `out`. `preds` must come from
    /// [`DepGraph::closure_preds`]; `in_set` must be an all-false mask of
    /// `nodes.len()` entries and is restored to all-false before returning,
    /// so the same buffers serve any number of calls without reallocation.
    pub fn closure_with(
        &self,
        preds: &[Vec<usize>],
        seeds: &[usize],
        in_set: &mut [bool],
        work: &mut Vec<usize>,
        out: &mut Vec<usize>,
    ) {
        debug_assert!(in_set.iter().all(|&b| !b), "in_set must start clear");
        work.clear();
        out.clear();
        for &s in seeds {
            if !in_set[s] {
                in_set[s] = true;
                work.push(s);
            }
        }
        while let Some(n) = work.pop() {
            out.push(n);
            for &p in &preds[n] {
                if !in_set[p] {
                    in_set[p] = true;
                    work.push(p);
                }
            }
            // Control dependence: the chain of controlling branches.
            let mut c = self.ctrl[n];
            while let Some(b) = c {
                if !in_set[b] {
                    in_set[b] = true;
                    work.push(b);
                }
                c = self.ctrl[b];
            }
        }
        out.sort_unstable();
        for &n in out.iter() {
            in_set[n] = false;
        }
    }

    /// Returns `true` if every node of `set` may enter the pre-fork region
    /// (movable, or a replicable branch).
    pub fn closure_is_legal(&self, set: &[usize]) -> bool {
        set.iter().all(|&n| self.class[n] != NodeClass::Pinned)
    }

    /// Static size (Σ cost) of a node set.
    pub fn set_size(&self, set: &[usize]) -> u64 {
        set.iter().map(|&n| self.cost[n]).sum()
    }
}

/// Blocks of `loop_id` in *program order*: a topological order of the
/// forward CFG in which each inner loop is contiguous and precedes every
/// block that executes after it within one iteration of `loop_id`.
///
/// Plain RPO does not have that property: a DFS may explore an inner loop's
/// exit continuation only after fully finishing the loop body, which puts
/// the continuation *before* the body in reverse postorder. The graph's
/// forward (`src < dst`) dependence tests would then disagree with dynamic
/// intra-iteration execution order — most dangerously, a store in the
/// continuation would lose its anti-dependence (load→store) ordering edges
/// against loads inside the inner loop, letting the partitioner hoist the
/// store into the pre-fork region above same-iteration reads.
///
/// Construction: the loop's direct blocks and its immediate inner loops are
/// ordered by RPO index (an inner loop is keyed by its header, which any
/// RPO places before everything the loop dominates and before its exit
/// continuations); each inner loop then expands recursively in place.
fn program_order_blocks(cfg: &Cfg, forest: &LoopForest, loop_id: LoopId) -> Vec<BlockId> {
    /// The immediate child loop of `loop_id` containing `bb`, or `None`
    /// when `bb` belongs to `loop_id` directly.
    fn child_of(forest: &LoopForest, loop_id: LoopId, bb: BlockId) -> Option<LoopId> {
        let mut il = forest.innermost(bb)?;
        while il != loop_id {
            match forest.get(il).parent {
                Some(p) if p == loop_id => return Some(il),
                Some(p) => il = p,
                None => return None, // not nested under loop_id; treat as direct
            }
        }
        None
    }

    enum Item {
        Block(BlockId),
        Child(LoopId),
    }
    let l = forest.get(loop_id);
    let mut items: Vec<(usize, Item)> = Vec::new();
    let mut child_seen: HashSet<LoopId> = HashSet::new();
    for &bb in &l.blocks {
        match child_of(forest, loop_id, bb) {
            None => items.push((cfg.rpo_index[bb.index()], Item::Block(bb))),
            Some(child) => {
                if child_seen.insert(child) {
                    let h = forest.get(child).header;
                    items.push((cfg.rpo_index[h.index()], Item::Child(child)));
                }
            }
        }
    }
    items.sort_by_key(|&(k, _)| k);
    let mut out = Vec::with_capacity(l.blocks.len());
    for (_, item) in items {
        match item {
            Item::Block(bb) => out.push(bb),
            Item::Child(c) => out.extend(program_order_blocks(cfg, forest, c)),
        }
    }
    out
}

/// Per-block execution probability relative to the header, from profile or
/// static estimation.
fn block_exec_probs(
    func: &spt_ir::Function,
    cfg: &Cfg,
    header: BlockId,
    body_blocks: &[BlockId],
    in_loop: &HashSet<BlockId>,
    profile: Option<(FuncId, &EdgeProfile)>,
    static_branch_prob: f64,
) -> HashMap<BlockId, f64> {
    let mut out = HashMap::new();
    if let Some((func_id, edges)) = profile {
        if edges.block_count(func_id, header) > 0 {
            for &bb in body_blocks {
                out.insert(bb, edges.exec_prob(func_id, bb, header, 1.0));
            }
            return out;
        }
    }
    // Static: forward propagation from the header, skipping back edges.
    out.insert(header, 1.0);
    for &bb in body_blocks {
        out.entry(bb).or_insert(0.0);
    }
    for &bb in body_blocks {
        let p = out[&bb];
        if p <= 0.0 {
            continue;
        }
        let succs: Vec<BlockId> = func
            .successors(bb)
            .into_iter()
            .filter(|s| in_loop.contains(s) && *s != header)
            .collect();
        if succs.is_empty() {
            continue;
        }
        let share = if succs.len() > 1 {
            static_branch_prob
        } else {
            // A single in-loop successor still may share with a loop exit.
            let total_succs = func.successors(bb).len();
            if total_succs > 1 {
                static_branch_prob
            } else {
                1.0
            }
        };
        for s in succs {
            // Blocks are visited in program order (a forward-edge
            // topological order), so forward propagation sees final
            // predecessor values (back edges skipped).
            if cfg.rpo_index[s.index()] > cfg.rpo_index[bb.index()] {
                let e = out.entry(s).or_insert(0.0);
                *e = (*e + p * share).min(1.0);
            }
        }
    }
    out
}

/// The fraction of cross-iteration dependence mass (`Σ prob·exec(src)`) that
/// a set of violation candidates accounts for; a diagnostic used by SVP
/// target selection.
pub fn cross_mass(graph: &DepGraph, sources: &[usize]) -> f64 {
    let src_set: HashSet<usize> = sources.iter().copied().collect();
    let total: f64 = graph
        .cross_edges
        .iter()
        .map(|e| e.prob * graph.exec_prob[e.src])
        .sum();
    if total <= 0.0 {
        return 0.0;
    }
    let covered: f64 = graph
        .cross_edges
        .iter()
        .filter(|e| src_set.contains(&e.src))
        .map(|e| e.prob * graph.exec_prob[e.src])
        .sum();
    covered / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use spt_profile::{Interp, ProfileCollector, Val};

    fn build(src: &str, fname: &str) -> (Module, DepGraph) {
        let module = spt_frontend::compile(src).unwrap();
        let func = module.func_by_name(fname).unwrap();
        let graph = DepGraph::build(
            &module,
            func,
            LoopId::new(0),
            Profiles::default(),
            &DepGraphConfig::default(),
        );
        (module, graph)
    }

    fn build_profiled(src: &str, fname: &str, entry: &str, args: &[Val]) -> (Module, DepGraph) {
        let module = spt_frontend::compile(src).unwrap();
        let mut collector = ProfileCollector::new();
        {
            let interp = Interp::new(&module);
            interp.run(entry, args, &mut collector).unwrap();
        }
        let func = module.func_by_name(fname).unwrap();
        let graph = DepGraph::build(
            &module,
            func,
            LoopId::new(0),
            Profiles {
                edges: Some(&collector.edges),
                deps: Some(&collector.deps),
            },
            &DepGraphConfig::default(),
        );
        (module, graph)
    }

    const INDUCTION: &str = "
        global out[128]: int;
        fn f(n: int) -> int {
            let i = 0;
            let s = 0;
            while (i < n) {
                s = s + i * 3;
                i = i + 1;
            }
            return s;
        }
    ";

    #[test]
    fn induction_updates_are_violation_candidates() {
        let (module, g) = build(INDUCTION, "f");
        let func = module.func_by_name("f").unwrap();
        let f = module.func(func);
        let vcs = g.violation_candidates();
        // `i = i + 1` and `s = s + i*3` both feed the next iteration.
        assert_eq!(vcs.len(), 2, "two loop-carried scalar defs");
        for &vc in &vcs {
            assert!(matches!(f.inst(g.nodes[vc]).kind, InstKind::Binary { .. }));
        }
        assert!(!g.cross_edges.is_empty());
    }

    #[test]
    fn closure_includes_data_predecessors() {
        let (_m, g) = build(INDUCTION, "f");
        let vcs = g.violation_candidates();
        for &vc in &vcs {
            let cl = g.closure(&[vc]);
            assert!(cl.contains(&vc));
            // Closure legality: pure arithmetic — movable.
            assert!(g.closure_is_legal(&cl));
            // Closure size bounded by body.
            assert!(g.set_size(&cl) <= g.body_size);
        }
    }

    #[test]
    fn static_memory_deps_are_conservative() {
        // a[i] written, a[j] read: same region, no profile => assumed
        // cross-iteration dependent with probability 1.
        let src = "
            global a[64]: int;
            global b[64]: int;
            fn f(n: int) -> int {
                let s = 0;
                for (let i = 1; i < n; i = i + 1) {
                    a[i] = i;
                    s = s + b[i];
                }
                return s;
            }
        ";
        let (_m, g) = build(src, "f");
        // The store to `a` and the load of `b` are in different regions: no
        // memory cross edge between them.
        let mem_cross: Vec<&DepEdge> = g
            .cross_edges
            .iter()
            .filter(|e| e.kind == DepEdgeKind::Memory)
            .collect();
        assert!(
            mem_cross.is_empty(),
            "different regions must not alias: {mem_cross:?}"
        );
    }

    #[test]
    fn same_region_static_dep_appears() {
        let src = "
            global a[64]: int;
            fn f(n: int) -> int {
                let s = 0;
                for (let i = 1; i < n; i = i + 1) {
                    a[i] = i;
                    s = s + a[i - 1];
                }
                return s;
            }
        ";
        let (_m, g) = build(src, "f");
        let mem_cross = g
            .cross_edges
            .iter()
            .filter(|e| e.kind == DepEdgeKind::Memory)
            .count();
        assert!(
            mem_cross >= 1,
            "same-region store->load must be a candidate"
        );
        let vcs = g.violation_candidates();
        assert!(!vcs.is_empty());
    }

    #[test]
    fn profiling_removes_false_deps() {
        // Store a[i], load a[i] of the SAME iteration: profiled as intra
        // only, so the cross edge disappears versus the static graph.
        let src = "
            global a[256]: int;
            fn f(n: int) -> int {
                let s = 0;
                for (let i = 0; i < n; i = i + 1) {
                    a[i] = i * 2;
                    s = s + a[i];
                }
                return s;
            }
        ";
        let (_m, static_g) = build(src, "f");
        let (_m2, prof_g) = build_profiled(src, "f", "f", &[Val::from_i64(200)]);
        let static_mem_cross = static_g
            .cross_edges
            .iter()
            .filter(|e| e.kind == DepEdgeKind::Memory)
            .count();
        let prof_mem_cross = prof_g
            .cross_edges
            .iter()
            .filter(|e| e.kind == DepEdgeKind::Memory)
            .count();
        assert!(static_mem_cross >= 1);
        assert_eq!(prof_mem_cross, 0, "profile proves the dep is intra-only");
        // And the intra edge exists with probability ~1.
        let intra = prof_g
            .intra_edges
            .iter()
            .find(|e| e.kind == DepEdgeKind::Memory)
            .expect("profiled intra edge");
        assert!(intra.prob > 0.95);
    }

    #[test]
    fn profiled_cross_probability_measured() {
        // a[i] reads a[i-1]: always cross-adjacent => prob ~1.
        let src = "
            global a[256]: int;
            fn f(n: int) -> int {
                a[0] = 1;
                for (let i = 1; i < n; i = i + 1) {
                    a[i] = a[i - 1] + 1;
                }
                return a[n - 1];
            }
        ";
        let (_m, g) = build_profiled(src, "f", "f", &[Val::from_i64(200)]);
        let cross = g
            .cross_edges
            .iter()
            .find(|e| e.kind == DepEdgeKind::Memory)
            .expect("cross memory edge");
        assert!(cross.prob > 0.95, "prob = {}", cross.prob);
    }

    #[test]
    fn store_after_inner_loop_keeps_anti_dependence() {
        // Found by corpus fuzzing (seed 900): the guarded store executes
        // AFTER the inner loop's loads within one outer iteration, but raw
        // RPO ordered its block before the inner-loop body, dropping the
        // load→store anti-dependence. Without that ordering edge the
        // partitioner may hoist the store into the pre-fork region above
        // same-iteration reads of the same array — a miscompile.
        let src = "
            global b[256]: int;
            fn f(n: int) -> int {
                let s = 0;
                for (let i = 0; i < n; i = i + 1) {
                    for (let j = 0; j < 4; j = j + 1) {
                        s = s + b[j];
                    }
                    if (i % 6 == 0) { b[(i * 2) % 256] = 3; }
                }
                return s;
            }
        ";
        let module = spt_frontend::compile(src).unwrap();
        let fid = module.func_by_name("f").unwrap();
        let func = module.func(fid);
        let cfg = spt_ir::Cfg::compute(func);
        let dom = spt_ir::DomTree::compute(&cfg);
        let forest = spt_ir::LoopForest::compute(func, &cfg, &dom);
        let outer = forest.ids().find(|&l| forest.get(l).depth == 1).unwrap();
        let g = DepGraph::build(
            &module,
            fid,
            outer,
            Profiles::default(),
            &DepGraphConfig::default(),
        );
        let store = g
            .nodes
            .iter()
            .position(|&i| matches!(func.inst(i).kind, InstKind::Store { .. }))
            .expect("store in body");
        let load = g
            .nodes
            .iter()
            .position(|&i| matches!(func.inst(i).kind, InstKind::Load { .. }))
            .expect("load in body");
        // Program order: the inner-loop load precedes the store.
        assert!(
            load < store,
            "node order must reflect intra-iteration execution order \
             (load at {load}, store at {store})"
        );
        // The anti-dependence ordering edge exists...
        assert!(
            g.order_edges.contains(&(load, store)),
            "anti-dependence load->store missing: {:?}",
            g.order_edges
        );
        // ...so the store's closure reaches the pinned inner-loop load and
        // the store can never move into the pre-fork region.
        let cl = g.closure(&[store]);
        assert!(cl.contains(&load));
        assert!(!g.closure_is_legal(&cl));
    }

    #[test]
    fn impure_calls_are_pinned() {
        let src = "
            global t: int;
            fn bump(v: int) -> int { t = t + v; return t; }
            fn f(n: int) -> int {
                let s = 0;
                for (let i = 0; i < n; i = i + 1) {
                    s = s + bump(i);
                }
                return s;
            }
        ";
        let module = spt_frontend::compile(src).unwrap();
        let func = module.func_by_name("f").unwrap();
        let g = DepGraph::build(
            &module,
            func,
            LoopId::new(0),
            Profiles::default(),
            &DepGraphConfig::default(),
        );
        let f = module.func(func);
        let call_node = g
            .nodes
            .iter()
            .position(|&i| matches!(f.inst(i).kind, InstKind::Call { .. }))
            .expect("call in body");
        assert_eq!(g.class[call_node], NodeClass::Pinned);
        // The call is a violation candidate (writes memory read next
        // iteration) but its closure is illegal to move.
        let cl = g.closure(&[call_node]);
        assert!(!g.closure_is_legal(&cl));
    }

    #[test]
    fn exec_prob_reflects_branches_statically() {
        let src = "
            global a[64]: int;
            fn f(n: int) -> int {
                let s = 0;
                for (let i = 0; i < n; i = i + 1) {
                    if (i % 2 == 0) { s = s + a[i]; }
                }
                return s;
            }
        ";
        let (_m, g) = build(src, "f");
        // Some node (the guarded add/load) has exec prob 0.5 statically.
        assert!(
            g.exec_prob.iter().any(|&p| (p - 0.5).abs() < 1e-9),
            "probs: {:?}",
            g.exec_prob
        );
    }

    #[test]
    fn exec_prob_uses_profile_when_present() {
        let src = "
            global a[1024]: int;
            fn f(n: int) -> int {
                let s = 0;
                for (let i = 0; i < n; i = i + 1) {
                    if (i % 10 == 0) { s = s + a[i]; }
                }
                return s;
            }
        ";
        let (_m, g) = build_profiled(src, "f", "f", &[Val::from_i64(1000)]);
        assert!(
            g.exec_prob.iter().any(|&p| (p - 0.1).abs() < 0.02),
            "profiled rare branch ~0.1: {:?}",
            g.exec_prob
        );
    }

    #[test]
    fn suppressed_sources_drop_cross_edges() {
        let (_m, g) = build(INDUCTION, "f");
        let vcs = g.violation_candidates();
        assert!(!vcs.is_empty());
        // Rebuild with every VC suppressed (as SVP would).
        let src_insts: HashSet<InstId> = vcs.iter().map(|&v| g.nodes[v]).collect();
        let module = spt_frontend::compile(INDUCTION).unwrap();
        let func = module.func_by_name("f").unwrap();
        let g2 = DepGraph::build(
            &module,
            func,
            LoopId::new(0),
            Profiles::default(),
            &DepGraphConfig {
                suppressed_sources: src_insts,
                ..DepGraphConfig::default()
            },
        );
        assert!(g2.cross_edges.is_empty());
    }

    #[test]
    fn cross_mass_fraction() {
        let (_m, g) = build(INDUCTION, "f");
        let vcs = g.violation_candidates();
        assert!((cross_mass(&g, &vcs) - 1.0).abs() < 1e-9);
        assert!(cross_mass(&g, &[]) < 1e-9);
    }
}

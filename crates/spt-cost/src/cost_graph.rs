//! The cost graph and re-execution probability propagation (§4.2).
//!
//! The graph has two node classes:
//!
//! * **pseudo nodes**, one per violation candidate (the source of a
//!   cross-iteration true dependence, §4.2.1), carrying the candidate's
//!   *violation probability* — how often, per iteration, the main thread
//!   executes the candidate and modifies its result;
//! * **operation nodes** — the instructions of the speculative iteration
//!   that re-execute when a dependence they consume was violated.
//!
//! Edges carry the conditional probability `r` that a re-execution of the
//! source causes the target to be re-executed (§4.2.2). Re-execution
//! probabilities propagate in topological order with the independence
//! approximation `x := 1 - (1-x)(1 - r·v(p))` (§4.2.3), and the
//! misspeculation cost of a partition is `Σ v(c)·Cost(c)` over operation
//! nodes (§4.2.4).

/// A violation candidate's pseudo node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VcInfo {
    /// The operation node that *is* the candidate statement (used to decide
    /// whether the candidate sits in the pre-fork region). `None` for
    /// candidates without a body node (e.g. synthetic test graphs).
    pub node: Option<usize>,
    /// Violation probability: how often per iteration the main thread
    /// executes the candidate and modifies its result.
    pub violation_prob: f64,
}

/// The cost graph for one loop. Operation nodes are indexed `0..num_nodes`
/// and must be topologically ordered with respect to `edges`
/// (`src < dst` for every intra edge).
#[derive(Clone, Debug, Default)]
pub struct CostGraph {
    /// Number of operation nodes.
    pub num_nodes: usize,
    /// `Cost(c)` per operation node (§4.2.4; we use static latencies).
    pub node_cost: Vec<f64>,
    /// The violation-candidate pseudo nodes.
    pub vcs: Vec<VcInfo>,
    /// Edges from pseudo node `vc` to operation node `dst` with probability
    /// `r`: the cross-iteration dependence edges seeding the graph.
    pub vc_edges: Vec<(usize, usize, f64)>,
    /// Intra-iteration propagation edges `(src, dst, r)` with `src < dst`.
    pub edges: Vec<(usize, usize, f64)>,
}

impl CostGraph {
    /// Creates an empty cost graph with `num_nodes` operation nodes of unit
    /// cost.
    pub fn with_unit_costs(num_nodes: usize) -> Self {
        CostGraph {
            num_nodes,
            node_cost: vec![1.0; num_nodes],
            vcs: Vec::new(),
            vc_edges: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds a violation candidate, returning its pseudo-node index.
    pub fn add_vc(&mut self, node: Option<usize>, violation_prob: f64) -> usize {
        self.vcs.push(VcInfo {
            node,
            violation_prob,
        });
        self.vcs.len() - 1
    }

    /// Adds a seeding edge from pseudo node `vc` to operation node `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `vc` or `dst` is out of range.
    pub fn add_vc_edge(&mut self, vc: usize, dst: usize, r: f64) {
        assert!(vc < self.vcs.len() && dst < self.num_nodes);
        self.vc_edges.push((vc, dst, r));
    }

    /// Adds an intra-iteration propagation edge.
    ///
    /// # Panics
    ///
    /// Panics if the edge is not forward (`src < dst`) or out of range.
    pub fn add_edge(&mut self, src: usize, dst: usize, r: f64) {
        assert!(src < dst && dst < self.num_nodes, "edges must be forward");
        self.edges.push((src, dst, r));
    }

    /// Computes the re-execution probability of every operation node for the
    /// given partition (§4.2.3).
    ///
    /// `node_in_prefork[i]` marks operation nodes moved into the pre-fork
    /// region. A violation candidate in the pre-fork region is *disarmed*:
    /// its result is computed by the main thread before the speculative
    /// thread starts, so it can no longer be violated (§4.2.3 step 3).
    /// Ordinary consumer nodes are **not** exempted by pre-fork membership —
    /// the speculative thread executes the whole next iteration, pre-fork
    /// part included, so a consumer of a violated value re-executes wherever
    /// it sits.
    ///
    /// # Panics
    ///
    /// Panics if `node_in_prefork.len() != num_nodes`.
    pub fn reexec_probs(&self, node_in_prefork: &[bool]) -> Vec<f64> {
        assert_eq!(node_in_prefork.len(), self.num_nodes);
        // Step 3: initialize pseudo-node probabilities.
        let vc_prob: Vec<f64> = self
            .vcs
            .iter()
            .map(|vc| match vc.node {
                Some(n) if node_in_prefork[n] => 0.0,
                _ => vc.violation_prob,
            })
            .collect();

        // Step 4: propagate in topological order. Operation nodes are
        // already topologically sorted (forward edges only), so a single
        // sweep accumulating "survival" products suffices.
        let mut survival = vec![1.0f64; self.num_nodes]; // Π (1 - r·v(p))
        for &(vc, dst, r) in &self.vc_edges {
            survival[dst] *= 1.0 - r * vc_prob[vc];
        }
        let mut v = vec![0.0f64; self.num_nodes];
        // Bucket edges by source for the sweep.
        let mut out: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.num_nodes];
        for &(src, dst, r) in &self.edges {
            out[src].push((dst, r));
        }
        for n in 0..self.num_nodes {
            v[n] = 1.0 - survival[n];
            if v[n] > 0.0 {
                for &(dst, r) in &out[n] {
                    survival[dst] *= 1.0 - r * v[n];
                }
            }
        }
        v
    }

    /// The misspeculation cost of a partition: `Σ v(c)·Cost(c)` over
    /// operation nodes (§4.2.4). Pseudo nodes are excluded by construction.
    pub fn misspeculation_cost(&self, node_in_prefork: &[bool]) -> f64 {
        let v = self.reexec_probs(node_in_prefork);
        v.iter().zip(&self.node_cost).map(|(p, c)| p * c).sum()
    }

    /// Convenience: the cost of the empty partition (nothing pre-forked).
    pub fn baseline_cost(&self) -> f64 {
        self.misspeculation_cost(&vec![false; self.num_nodes])
    }

    /// Builds a reusable evaluation arena for this graph. One evaluator
    /// serves any number of [`CostGraph::reexec_probs_into`] /
    /// [`CostGraph::misspeculation_cost_with`] calls without reallocating.
    pub fn evaluator(&self) -> CostEvaluator {
        let n = self.num_nodes;
        let words = n.div_ceil(64);
        // CSR out-adjacency, preserving per-source edge order so the
        // propagation multiplies survival factors in exactly the same order
        // as the one-shot sweep of `reexec_probs`.
        let mut out_start = vec![0usize; n + 1];
        for &(src, _, _) in &self.edges {
            out_start[src + 1] += 1;
        }
        for i in 0..n {
            out_start[i + 1] += out_start[i];
        }
        let mut next = out_start.clone();
        let mut out_edges = vec![(0usize, 0.0f64); self.edges.len()];
        for &(src, dst, r) in &self.edges {
            out_edges[next[src]] = (dst, r);
            next[src] += 1;
        }
        // Per-candidate reachability: the operation nodes whose re-execution
        // probability can be non-zero when that candidate alone is armed.
        // Seeds are the candidate's cross-edge targets; the graph is
        // topologically ordered, so one ascending sweep closes each set.
        let mut vc_reach = vec![0u64; self.vcs.len() * words];
        for (k, row) in vc_reach.chunks_mut(words.max(1)).enumerate() {
            if words == 0 {
                break;
            }
            for &(vc, dst, _) in &self.vc_edges {
                if vc == k {
                    row[dst / 64] |= 1u64 << (dst % 64);
                }
            }
            for node in 0..n {
                if row[node / 64] & (1u64 << (node % 64)) != 0 {
                    for &(dst, _) in &out_edges[out_start[node]..out_start[node + 1]] {
                        row[dst / 64] |= 1u64 << (dst % 64);
                    }
                }
            }
        }
        CostEvaluator {
            num_nodes: n,
            num_vcs: self.vcs.len(),
            words,
            out_start,
            out_edges,
            vc_reach,
            vc_prob: vec![0.0; self.vcs.len()],
            survival: vec![1.0; n],
            v: vec![0.0; n],
            reach: vec![0u64; words],
        }
    }

    /// Scratch-buffer variant of [`CostGraph::reexec_probs`]: evaluates into
    /// `eval`'s arena and returns the per-node probabilities as a slice.
    ///
    /// The propagation sweep is restricted to nodes reachable from
    /// still-armed violation candidates; every skipped node keeps
    /// `survival = 1`, whose factors are exactly `1.0`, so the result is
    /// bit-identical to the full sweep.
    ///
    /// # Panics
    ///
    /// Panics if `eval` was built from a graph of different shape or
    /// `node_in_prefork.len() != num_nodes`.
    pub fn reexec_probs_into<'e>(
        &self,
        node_in_prefork: &[bool],
        eval: &'e mut CostEvaluator,
    ) -> &'e [f64] {
        assert_eq!(node_in_prefork.len(), self.num_nodes);
        assert_eq!(eval.num_nodes, self.num_nodes, "evaluator/graph mismatch");
        assert_eq!(eval.num_vcs, self.vcs.len(), "evaluator/graph mismatch");
        // Reset whatever the previous evaluation touched.
        for w in 0..eval.words {
            let mut bits = eval.reach[w];
            while bits != 0 {
                let node = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                eval.survival[node] = 1.0;
                eval.v[node] = 0.0;
            }
            eval.reach[w] = 0;
        }
        // Step 3: pseudo-node probabilities; union the reach of armed VCs.
        for (k, vc) in self.vcs.iter().enumerate() {
            let p = match vc.node {
                Some(node) if node_in_prefork[node] => 0.0,
                _ => vc.violation_prob,
            };
            eval.vc_prob[k] = p;
            if p > 0.0 {
                for w in 0..eval.words {
                    eval.reach[w] |= eval.vc_reach[k * eval.words + w];
                }
            }
        }
        // Step 4: seed survivals from armed cross edges, then propagate over
        // reachable nodes in ascending (topological) order.
        for &(vc, dst, r) in &self.vc_edges {
            let p = eval.vc_prob[vc];
            if p > 0.0 {
                eval.survival[dst] *= 1.0 - r * p;
            }
        }
        for w in 0..eval.words {
            let mut bits = eval.reach[w];
            while bits != 0 {
                let node = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let vn = 1.0 - eval.survival[node];
                eval.v[node] = vn;
                if vn > 0.0 {
                    for i in eval.out_start[node]..eval.out_start[node + 1] {
                        let (dst, r) = eval.out_edges[i];
                        eval.survival[dst] *= 1.0 - r * vn;
                    }
                }
            }
        }
        &eval.v
    }

    /// Scratch-buffer variant of [`CostGraph::misspeculation_cost`]: the sum
    /// runs over the touched nodes only (skipped terms are exactly `+0.0`).
    pub fn misspeculation_cost_with(
        &self,
        node_in_prefork: &[bool],
        eval: &mut CostEvaluator,
    ) -> f64 {
        self.reexec_probs_into(node_in_prefork, eval);
        let mut cost = 0.0f64;
        for w in 0..eval.words {
            let mut bits = eval.reach[w];
            while bits != 0 {
                let node = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                cost += eval.v[node] * self.node_cost[node];
            }
        }
        cost
    }
}

/// A reusable evaluation arena for one [`CostGraph`] (see
/// [`CostGraph::evaluator`]): CSR out-adjacency, precomputed per-candidate
/// reachability bitsets, and the scratch buffers of the propagation sweep.
/// The optimal-partition search holds one of these and evaluates thousands
/// of partitions without a single allocation.
#[derive(Clone, Debug)]
pub struct CostEvaluator {
    num_nodes: usize,
    num_vcs: usize,
    /// Bitset words per node set (`num_nodes.div_ceil(64)`).
    words: usize,
    /// CSR: out-edges of node `n` are `out_edges[out_start[n]..out_start[n+1]]`.
    out_start: Vec<usize>,
    out_edges: Vec<(usize, f64)>,
    /// Flattened per-VC reachability: candidate `k` owns words
    /// `vc_reach[k*words..(k+1)*words]`.
    vc_reach: Vec<u64>,
    // --- scratch, reset lazily between evaluations ---
    vc_prob: Vec<f64>,
    survival: Vec<f64>,
    v: Vec<f64>,
    /// Union of armed candidates' reach from the latest evaluation; doubles
    /// as the record of which scratch entries need resetting.
    reach: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the §4.2.5 worked example (Figures 5–6).
    ///
    /// Nodes: A=0, B=1, C=2, D=3, E=4, F=5, all cost 1.
    /// Pseudo nodes D', E', F' with violation probability 1 (no branches).
    /// Cross edges: D'→A (0.2), E'→B (0.1), F'→C (0.2).
    /// Intra edges: B→C (0.5), C→E (1.0).
    fn paper_example() -> CostGraph {
        let mut g = CostGraph::with_unit_costs(6);
        let d = g.add_vc(Some(3), 1.0);
        let e = g.add_vc(Some(4), 1.0);
        let f = g.add_vc(Some(5), 1.0);
        g.add_vc_edge(d, 0, 0.2);
        g.add_vc_edge(e, 1, 0.1);
        g.add_vc_edge(f, 2, 0.2);
        g.add_edge(1, 2, 0.5);
        g.add_edge(2, 4, 1.0);
        g
    }

    #[test]
    fn paper_worked_example_cost_is_0_58() {
        let g = paper_example();
        // Partition: only D (node 3) in the pre-fork region.
        let mut prefork = vec![false; 6];
        prefork[3] = true;
        let v = g.reexec_probs(&prefork);
        assert!((v[0] - 0.0).abs() < 1e-12, "v(A) = {}", v[0]);
        assert!((v[1] - 0.1).abs() < 1e-12, "v(B) = {}", v[1]);
        assert!((v[2] - 0.24).abs() < 1e-12, "v(C) = {}", v[2]);
        assert!((v[3] - 0.0).abs() < 1e-12, "v(D) = {}", v[3]);
        assert!((v[4] - 0.24).abs() < 1e-12, "v(E) = {}", v[4]);
        assert!((v[5] - 0.0).abs() < 1e-12, "v(F) = {}", v[5]);
        let cost = g.misspeculation_cost(&prefork);
        assert!((cost - 0.58).abs() < 1e-12, "cost = {cost}");
    }

    #[test]
    fn empty_partition_costs_more() {
        let g = paper_example();
        let baseline = g.baseline_cost();
        let mut prefork = vec![false; 6];
        prefork[3] = true;
        let with_d = g.misspeculation_cost(&prefork);
        // With D speculated too, A also re-executes: baseline = 0.58 + v(A)
        // where v(A) = 0.2.
        assert!((baseline - 0.78).abs() < 1e-12, "baseline = {baseline}");
        assert!(with_d < baseline);
    }

    #[test]
    fn cost_is_monotone_in_prefork_set() {
        let g = paper_example();
        // Growing the pre-fork region never increases the cost (§5: "When
        // additional statements are moved into the pre-fork region, the
        // misspeculation cost will be reduced").
        let mut prev = g.baseline_cost();
        let mut prefork = vec![false; 6];
        for vc_node in [3usize, 4, 5] {
            prefork[vc_node] = true;
            let cost = g.misspeculation_cost(&prefork);
            assert!(cost <= prev + 1e-12, "cost {cost} > prev {prev}");
            prev = cost;
        }
        // All violation candidates pre-forked: nothing to misspeculate.
        assert!(prev.abs() < 1e-12);
    }

    #[test]
    fn violation_probability_scales_seeds() {
        let mut g = CostGraph::with_unit_costs(2);
        let vc = g.add_vc(Some(0), 0.5);
        g.add_vc_edge(vc, 1, 0.4);
        let v = g.reexec_probs(&[false, false]);
        assert!((v[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn multiple_predecessors_combine_independently() {
        // Node 2 fed by two VCs with r=0.5 each, vp=1: v = 1 - 0.5*0.5.
        let mut g = CostGraph::with_unit_costs(3);
        let a = g.add_vc(Some(0), 1.0);
        let b = g.add_vc(Some(1), 1.0);
        g.add_vc_edge(a, 2, 0.5);
        g.add_vc_edge(b, 2, 0.5);
        let v = g.reexec_probs(&[false; 3]);
        assert!((v[2] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn moving_consumers_does_not_help() {
        // VC -> n1 -> n2; placing the *consumer* n1 in the pre-fork region
        // changes nothing — the speculative thread still executes it with a
        // violated input. Only moving the candidate itself (node 0) disarms
        // the chain.
        let mut g = CostGraph::with_unit_costs(3);
        let vc = g.add_vc(Some(0), 1.0);
        g.add_vc_edge(vc, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        let v = g.reexec_probs(&[false, true, false]);
        assert_eq!(v[1], 1.0);
        assert_eq!(v[2], 1.0);
        let v2 = g.reexec_probs(&[true, false, false]);
        assert_eq!(v2[1], 0.0);
        assert_eq!(v2[2], 0.0);
    }

    #[test]
    fn node_costs_weight_the_sum() {
        let mut g = CostGraph::with_unit_costs(2);
        g.node_cost[1] = 20.0;
        let vc = g.add_vc(Some(0), 1.0);
        g.add_vc_edge(vc, 1, 0.5);
        let cost = g.misspeculation_cost(&[false, false]);
        assert!((cost - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "forward")]
    fn rejects_backward_edges() {
        let mut g = CostGraph::with_unit_costs(2);
        g.add_edge(1, 1, 0.5);
    }

    #[test]
    fn evaluator_matches_one_shot_sweep() {
        let g = paper_example();
        let mut eval = g.evaluator();
        // Cycle through several partitions with ONE arena: lazy resets must
        // leave no residue from the previous evaluation.
        let masks: Vec<Vec<bool>> = vec![
            vec![false; 6],
            {
                let mut m = vec![false; 6];
                m[3] = true;
                m
            },
            vec![true; 6],
            {
                let mut m = vec![false; 6];
                m[4] = true;
                m[5] = true;
                m
            },
            vec![false; 6],
        ];
        for mask in &masks {
            let fresh = g.reexec_probs(mask);
            let scratch = g.reexec_probs_into(mask, &mut eval).to_vec();
            assert_eq!(fresh, scratch, "bit-exact probabilities for {mask:?}");
            let c_fresh = g.misspeculation_cost(mask);
            let c_scratch = g.misspeculation_cost_with(mask, &mut eval);
            assert_eq!(
                c_fresh.to_bits(),
                c_scratch.to_bits(),
                "bit-exact cost for {mask:?}"
            );
        }
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        // Saturating graph: many strong predecessors.
        let mut g = CostGraph::with_unit_costs(5);
        for n in 0..4 {
            let vc = g.add_vc(Some(n), 1.0);
            g.add_vc_edge(vc, 4, 0.9);
        }
        let v = g.reexec_probs(&[false; 5]);
        assert!(v[4] <= 1.0 && v[4] > 0.99);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_graph() -> impl Strategy<Value = CostGraph> {
        // 2..12 nodes, random VCs and forward edges with probs in [0,1].
        (2usize..12).prop_flat_map(|n| {
            let vcs = proptest::collection::vec((0..n, 0.0f64..=1.0), 1..4);
            let edges = proptest::collection::vec(
                ((0..n), (0..n), 0.0f64..=1.0).prop_filter("forward", |(a, b, _)| a < b),
                0..16,
            );
            let vc_edges = proptest::collection::vec((0usize..4, 0..n, 0.0f64..=1.0), 0..8);
            (Just(n), vcs, edges, vc_edges).prop_map(|(n, vcs, edges, vc_edges)| {
                let mut g = CostGraph::with_unit_costs(n);
                for (node, vp) in vcs {
                    g.add_vc(Some(node), vp);
                }
                for (a, b, r) in edges {
                    g.add_edge(a, b, r);
                }
                for (vc, dst, r) in vc_edges {
                    if vc < g.vcs.len() {
                        g.add_vc_edge(vc, dst, r);
                    }
                }
                g
            })
        })
    }

    proptest! {
        /// Re-execution probabilities are valid probabilities.
        #[test]
        fn probs_in_unit_interval(g in arb_graph()) {
            let v = g.reexec_probs(&vec![false; g.num_nodes]);
            for p in v {
                prop_assert!((0.0..=1.0).contains(&p));
            }
        }

        /// Growing the pre-fork region never increases the cost — the
        /// monotonicity property the branch-and-bound pruning relies on (§5).
        #[test]
        fn cost_monotone_under_prefork_growth(g in arb_graph(), extra in 0usize..12) {
            let mut prefork = vec![false; g.num_nodes];
            let c0 = g.misspeculation_cost(&prefork);
            // Move the VC statements into the pre-fork region one at a time.
            let mut nodes: Vec<usize> = g.vcs.iter().filter_map(|vc| vc.node).collect();
            nodes.sort_unstable();
            nodes.dedup();
            let mut prev = c0;
            for nd in nodes {
                prefork[nd] = true;
                let c = g.misspeculation_cost(&prefork);
                prop_assert!(c <= prev + 1e-9, "cost grew: {c} > {prev}");
                prev = c;
            }
            // Also marking an arbitrary extra node cannot increase cost.
            let extra = extra % g.num_nodes;
            prefork[extra] = true;
            let c = g.misspeculation_cost(&prefork);
            prop_assert!(c <= prev + 1e-9);
        }

        /// The restricted-sweep evaluator reproduces the one-shot sweep
        /// bit-for-bit on random graphs and random partitions, including
        /// arena reuse across successive masks.
        #[test]
        fn evaluator_is_bit_exact(g in arb_graph(), picks in proptest::collection::vec(0usize..64, 0..24)) {
            let mut eval = g.evaluator();
            let mut mask = vec![false; g.num_nodes];
            // Interleave evaluations with mask mutations to exercise reuse.
            for (step, &pick) in picks.iter().enumerate() {
                let n = pick % g.num_nodes;
                mask[n] = step % 3 != 2; // mostly set, sometimes clear
                let fresh = g.reexec_probs(&mask);
                let scratch = g.reexec_probs_into(&mask, &mut eval).to_vec();
                prop_assert_eq!(&fresh, &scratch);
                let cf = g.misspeculation_cost(&mask);
                let cs = g.misspeculation_cost_with(&mask, &mut eval);
                prop_assert_eq!(cf.to_bits(), cs.to_bits());
            }
        }

        /// Cost is bounded by the total cost of all nodes.
        #[test]
        fn cost_bounded_by_total(g in arb_graph()) {
            let total: f64 = g.node_cost.iter().sum();
            let c = g.baseline_cost();
            prop_assert!(c <= total + 1e-9);
            prop_assert!(c >= 0.0);
        }
    }
}

//! Additional IR-level integration tests: pass interactions, verifier
//! rejections, printer goldens and loop-analysis edge cases.

use spt_ir::passes;
use spt_ir::{BinOp, Cfg, CmpOp, DomTree, FuncBuilder, LoopForest, Module, Operand, Ty, UnOp};

#[test]
fn const_fold_handles_conversions() {
    let mut b = FuncBuilder::new("conv", vec![], Some(Ty::I64));
    let f = b.unary(UnOp::IntToFloat, Operand::const_i64(3));
    let g = b.binary(BinOp::Mul, f, Operand::const_f64(2.5));
    let i = b.unary(UnOp::FloatToInt, g);
    b.ret(Some(i));
    let mut func = b.finish();
    passes::cleanup(&mut func);
    // Fully folds to ret 7 (3.0 * 2.5 = 7.5 truncated).
    let term = func.terminator(func.entry).unwrap();
    match &func.inst(term).kind {
        spt_ir::InstKind::Ret { val } => assert_eq!(*val, Some(Operand::ConstI64(7))),
        other => panic!("expected folded ret, got {other:?}"),
    }
}

#[test]
fn cleanup_preserves_infinite_loop() {
    // while(1) { x = x + 1 } — the loop is unreachable-exit but must stay.
    let mut b = FuncBuilder::new("inf", vec![], None);
    let header = b.add_block();
    b.jump(header);
    b.switch_to(header);
    let phi = b.phi(Ty::I64, vec![(b.entry(), Operand::const_i64(0))]);
    let next = b.binary(BinOp::Add, phi, Operand::const_i64(1));
    b.jump(header);
    let mut func = b.finish();
    // Complete the phi with the back edge.
    if let spt_ir::InstKind::Phi { args } = &mut func.inst_mut(phi.as_inst().unwrap()).kind {
        args.push((header, next));
    }
    spt_ir::verify::verify_func(&func).expect("valid");
    passes::cleanup(&mut func);
    let cfg = Cfg::compute(&func);
    let dom = DomTree::compute(&cfg);
    let forest = LoopForest::compute(&func, &cfg, &dom);
    assert_eq!(forest.len(), 1, "infinite loop survives cleanup");
}

#[test]
fn verifier_rejects_param_outside_entry() {
    let mut b = FuncBuilder::new("p", vec![("x".into(), Ty::I64)], None);
    let other = b.add_block();
    b.jump(other);
    b.switch_to(other);
    b.ret(None);
    let mut func = b.finish();
    // Manually move the param instruction into `other`.
    let param = func.block(func.entry).insts[0];
    func.block_mut(func.entry).insts.remove(0);
    func.block_mut(other).insts.insert(0, param);
    let err = spt_ir::verify::verify_func(&func).unwrap_err();
    assert!(err.message.contains("outside entry"), "{err}");
}

#[test]
fn printer_module_golden() {
    let mut m = Module::new();
    m.add_global("cells", 4, Ty::I64);
    let mut b = FuncBuilder::new("touch", vec![("k".into(), Ty::I64)], Some(Ty::I64));
    let k = b.param(0);
    let r = spt_ir::RegionId::new(0);
    let base = b.region_base(r);
    let addr = b.binary(BinOp::Add, base, k);
    let v = b.load(addr, r);
    let c = b.cmp(CmpOp::Gt, Ty::I64, v, Operand::const_i64(0));
    b.ret(Some(c));
    m.add_func(b.finish());
    let text = spt_ir::printer::print_module(&m);
    let expected = "\
global region0 cells: [i64; 4]

fn touch(k: i64) -> i64 {
bb0:
  v0 = param 0 : i64
  v1 = region_base region0 : i64
  v2 = add v1, v0 : i64
  v3 = load v2 @region0 : i64
  v4 = cmp.gt.i64 v3, 0 : i64
  ret v4
}
";
    // print_module separates functions with a trailing blank line.
    assert_eq!(text, format!("{expected}\n"));
}

#[test]
fn effect_summaries_handle_recursion() {
    // Mutually recursive functions: the fixed point must terminate and mark
    // both impure when one touches memory.
    let mut m = Module::new();
    let g = m.add_global("g", 1, Ty::I64);
    // Pre-declare both functions to allow mutual references.
    let fa = m.add_func(spt_ir::Function::new("a", vec![], None));
    let fb = m.add_func(spt_ir::Function::new("b", vec![], None));
    {
        let mut b = FuncBuilder::new("a", vec![], None);
        b.call(fb, vec![], None);
        b.ret(None);
        *m.func_mut(fa) = b.finish();
    }
    {
        let mut b = FuncBuilder::new("b", vec![], None);
        let base = b.region_base(g);
        b.store(base, Operand::const_i64(1), g);
        b.call(fa, vec![], None);
        b.ret(None);
        *m.func_mut(fb) = b.finish();
    }
    let sums = m.effect_summaries();
    assert!(sums[fa.index()].writes_memory);
    assert!(sums[fb.index()].writes_memory);
}

#[test]
fn simplify_cfg_cleans_constant_branch_phi_edges() {
    // br 0, taken, nottaken — the dead edge's phi arg must disappear.
    let mut b = FuncBuilder::new("cb", vec![], Some(Ty::I64));
    let t = b.add_block();
    let e = b.add_block();
    let j = b.add_block();
    b.branch(Operand::const_i64(0), t, e);
    b.switch_to(t);
    b.jump(j);
    b.switch_to(e);
    b.jump(j);
    b.switch_to(j);
    let p = b.phi(
        Ty::I64,
        vec![(t, Operand::const_i64(10)), (e, Operand::const_i64(20))],
    );
    b.ret(Some(p));
    let mut func = b.finish();
    passes::cleanup(&mut func);
    spt_ir::verify::verify_func(&func).expect("verifies after cleanup");
    let term = func.terminator(func.entry).unwrap();
    match &func.inst(term).kind {
        spt_ir::InstKind::Ret { val } => assert_eq!(*val, Some(Operand::ConstI64(20))),
        other => panic!("expected ret of 20, got {other:?}"),
    }
}

#[test]
fn dom_tree_multiple_rets() {
    let mut b = FuncBuilder::new("mr", vec![("c".into(), Ty::I64)], Some(Ty::I64));
    let c = b.param(0);
    let t = b.add_block();
    let e = b.add_block();
    b.branch(c, t, e);
    b.switch_to(t);
    b.ret(Some(Operand::const_i64(1)));
    b.switch_to(e);
    b.ret(Some(Operand::const_i64(2)));
    let f = b.finish();
    let cfg = Cfg::compute(&f);
    let dom = DomTree::compute(&cfg);
    assert!(dom.dominates(f.entry, t));
    assert!(dom.dominates(f.entry, e));
    assert!(!dom.dominates(t, e));
    // Preorder covers everything reachable.
    assert_eq!(dom.preorder().len(), 3);
}

#[test]
fn loop_forest_triple_nest_depths() {
    let src = "
        fn f(n: int) -> int {
            let t = 0;
            for (let i = 0; i < n; i = i + 1) {
                for (let j = 0; j < 3; j = j + 1) {
                    for (let k = 0; k < 2; k = k + 1) {
                        t = t + i + j + k;
                    }
                }
            }
            return t;
        }
    ";
    let m = spt_frontend::compile(src).unwrap();
    let f = &m.funcs[0];
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(&cfg);
    let forest = LoopForest::compute(f, &cfg, &dom);
    assert_eq!(forest.len(), 3);
    let mut depths: Vec<usize> = forest.ids().map(|l| forest.get(l).depth).collect();
    depths.sort_unstable();
    assert_eq!(depths, vec![1, 2, 3]);
    let order = forest.inner_to_outer();
    assert_eq!(forest.get(order[0]).depth, 3);
    assert_eq!(forest.get(order[2]).depth, 1);
}

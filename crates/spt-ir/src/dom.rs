//! Dominator tree and dominance frontiers (Cooper–Harvey–Kennedy).
//!
//! Used by SSA construction (iterated dominance frontiers for phi placement)
//! and by natural-loop detection (a back edge is an edge whose target
//! dominates its source).

use crate::cfg::Cfg;
use crate::ids::BlockId;

/// Immediate-dominator tree plus dominance frontiers.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator per block (`None` for the entry and unreachable
    /// blocks).
    pub idom: Vec<Option<BlockId>>,
    /// Dominance frontier per block.
    pub frontier: Vec<Vec<BlockId>>,
    /// Children in the dominator tree.
    pub children: Vec<Vec<BlockId>>,
    entry: BlockId,
}

impl DomTree {
    /// Computes dominators for the reachable portion of `cfg`.
    pub fn compute(cfg: &Cfg) -> Self {
        let n = cfg.num_blocks();
        let entry = cfg.entry();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);

        // Iterate to fixed point over reverse postorder.
        let mut changed = true;
        while changed {
            changed = false;
            for &bb in cfg.rpo.iter().skip(1) {
                // First processed predecessor.
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(bb) {
                    if idom[p.index()].is_some() {
                        new_idom = Some(match new_idom {
                            None => p,
                            Some(cur) => intersect(&idom, &cfg.rpo_index, p, cur),
                        });
                    }
                }
                if let Some(ni) = new_idom {
                    if idom[bb.index()] != Some(ni) {
                        idom[bb.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        // By convention the entry has no immediate dominator.
        idom[entry.index()] = None;

        // Dominance frontiers.
        let mut frontier = vec![Vec::new(); n];
        for &bb in &cfg.rpo {
            let preds = cfg.preds(bb);
            if preds.len() >= 2 {
                for &p in preds {
                    if !cfg.is_reachable(p) {
                        continue;
                    }
                    let mut runner = p;
                    while Some(runner) != idom[bb.index()] {
                        let fr = &mut frontier[runner.index()];
                        if !fr.contains(&bb) {
                            fr.push(bb);
                        }
                        match idom[runner.index()] {
                            Some(next) => runner = next,
                            None => break,
                        }
                    }
                }
            }
        }

        let mut children = vec![Vec::new(); n];
        for (bb, &id) in idom.iter().enumerate() {
            if let Some(p) = id {
                children[p.index()].push(BlockId::new(bb));
            }
        }

        DomTree {
            idom,
            frontier,
            children,
            entry,
        }
    }

    /// Returns `true` if `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(next) if next != cur => cur = next,
                _ => return false,
            }
        }
    }

    /// The immediate dominator of `bb` (`None` for the entry).
    pub fn idom(&self, bb: BlockId) -> Option<BlockId> {
        self.idom[bb.index()]
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Dominator-tree preorder of reachable blocks, starting at the entry.
    pub fn preorder(&self) -> Vec<BlockId> {
        let mut out = Vec::new();
        let mut stack = vec![self.entry];
        while let Some(bb) = stack.pop() {
            out.push(bb);
            for &c in self.children[bb.index()].iter().rev() {
                stack.push(c);
            }
        }
        out
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.index()] > rpo_index[b.index()] {
            a = idom[a.index()].expect("processed block must have idom");
        }
        while rpo_index[b.index()] > rpo_index[a.index()] {
            b = idom[b.index()].expect("processed block must have idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::module::Function;
    use crate::types::Ty;

    fn diamond() -> Function {
        let mut b = FuncBuilder::new("d", vec![("c".into(), Ty::I64)], None);
        let c = b.param(0);
        let t = b.add_block();
        let e = b.add_block();
        let j = b.add_block();
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn diamond_dominators() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&cfg);
        let entry = f.entry;
        let t = BlockId::new(1);
        let e = BlockId::new(2);
        let j = BlockId::new(3);
        assert_eq!(dom.idom(entry), None);
        assert_eq!(dom.idom(t), Some(entry));
        assert_eq!(dom.idom(e), Some(entry));
        assert_eq!(dom.idom(j), Some(entry));
        assert!(dom.dominates(entry, j));
        assert!(!dom.dominates(t, j));
        assert!(dom.dominates(j, j));
    }

    #[test]
    fn diamond_frontiers() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&cfg);
        let t = BlockId::new(1);
        let e = BlockId::new(2);
        let j = BlockId::new(3);
        assert_eq!(dom.frontier[t.index()], vec![j]);
        assert_eq!(dom.frontier[e.index()], vec![j]);
        assert!(dom.frontier[f.entry.index()].is_empty());
        assert!(dom.frontier[j.index()].is_empty());
    }

    #[test]
    fn loop_header_in_own_frontier() {
        // entry -> header; header -> body|exit; body -> header
        let mut b = FuncBuilder::new("l", vec![("c".into(), Ty::I64)], None);
        let c = b.param(0);
        let header = b.add_block();
        let body = b.add_block();
        let exit = b.add_block();
        b.jump(header);
        b.switch_to(header);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&cfg);
        assert!(dom.dominates(header, body));
        assert!(dom.frontier[body.index()].contains(&header));
        assert!(dom.frontier[header.index()].contains(&header));
    }

    #[test]
    fn preorder_visits_all_reachable() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&cfg);
        let pre = dom.preorder();
        assert_eq!(pre.len(), 4);
        assert_eq!(pre[0], f.entry);
    }
}

//! Operators: binary, unary and comparison operations, with constant
//! evaluation helpers and the static latency classes used by the cost model
//! and the SPT machine simulator.

use crate::types::Ty;
use std::fmt;

/// Binary arithmetic/logic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition (wrapping for `i64`).
    Add,
    /// Subtraction (wrapping for `i64`).
    Sub,
    /// Multiplication (wrapping for `i64`).
    Mul,
    /// Division. Integer division by zero yields 0 (the interpreter traps are
    /// avoided so profiling runs always complete, mirroring a speculative
    /// hardware context that suppresses faults).
    Div,
    /// Remainder; remainder by zero yields 0.
    Rem,
    /// Bitwise and (integers only).
    And,
    /// Bitwise or (integers only).
    Or,
    /// Bitwise xor (integers only).
    Xor,
    /// Logical shift left, masked shift amount (integers only).
    Shl,
    /// Arithmetic shift right, masked shift amount (integers only).
    Shr,
    /// Two-operand minimum.
    Min,
    /// Two-operand maximum.
    Max,
}

impl BinOp {
    /// Evaluates the operator on two `i64` operands.
    #[inline(always)]
    pub fn eval_i64(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 || (a == i64::MIN && b == -1) {
                    0
                } else {
                    a / b
                }
            }
            BinOp::Rem => {
                if b == 0 || (a == i64::MIN && b == -1) {
                    0
                } else {
                    a % b
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        }
    }

    /// Evaluates the operator on two `f64` operands.
    ///
    /// Bitwise/shift operators are meaningless on floats; they evaluate to
    /// `0.0` and are rejected earlier by the verifier.
    #[inline(always)]
    pub fn eval_f64(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Rem => a % b,
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
            BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr => 0.0,
        }
    }

    /// Returns `true` if the operator is defined for the given operand type.
    pub fn supports(self, ty: Ty) -> bool {
        match self {
            BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr => ty == Ty::I64,
            _ => true,
        }
    }

    /// Static latency in machine cycles, used both by the misspeculation
    /// cost model (`Cost(c)` in §4.2.4 of the paper) and the simulator.
    pub fn latency(self, ty: Ty) -> u64 {
        match (self, ty) {
            (BinOp::Mul, Ty::I64) => 3,
            (BinOp::Div | BinOp::Rem, Ty::I64) => 20,
            (BinOp::Mul, Ty::F64) => 4,
            (BinOp::Div | BinOp::Rem, Ty::F64) => 24,
            (_, Ty::F64) => 4,
            _ => 1,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Min => "min",
            BinOp::Max => "max",
        };
        write!(f, "{s}")
    }
}

/// Unary operators, including the pure math intrinsics the benchmark programs
/// use (`fabs` appears in the paper's Figure 2 example).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise not (integers only).
    Not,
    /// Absolute value (`fabs` for floats, `labs` for integers).
    Abs,
    /// Square root (floats; integer operand converted first).
    Sqrt,
    /// Convert `i64` to `f64`.
    IntToFloat,
    /// Convert `f64` to `i64` (truncating).
    FloatToInt,
}

impl UnOp {
    /// Evaluates the operator on an `i64` operand, returning an `i64`
    /// whenever the result type is integral.
    #[inline(always)]
    pub fn eval_i64(self, a: i64) -> i64 {
        match self {
            UnOp::Neg => a.wrapping_neg(),
            UnOp::Not => !a,
            UnOp::Abs => a.wrapping_abs(),
            UnOp::Sqrt => (a.max(0) as f64).sqrt() as i64,
            UnOp::IntToFloat | UnOp::FloatToInt => a,
        }
    }

    /// Evaluates the operator on an `f64` operand.
    #[inline(always)]
    pub fn eval_f64(self, a: f64) -> f64 {
        match self {
            UnOp::Neg => -a,
            UnOp::Not => 0.0,
            UnOp::Abs => a.abs(),
            UnOp::Sqrt => a.sqrt(),
            UnOp::IntToFloat | UnOp::FloatToInt => a,
        }
    }

    /// The result type of the operator given its operand type.
    pub fn result_ty(self, operand: Ty) -> Ty {
        match self {
            UnOp::IntToFloat => Ty::F64,
            UnOp::FloatToInt => Ty::I64,
            _ => operand,
        }
    }

    /// Returns `true` if the operator is defined for the given operand type.
    pub fn supports(self, ty: Ty) -> bool {
        match self {
            UnOp::Not => ty == Ty::I64,
            UnOp::IntToFloat => ty == Ty::I64,
            UnOp::FloatToInt => ty == Ty::F64,
            _ => true,
        }
    }

    /// Static latency in machine cycles.
    pub fn latency(self, ty: Ty) -> u64 {
        match self {
            UnOp::Sqrt => 30,
            UnOp::IntToFloat | UnOp::FloatToInt => 4,
            _ => {
                if ty == Ty::F64 {
                    4
                } else {
                    1
                }
            }
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::Abs => "abs",
            UnOp::Sqrt => "sqrt",
            UnOp::IntToFloat => "i2f",
            UnOp::FloatToInt => "f2i",
        };
        write!(f, "{s}")
    }
}

/// Comparison operators. The result is always an `i64` containing 0 or 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison on `i64` operands.
    #[inline(always)]
    pub fn eval_i64(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// Evaluates the comparison on `f64` operands.
    #[inline(always)]
    pub fn eval_f64(self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// The comparison with swapped operand order (`a op b` == `b op.swap() a`).
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation of the comparison.
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_arith() {
        assert_eq!(BinOp::Add.eval_i64(2, 3), 5);
        assert_eq!(BinOp::Sub.eval_i64(2, 3), -1);
        assert_eq!(BinOp::Mul.eval_i64(-4, 3), -12);
        assert_eq!(BinOp::Div.eval_i64(7, 2), 3);
        assert_eq!(BinOp::Rem.eval_i64(7, 2), 1);
    }

    #[test]
    fn division_by_zero_is_total() {
        assert_eq!(BinOp::Div.eval_i64(7, 0), 0);
        assert_eq!(BinOp::Rem.eval_i64(7, 0), 0);
        assert_eq!(BinOp::Div.eval_i64(i64::MIN, -1), 0);
        assert_eq!(BinOp::Rem.eval_i64(i64::MIN, -1), 0);
    }

    #[test]
    fn wrapping_semantics() {
        assert_eq!(BinOp::Add.eval_i64(i64::MAX, 1), i64::MIN);
        assert_eq!(UnOp::Neg.eval_i64(i64::MIN), i64::MIN);
        assert_eq!(UnOp::Abs.eval_i64(i64::MIN), i64::MIN);
    }

    #[test]
    fn shifts_mask_amount() {
        assert_eq!(BinOp::Shl.eval_i64(1, 65), 2);
        assert_eq!(BinOp::Shr.eval_i64(-8, 1), -4);
    }

    #[test]
    fn float_arith() {
        assert_eq!(BinOp::Add.eval_f64(1.5, 2.25), 3.75);
        assert_eq!(UnOp::Abs.eval_f64(-2.5), 2.5);
        assert_eq!(UnOp::Sqrt.eval_f64(9.0), 3.0);
        assert_eq!(BinOp::Min.eval_f64(1.0, 2.0), 1.0);
        assert_eq!(BinOp::Max.eval_i64(1, 2), 2);
    }

    #[test]
    fn type_support() {
        assert!(!BinOp::And.supports(Ty::F64));
        assert!(BinOp::Add.supports(Ty::F64));
        assert!(!UnOp::Not.supports(Ty::F64));
        assert!(UnOp::FloatToInt.supports(Ty::F64));
        assert!(!UnOp::FloatToInt.supports(Ty::I64));
    }

    #[test]
    fn cmp_eval_and_transforms() {
        assert!(CmpOp::Lt.eval_i64(1, 2));
        assert!(!CmpOp::Lt.eval_i64(2, 2));
        assert!(CmpOp::Le.eval_f64(2.0, 2.0));
        assert_eq!(CmpOp::Lt.swapped(), CmpOp::Gt);
        assert_eq!(CmpOp::Lt.negated(), CmpOp::Ge);
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for (a, b) in [(1, 2), (2, 2), (3, 2)] {
                assert_eq!(op.eval_i64(a, b), !op.negated().eval_i64(a, b));
                assert_eq!(op.eval_i64(a, b), op.swapped().eval_i64(b, a));
            }
        }
    }

    #[test]
    fn latencies_ordered() {
        assert!(BinOp::Div.latency(Ty::I64) > BinOp::Mul.latency(Ty::I64));
        assert!(BinOp::Mul.latency(Ty::I64) > BinOp::Add.latency(Ty::I64));
        assert!(UnOp::Sqrt.latency(Ty::F64) > UnOp::Neg.latency(Ty::F64));
    }

    #[test]
    fn conversions() {
        assert_eq!(UnOp::IntToFloat.result_ty(Ty::I64), Ty::F64);
        assert_eq!(UnOp::FloatToInt.result_ty(Ty::F64), Ty::I64);
        assert_eq!(UnOp::Neg.result_ty(Ty::F64), Ty::F64);
    }
}

//! Intermediate representation substrate for the SPT cost-driven speculative
//! parallelization framework.
//!
//! The PLDI 2004 paper implements its framework inside the Open Research
//! Compiler's machine-independent scalar optimizer (WOPT), operating on SSA
//! form. This crate provides the equivalent substrate built from scratch:
//!
//! * a typed, instruction-granular IR with explicit control flow
//!   ([`Function`], [`Block`], [`Inst`]),
//! * control-flow utilities (predecessors/successors, reverse postorder),
//! * dominator trees and dominance frontiers ([`dom`]),
//! * natural-loop discovery and a loop-nest forest ([`loops`]),
//! * SSA construction from frontend variable slots ([`ssa`]),
//! * the cleanup passes the paper applies after its SPT transformation
//!   (copy propagation, dead-code elimination, CFG simplification; see
//!   [`passes`]),
//! * an IR verifier ([`verify`]) and a textual printer ([`printer`]).
//!
//! The IR models memory as a set of *regions* (arrays/globals); loads and
//! stores carry a region attribution used for type-based disambiguation, the
//! same role ORC's type-based alias analysis plays in the paper.
//!
//! # Example
//!
//! ```
//! use spt_ir::{FuncBuilder, Module, Ty, BinOp, Operand};
//!
//! let mut module = Module::new();
//! let mut b = FuncBuilder::new("add1", vec![("x".into(), Ty::I64)], Some(Ty::I64));
//! let x = b.param(0);
//! let one = Operand::const_i64(1);
//! let sum = b.binary(BinOp::Add, x, one);
//! b.ret(Some(sum));
//! let func = b.finish();
//! module.add_func(func);
//! assert!(spt_ir::verify::verify_module(&module).is_ok());
//! ```

pub mod builder;
pub mod cfg;
pub mod decoded;
pub mod dom;
pub mod ids;
pub mod inst;
pub mod loops;
pub mod module;
pub mod ops;
pub mod passes;
pub mod printer;
pub mod ssa;
pub mod superblock;
pub mod tier;
pub mod types;
pub mod verify;

pub use builder::FuncBuilder;
pub use cfg::Cfg;
pub use decoded::{DBlock, DInst, DKind, DLoopFacts, DVal, DecodedFunc, DecodedModule};
pub use dom::DomTree;
pub use ids::{BlockId, FuncId, InstId, RegionId, VarId};
pub use inst::{Inst, InstKind, Operand};
pub use loops::{Loop, LoopForest, LoopId};
pub use module::{Block, Function, Global, Module};
pub use ops::{BinOp, CmpOp, UnOp};
pub use superblock::{SBlock, SInst, SOpc, SuperblockFunc, SuperblockModule, NO_SLOT};
pub use tier::{exec_tier, set_exec_tier_override, ExecTier};
pub use types::Ty;

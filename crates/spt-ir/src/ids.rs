//! Strongly-typed index newtypes used throughout the IR.
//!
//! Every IR entity (function, block, instruction, frontend variable slot,
//! memory region) is referred to by a compact `u32` index wrapped in a
//! dedicated newtype so that indices of different kinds cannot be confused
//! (C-NEWTYPE).

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an id from a raw index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn new(index: usize) -> Self {
                assert!(index <= u32::MAX as usize, "id index overflow");
                Self(index as u32)
            }

            /// Returns the raw index for container addressing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifies a function within a [`crate::Module`].
    FuncId,
    "fn"
);
define_id!(
    /// Identifies a basic block within a [`crate::Function`].
    BlockId,
    "bb"
);
define_id!(
    /// Identifies an instruction within a [`crate::Function`].
    ///
    /// Value-producing instructions double as SSA value names: the value
    /// defined by instruction `v7` is referred to as `v7`.
    InstId,
    "v"
);
define_id!(
    /// Identifies a frontend variable slot prior to SSA construction.
    VarId,
    "var"
);
define_id!(
    /// Identifies a memory region (a global array or scalar cell).
    ///
    /// Regions are the unit of type-based memory disambiguation: accesses to
    /// distinct regions never alias, mirroring the role of ORC's type-based
    /// alias analysis in the paper.
    RegionId,
    "region"
);

impl RegionId {
    /// Sentinel region for accesses the compiler cannot attribute to a single
    /// region (e.g. through an arbitrary computed address). Such accesses may
    /// alias every region.
    pub const UNKNOWN: RegionId = RegionId(u32::MAX);

    /// Returns `true` if this is the [`RegionId::UNKNOWN`] sentinel.
    #[inline]
    pub fn is_unknown(self) -> bool {
        self == Self::UNKNOWN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        let b = BlockId::new(42);
        assert_eq!(b.index(), 42);
        assert_eq!(format!("{b}"), "bb42");
        assert_eq!(format!("{b:?}"), "bb42");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(InstId::new(1) < InstId::new(2));
        assert_eq!(InstId::new(3), InstId(3));
    }

    #[test]
    fn unknown_region_sentinel() {
        assert!(RegionId::UNKNOWN.is_unknown());
        assert!(!RegionId::new(0).is_unknown());
    }

    #[test]
    #[should_panic(expected = "id index overflow")]
    fn id_overflow_panics() {
        let _ = InstId::new(usize::MAX);
    }
}

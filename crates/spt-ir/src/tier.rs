//! Execution-tier selection shared by the profiling interpreter and the SPT
//! simulator.
//!
//! Both engines execute the same pre-decoded module form through one of
//! three tiers:
//!
//! * [`ExecTier::Reference`] — the retained tree-walking oracles
//!   (`ReferenceInterp` / `ReferenceSimulator`), kept for differential
//!   testing;
//! * [`ExecTier::Dense`] — the flat one-`DKind`-per-step executors (the
//!   default);
//! * [`ExecTier::Super`] — the superblock tier: straight-line block bodies
//!   compiled once per module into fused superinstructions
//!   ([`crate::superblock`]) and executed by threaded-code dispatch.
//!
//! The tier comes from [`exec_tier`]: a process-wide programmatic override
//! ([`set_exec_tier_override`]) when one is installed, else the
//! `SPT_EXEC_TIER` environment variable (`reference`, `dense` or `super`),
//! else [`ExecTier::Dense`]. The environment is consulted **once** per
//! process and cached, mirroring the `SPT_THREADS` handling in `spt-core`:
//! `exec_tier` sits at the head of every engine run, and harnesses that
//! switch tiers mid-process (perfbench, the equivalence tests) use the
//! override.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Which executor a run uses. All tiers are bit-identical in results,
/// profiler event streams and timing accounting; they differ only in speed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExecTier {
    /// The retained tree-walking reference engines.
    Reference,
    /// The flat pre-decoded executors (default).
    Dense,
    /// Fused superblock threaded code with per-block dense fallback.
    Super,
}

impl ExecTier {
    /// Parses a tier name as accepted by `SPT_EXEC_TIER`.
    pub fn parse(s: &str) -> Option<ExecTier> {
        match s.trim().to_ascii_lowercase().as_str() {
            "reference" => Some(ExecTier::Reference),
            "dense" => Some(ExecTier::Dense),
            "super" | "superblock" => Some(ExecTier::Super),
            _ => None,
        }
    }
}

/// `0` = no override installed; otherwise `1 + discriminant`.
static TIER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn encode(t: ExecTier) -> usize {
    match t {
        ExecTier::Reference => 1,
        ExecTier::Dense => 2,
        ExecTier::Super => 3,
    }
}

fn decode(v: usize) -> Option<ExecTier> {
    match v {
        1 => Some(ExecTier::Reference),
        2 => Some(ExecTier::Dense),
        3 => Some(ExecTier::Super),
        _ => None,
    }
}

/// Installs (or with `None` removes) a process-wide execution-tier override
/// that takes precedence over `SPT_EXEC_TIER`.
pub fn set_exec_tier_override(tier: Option<ExecTier>) {
    TIER_OVERRIDE.store(tier.map_or(0, encode), Ordering::Relaxed);
}

/// The `SPT_EXEC_TIER` setting at first use, cached for the process
/// lifetime. Unknown values are ignored (the default tier applies).
fn env_exec_tier() -> Option<ExecTier> {
    static ENV: OnceLock<Option<ExecTier>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("SPT_EXEC_TIER")
            .ok()
            .and_then(|v| ExecTier::parse(&v))
    })
}

/// The tier engines should run at: the [`set_exec_tier_override`] value if
/// one is installed, else `SPT_EXEC_TIER` (read once per process), otherwise
/// [`ExecTier::Dense`].
pub fn exec_tier() -> ExecTier {
    if let Some(t) = decode(TIER_OVERRIDE.load(Ordering::Relaxed)) {
        return t;
    }
    env_exec_tier().unwrap_or(ExecTier::Dense)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_all_tiers() {
        assert_eq!(ExecTier::parse("reference"), Some(ExecTier::Reference));
        assert_eq!(ExecTier::parse(" Dense "), Some(ExecTier::Dense));
        assert_eq!(ExecTier::parse("super"), Some(ExecTier::Super));
        assert_eq!(ExecTier::parse("superblock"), Some(ExecTier::Super));
        assert_eq!(ExecTier::parse("jit"), None);
    }

    #[test]
    fn override_round_trips() {
        // Serialized against other tests touching the override by the fact
        // that this is the only in-crate test doing so.
        set_exec_tier_override(Some(ExecTier::Super));
        assert_eq!(exec_tier(), ExecTier::Super);
        set_exec_tier_override(Some(ExecTier::Reference));
        assert_eq!(exec_tier(), ExecTier::Reference);
        set_exec_tier_override(None);
        assert_eq!(exec_tier(), ExecTier::Dense);
    }
}

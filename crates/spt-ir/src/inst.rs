//! Instructions and operands.
//!
//! The IR is a conventional instruction-granular SSA: every value-producing
//! instruction defines exactly one value named by its [`InstId`]. Operands
//! are either references to defining instructions or immediate constants.
//!
//! Two instruction kinds are SPT-specific and correspond directly to the
//! paper's new machine instructions (§1):
//!
//! * [`InstKind::SptFork`] — spawn a speculative thread that begins executing
//!   at the loop header (the start of the next iteration);
//! * [`InstKind::SptKill`] — kill any running speculative thread (emitted at
//!   loop exits).

use crate::ids::{BlockId, FuncId, InstId, RegionId, VarId};
use crate::ops::{BinOp, CmpOp, UnOp};
use crate::types::Ty;
use std::fmt;

/// An instruction operand: either the value defined by another instruction or
/// an immediate constant.
///
/// Float immediates are stored as raw bits so that operands are `Eq + Hash`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// The value defined by the instruction with this id.
    Inst(InstId),
    /// An immediate 64-bit integer.
    ConstI64(i64),
    /// An immediate 64-bit float, stored as IEEE-754 bits.
    ConstF64Bits(u64),
}

impl Operand {
    /// Creates an integer immediate operand.
    #[inline]
    pub fn const_i64(v: i64) -> Self {
        Operand::ConstI64(v)
    }

    /// Creates a float immediate operand.
    #[inline]
    pub fn const_f64(v: f64) -> Self {
        Operand::ConstF64Bits(v.to_bits())
    }

    /// Returns the defining instruction if this operand is a value reference.
    #[inline]
    pub fn as_inst(self) -> Option<InstId> {
        match self {
            Operand::Inst(id) => Some(id),
            _ => None,
        }
    }

    /// Returns the immediate float value if this operand is a float constant.
    #[inline]
    pub fn as_f64(self) -> Option<f64> {
        match self {
            Operand::ConstF64Bits(bits) => Some(f64::from_bits(bits)),
            _ => None,
        }
    }

    /// Returns the immediate integer value if this operand is an integer
    /// constant.
    #[inline]
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Operand::ConstI64(v) => Some(v),
            _ => None,
        }
    }

    /// Returns `true` if this operand is any immediate constant.
    #[inline]
    pub fn is_const(self) -> bool {
        !matches!(self, Operand::Inst(_))
    }
}

impl From<InstId> for Operand {
    fn from(id: InstId) -> Self {
        Operand::Inst(id)
    }
}

impl fmt::Debug for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Inst(id) => write!(f, "{id}"),
            Operand::ConstI64(v) => write!(f, "{v}"),
            Operand::ConstF64Bits(bits) => write!(f, "{:?}", f64::from_bits(*bits)),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The payload of an instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum InstKind {
    /// The `index`-th function parameter. Parameter instructions live at the
    /// top of the entry block.
    Param {
        /// Zero-based parameter index.
        index: usize,
    },
    /// Binary arithmetic/logic on two operands of the instruction's type.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Unary arithmetic on one operand.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        val: Operand,
    },
    /// Comparison producing an `i64` 0/1.
    Cmp {
        /// The comparison.
        op: CmpOp,
        /// Operand type being compared (both sides share it).
        operand_ty: Ty,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// SSA phi: selects a value according to the predecessor block control
    /// arrived from. `args` is parallel to the block's predecessor list as
    /// recorded here (block id per incoming edge).
    Phi {
        /// `(predecessor block, incoming value)` pairs.
        args: Vec<(BlockId, Operand)>,
    },
    /// Copy of an operand (created by SPT code motion; removed by copy
    /// propagation).
    Copy {
        /// Copied value.
        val: Operand,
    },
    /// The base cell address of a memory region.
    RegionBase {
        /// The region whose base address is produced.
        region: RegionId,
    },
    /// Load one cell from memory.
    Load {
        /// Cell address (an `i64` value).
        addr: Operand,
        /// Static region attribution, or [`RegionId::UNKNOWN`].
        region: RegionId,
    },
    /// Store one cell to memory. Not value-producing.
    Store {
        /// Cell address (an `i64` value).
        addr: Operand,
        /// Stored value (interpreted per `Inst::ty` of the stored operand's
        /// producer; stored as raw bits).
        val: Operand,
        /// Static region attribution, or [`RegionId::UNKNOWN`].
        region: RegionId,
    },
    /// Direct call to another function in the module.
    Call {
        /// Callee.
        callee: FuncId,
        /// Argument operands.
        args: Vec<Operand>,
    },
    /// Read of a frontend variable slot. Only present before SSA
    /// construction; `mem2reg` removes all of these.
    VarLoad {
        /// The variable slot.
        var: VarId,
    },
    /// Write of a frontend variable slot. Only present before SSA
    /// construction. Not value-producing.
    VarStore {
        /// The variable slot.
        var: VarId,
        /// Value written.
        val: Operand,
    },
    /// Unconditional jump. Terminator.
    Jump {
        /// Jump target.
        target: BlockId,
    },
    /// Conditional branch on an `i64` condition (non-zero = taken).
    /// Terminator.
    Branch {
        /// Condition value.
        cond: Operand,
        /// Target when the condition is non-zero.
        then_bb: BlockId,
        /// Target when the condition is zero.
        else_bb: BlockId,
    },
    /// Function return. Terminator.
    Ret {
        /// Returned value, if the function returns one.
        val: Option<Operand>,
    },
    /// Spawn a speculative thread for the next iteration of loop `loop_tag`.
    /// The speculative thread begins executing at `spawn_target` (the loop
    /// header) with a copy of the current context. Not value-producing.
    SptFork {
        /// Identifies the SPT loop this fork belongs to.
        loop_tag: u32,
        /// Block where the speculative thread starts (the loop header).
        spawn_target: BlockId,
    },
    /// Kill any running speculative thread of loop `loop_tag`; emitted at SPT
    /// loop exits. Not value-producing.
    SptKill {
        /// Identifies the SPT loop being exited.
        loop_tag: u32,
    },
}

impl InstKind {
    /// Returns `true` for block terminators.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            InstKind::Jump { .. } | InstKind::Branch { .. } | InstKind::Ret { .. }
        )
    }

    /// Returns `true` if the instruction has a side effect beyond defining a
    /// value (memory writes, calls, control flow, SPT markers). Side-effecting
    /// instructions are never removed by DCE.
    pub fn has_side_effect(&self) -> bool {
        matches!(
            self,
            InstKind::Store { .. }
                | InstKind::Call { .. }
                | InstKind::VarStore { .. }
                | InstKind::Jump { .. }
                | InstKind::Branch { .. }
                | InstKind::Ret { .. }
                | InstKind::SptFork { .. }
                | InstKind::SptKill { .. }
        )
    }

    /// Visits every operand.
    pub fn for_each_operand(&self, mut f: impl FnMut(Operand)) {
        match self {
            InstKind::Param { .. }
            | InstKind::RegionBase { .. }
            | InstKind::VarLoad { .. }
            | InstKind::Jump { .. }
            | InstKind::SptFork { .. }
            | InstKind::SptKill { .. } => {}
            InstKind::Binary { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            InstKind::Unary { val, .. }
            | InstKind::Copy { val }
            | InstKind::VarStore { val, .. } => f(*val),
            InstKind::Phi { args } => {
                for (_, v) in args {
                    f(*v);
                }
            }
            InstKind::Load { addr, .. } => f(*addr),
            InstKind::Store { addr, val, .. } => {
                f(*addr);
                f(*val);
            }
            InstKind::Call { args, .. } => {
                for a in args {
                    f(*a);
                }
            }
            InstKind::Branch { cond, .. } => f(*cond),
            InstKind::Ret { val } => {
                if let Some(v) = val {
                    f(*v);
                }
            }
        }
    }

    /// Rewrites every operand in place.
    pub fn map_operands(&mut self, mut f: impl FnMut(Operand) -> Operand) {
        match self {
            InstKind::Param { .. }
            | InstKind::RegionBase { .. }
            | InstKind::VarLoad { .. }
            | InstKind::Jump { .. }
            | InstKind::SptFork { .. }
            | InstKind::SptKill { .. } => {}
            InstKind::Binary { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            InstKind::Unary { val, .. }
            | InstKind::Copy { val }
            | InstKind::VarStore { val, .. } => *val = f(*val),
            InstKind::Phi { args } => {
                for (_, v) in args {
                    *v = f(*v);
                }
            }
            InstKind::Load { addr, .. } => *addr = f(*addr),
            InstKind::Store { addr, val, .. } => {
                *addr = f(*addr);
                *val = f(*val);
            }
            InstKind::Call { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
            InstKind::Branch { cond, .. } => *cond = f(*cond),
            InstKind::Ret { val } => {
                if let Some(v) = val {
                    *v = f(*v);
                }
            }
        }
    }

    /// Visits every block reference of a terminator (and the fork spawn
    /// target).
    pub fn for_each_target(&self, mut f: impl FnMut(BlockId)) {
        match self {
            InstKind::Jump { target } => f(*target),
            InstKind::Branch {
                then_bb, else_bb, ..
            } => {
                f(*then_bb);
                f(*else_bb);
            }
            InstKind::SptFork { spawn_target, .. } => f(*spawn_target),
            _ => {}
        }
    }

    /// Rewrites every block reference in place (terminator targets, phi
    /// incoming blocks and fork spawn targets). Used by CFG surgery and
    /// block cloning.
    pub fn map_blocks(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            InstKind::Jump { target } => *target = f(*target),
            InstKind::Branch {
                then_bb, else_bb, ..
            } => {
                *then_bb = f(*then_bb);
                *else_bb = f(*else_bb);
            }
            InstKind::Phi { args } => {
                for (bb, _) in args {
                    *bb = f(*bb);
                }
            }
            InstKind::SptFork { spawn_target, .. } => *spawn_target = f(*spawn_target),
            _ => {}
        }
    }

    /// A short mnemonic for diagnostics.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            InstKind::Param { .. } => "param",
            InstKind::Binary { .. } => "binary",
            InstKind::Unary { .. } => "unary",
            InstKind::Cmp { .. } => "cmp",
            InstKind::Phi { .. } => "phi",
            InstKind::Copy { .. } => "copy",
            InstKind::RegionBase { .. } => "region_base",
            InstKind::Load { .. } => "load",
            InstKind::Store { .. } => "store",
            InstKind::Call { .. } => "call",
            InstKind::VarLoad { .. } => "var_load",
            InstKind::VarStore { .. } => "var_store",
            InstKind::Jump { .. } => "jump",
            InstKind::Branch { .. } => "branch",
            InstKind::Ret { .. } => "ret",
            InstKind::SptFork { .. } => "spt_fork",
            InstKind::SptKill { .. } => "spt_kill",
        }
    }
}

/// An instruction: kind plus result type (`None` for non-value-producing
/// instructions such as stores, terminators and SPT markers).
#[derive(Clone, Debug, PartialEq)]
pub struct Inst {
    /// The instruction payload.
    pub kind: InstKind,
    /// Result type, if the instruction produces a value.
    pub ty: Option<Ty>,
}

impl Inst {
    /// Creates an instruction.
    pub fn new(kind: InstKind, ty: Option<Ty>) -> Self {
        Inst { kind, ty }
    }

    /// Returns `true` if the instruction produces a value.
    #[inline]
    pub fn produces_value(&self) -> bool {
        self.ty.is_some()
    }

    /// Static latency of the instruction in machine cycles; the unit of
    /// `Cost(c)` in the paper's misspeculation cost (§4.2.4). Memory and call
    /// latencies here are the *static estimates* used by the compiler; the
    /// simulator refines loads with its cache model.
    pub fn latency(&self) -> u64 {
        match &self.kind {
            InstKind::Binary { op, .. } => op.latency(self.ty.unwrap_or(Ty::I64)),
            InstKind::Unary { op, .. } => op.latency(self.ty.unwrap_or(Ty::I64)),
            InstKind::Cmp { .. } => 1,
            InstKind::Load { .. } => 3,
            InstKind::Store { .. } => 1,
            InstKind::Call { .. } => 8,
            InstKind::Phi { .. } | InstKind::Copy { .. } => 0,
            InstKind::Param { .. } | InstKind::RegionBase { .. } => 0,
            InstKind::VarLoad { .. } | InstKind::VarStore { .. } => 1,
            InstKind::Jump { .. } => 1,
            InstKind::Branch { .. } => 1,
            InstKind::Ret { .. } => 1,
            InstKind::SptFork { .. } | InstKind::SptKill { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_constructors() {
        assert_eq!(Operand::const_i64(7).as_i64(), Some(7));
        assert_eq!(Operand::const_f64(1.5).as_f64(), Some(1.5));
        assert!(Operand::const_i64(7).is_const());
        let op: Operand = InstId::new(3).into();
        assert_eq!(op.as_inst(), Some(InstId::new(3)));
        assert!(!op.is_const());
        assert_eq!(op.as_i64(), None);
        assert_eq!(op.as_f64(), None);
    }

    #[test]
    fn operand_display() {
        assert_eq!(format!("{}", Operand::const_i64(-3)), "-3");
        assert_eq!(format!("{}", Operand::Inst(InstId::new(5))), "v5");
        assert_eq!(format!("{}", Operand::const_f64(0.5)), "0.5");
    }

    #[test]
    fn operand_traversal() {
        let mut kind = InstKind::Binary {
            op: BinOp::Add,
            lhs: Operand::Inst(InstId::new(1)),
            rhs: Operand::const_i64(2),
        };
        let mut seen = Vec::new();
        kind.for_each_operand(|o| seen.push(o));
        assert_eq!(seen.len(), 2);

        kind.map_operands(|o| match o {
            Operand::Inst(_) => Operand::Inst(InstId::new(9)),
            other => other,
        });
        match kind {
            InstKind::Binary { lhs, .. } => assert_eq!(lhs, Operand::Inst(InstId::new(9))),
            _ => unreachable!(),
        }
    }

    #[test]
    fn block_traversal() {
        let mut kind = InstKind::Branch {
            cond: Operand::const_i64(1),
            then_bb: BlockId::new(1),
            else_bb: BlockId::new(2),
        };
        let mut targets = Vec::new();
        kind.for_each_target(|b| targets.push(b));
        assert_eq!(targets, vec![BlockId::new(1), BlockId::new(2)]);
        kind.map_blocks(|b| BlockId::new(b.index() + 10));
        let mut targets = Vec::new();
        kind.for_each_target(|b| targets.push(b));
        assert_eq!(targets, vec![BlockId::new(11), BlockId::new(12)]);
    }

    #[test]
    fn phi_blocks_remap() {
        let mut kind = InstKind::Phi {
            args: vec![
                (BlockId::new(0), Operand::const_i64(1)),
                (BlockId::new(1), Operand::Inst(InstId::new(4))),
            ],
        };
        kind.map_blocks(|b| BlockId::new(b.index() + 1));
        match &kind {
            InstKind::Phi { args } => {
                assert_eq!(args[0].0, BlockId::new(1));
                assert_eq!(args[1].0, BlockId::new(2));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn terminator_and_effects() {
        assert!(InstKind::Ret { val: None }.is_terminator());
        assert!(!InstKind::Copy {
            val: Operand::const_i64(0)
        }
        .is_terminator());
        assert!(InstKind::Store {
            addr: Operand::const_i64(0),
            val: Operand::const_i64(0),
            region: RegionId::UNKNOWN
        }
        .has_side_effect());
        assert!(InstKind::SptFork {
            loop_tag: 0,
            spawn_target: BlockId::new(0)
        }
        .has_side_effect());
        assert!(!InstKind::Load {
            addr: Operand::const_i64(0),
            region: RegionId::UNKNOWN
        }
        .has_side_effect());
    }

    #[test]
    fn latency_of_insts() {
        let mul = Inst::new(
            InstKind::Binary {
                op: BinOp::Mul,
                lhs: Operand::const_i64(1),
                rhs: Operand::const_i64(2),
            },
            Some(Ty::I64),
        );
        assert_eq!(mul.latency(), 3);
        let fork = Inst::new(
            InstKind::SptFork {
                loop_tag: 0,
                spawn_target: BlockId::new(0),
            },
            None,
        );
        assert_eq!(fork.latency(), 0);
    }
}

//! Scalar and CFG cleanup passes.
//!
//! These are the passes the paper relies on around the SPT transformation:
//! after code motion "the code is immediately cleaned and optimized by
//! applying SSA renaming, copy propagation and dead code elimination in ORC"
//! (§6.2). [`loop_simplify`] canonicalizes loops (dedicated preheader and a
//! single latch) before partitioning, which the SPT transformation assumes.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::ids::{BlockId, InstId};
use crate::inst::{Inst, InstKind, Operand};
use crate::loops::LoopForest;
use crate::module::Function;
use std::collections::{HashMap, HashSet};

/// Replaces every use of a `Copy` instruction with the copied operand,
/// chasing copy chains. The copies themselves become dead and are removed by
/// [`dce`]. Returns the number of rewritten operands.
pub fn copy_prop(func: &mut Function) -> usize {
    // Resolve the final source of each copy (chains are finite in SSA).
    let mut source: HashMap<InstId, Operand> = HashMap::new();
    for (idx, inst) in func.insts.iter().enumerate() {
        if let InstKind::Copy { val } = inst.kind {
            source.insert(InstId::new(idx), val);
        }
    }
    let resolve = |mut op: Operand| -> Operand {
        let mut fuel = source.len() + 1;
        while let Operand::Inst(id) = op {
            match source.get(&id) {
                Some(&next) if fuel > 0 => {
                    op = next;
                    fuel -= 1;
                }
                _ => break,
            }
        }
        op
    };

    let mut rewritten = 0;
    for inst in &mut func.insts {
        if matches!(inst.kind, InstKind::Copy { .. }) {
            continue;
        }
        inst.kind.map_operands(|op| {
            let new = resolve(op);
            if new != op {
                rewritten += 1;
            }
            new
        });
    }
    rewritten
}

/// Dead-code elimination: removes value-producing instructions whose values
/// are never used, transitively. Side-effecting instructions (stores, calls,
/// terminators, SPT markers) are always live roots. Returns the number of
/// removed instructions.
pub fn dce(func: &mut Function) -> usize {
    let mut live: HashSet<InstId> = HashSet::new();
    let mut work: Vec<InstId> = Vec::new();

    for bb in func.block_ids() {
        for &i in &func.block(bb).insts {
            if func.inst(i).kind.has_side_effect() && live.insert(i) {
                work.push(i);
            }
        }
    }
    while let Some(i) = work.pop() {
        func.inst(i).kind.for_each_operand(|op| {
            if let Operand::Inst(def) = op {
                if live.insert(def) {
                    work.push(def);
                }
            }
        });
    }

    let mut removed = 0;
    for bb in func.block_ids().collect::<Vec<_>>() {
        let block = func.block_mut(bb);
        let before = block.insts.len();
        block.insts.retain(|i| live.contains(i));
        removed += before - block.insts.len();
    }
    removed
}

/// Folds constant expressions: binary/unary/cmp instructions whose operands
/// are all immediates become `Copy`s of the folded constant; single-operand
/// phis become copies. Returns the number of folded instructions. Run
/// [`copy_prop`] + [`dce`] afterwards.
pub fn const_fold(func: &mut Function) -> usize {
    use crate::types::Ty;
    let mut folded = 0;
    for idx in 0..func.insts.len() {
        let inst = &func.insts[idx];
        let new_kind = match &inst.kind {
            InstKind::Binary { op, lhs, rhs } => match (inst.ty, lhs, rhs) {
                (Some(Ty::I64), Operand::ConstI64(a), Operand::ConstI64(b)) => {
                    Some(InstKind::Copy {
                        val: Operand::ConstI64(op.eval_i64(*a, *b)),
                    })
                }
                (Some(Ty::F64), Operand::ConstF64Bits(a), Operand::ConstF64Bits(b)) => {
                    Some(InstKind::Copy {
                        val: Operand::const_f64(
                            op.eval_f64(f64::from_bits(*a), f64::from_bits(*b)),
                        ),
                    })
                }
                _ => None,
            },
            InstKind::Unary { op, val } => match (inst.ty, val) {
                (Some(Ty::I64), Operand::ConstI64(a)) => Some(InstKind::Copy {
                    val: Operand::ConstI64(op.eval_i64(*a)),
                }),
                (Some(Ty::F64), Operand::ConstF64Bits(a)) => Some(InstKind::Copy {
                    val: Operand::const_f64(op.eval_f64(f64::from_bits(*a))),
                }),
                (Some(Ty::F64), Operand::ConstI64(a)) => Some(InstKind::Copy {
                    val: Operand::const_f64(*a as f64),
                }),
                (Some(Ty::I64), Operand::ConstF64Bits(a)) => Some(InstKind::Copy {
                    val: Operand::ConstI64(f64::from_bits(*a) as i64),
                }),
                _ => None,
            },
            InstKind::Cmp {
                op,
                operand_ty,
                lhs,
                rhs,
            } => match (operand_ty, lhs, rhs) {
                (Ty::I64, Operand::ConstI64(a), Operand::ConstI64(b)) => Some(InstKind::Copy {
                    val: Operand::ConstI64(op.eval_i64(*a, *b) as i64),
                }),
                (Ty::F64, Operand::ConstF64Bits(a), Operand::ConstF64Bits(b)) => {
                    Some(InstKind::Copy {
                        val: Operand::ConstI64(
                            op.eval_f64(f64::from_bits(*a), f64::from_bits(*b)) as i64
                        ),
                    })
                }
                _ => None,
            },
            InstKind::Phi { args } if args.len() == 1 => Some(InstKind::Copy { val: args[0].1 }),
            _ => None,
        };
        if let Some(kind) = new_kind {
            func.insts[idx].kind = kind;
            folded += 1;
        }
    }
    folded
}

/// CFG simplification:
/// 1. folds conditional branches with constant conditions or identical
///    targets into jumps,
/// 2. removes unreachable blocks (emptied, so ids stay stable),
/// 3. merges a block into its unique predecessor when that predecessor has a
///    single successor (keeping loop headers intact is the caller's concern;
///    this pass never merges a block that has a phi).
///
/// Returns `true` if anything changed.
pub fn simplify_cfg(func: &mut Function) -> bool {
    let mut changed_any = false;
    loop {
        let mut changed = false;

        // 1. Fold trivial branches.
        for bb in func.block_ids().collect::<Vec<_>>() {
            let Some(term) = func.terminator(bb) else {
                continue;
            };
            let new_kind = match &func.inst(term).kind {
                InstKind::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    if then_bb == else_bb {
                        Some(InstKind::Jump { target: *then_bb })
                    } else if let Operand::ConstI64(c) = cond {
                        let target = if *c != 0 { *then_bb } else { *else_bb };
                        let dead = if *c != 0 { *else_bb } else { *then_bb };
                        remove_phi_edges(func, dead, bb);
                        Some(InstKind::Jump { target })
                    } else {
                        None
                    }
                }
                _ => None,
            };
            if let Some(kind) = new_kind {
                func.inst_mut(term).kind = kind;
                changed = true;
            }
        }

        // 2. Drop unreachable blocks (empty them; remove phi edges from them).
        let cfg = Cfg::compute(func);
        for bb in func.block_ids().collect::<Vec<_>>() {
            if !cfg.is_reachable(bb) && !func.block(bb).insts.is_empty() {
                for &succ in &cfg.succs[bb.index()] {
                    remove_phi_edges(func, succ, bb);
                }
                func.block_mut(bb).insts.clear();
                changed = true;
            }
        }

        // 3. Merge straight-line chains: pred --jump--> bb, bb's only pred.
        let cfg = Cfg::compute(func);
        for bb in func.block_ids().collect::<Vec<_>>() {
            if bb == func.entry || !cfg.is_reachable(bb) {
                continue;
            }
            let preds = cfg.preds(bb);
            if preds.len() != 1 {
                continue;
            }
            let pred = preds[0];
            if cfg.succs(pred).len() != 1 || pred == bb {
                continue;
            }
            // Don't merge blocks containing phis (they'd need rewriting; after
            // a merge the single-pred phi is degenerate anyway and const_fold
            // turns it into a copy first).
            let has_phi = func
                .block(bb)
                .insts
                .iter()
                .any(|&i| matches!(func.inst(i).kind, InstKind::Phi { .. }));
            if has_phi {
                continue;
            }
            // Splice bb's instructions into pred, replacing pred's jump.
            let Some(term) = func.terminator(pred) else {
                continue;
            };
            if !matches!(func.inst(term).kind, InstKind::Jump { .. }) {
                continue;
            }
            let mut moved = std::mem::take(&mut func.block_mut(bb).insts);
            let pred_block = func.block_mut(pred);
            pred_block.insts.pop(); // remove jump
            pred_block.insts.append(&mut moved);
            // Successor phis referring to bb must now refer to pred.
            let succs_of_bb: Vec<BlockId> = func.successors(pred);
            for s in succs_of_bb {
                rename_phi_edges(func, s, bb, pred);
            }
            changed = true;
            break; // CFG changed; recompute
        }

        if changed {
            changed_any = true;
        } else {
            break;
        }
    }
    changed_any
}

/// Removes phi incoming edges in `block` that come from `from_pred`.
fn remove_phi_edges(func: &mut Function, block: BlockId, from_pred: BlockId) {
    for &i in &func.block(block).insts.clone() {
        if let InstKind::Phi { args } = &mut func.inst_mut(i).kind {
            args.retain(|(bb, _)| *bb != from_pred);
        }
    }
}

/// Renames phi incoming edges in `block` from `old_pred` to `new_pred`.
fn rename_phi_edges(func: &mut Function, block: BlockId, old_pred: BlockId, new_pred: BlockId) {
    for &i in &func.block(block).insts.clone() {
        if let InstKind::Phi { args } = &mut func.inst_mut(i).kind {
            for (bb, _) in args.iter_mut() {
                if *bb == old_pred {
                    *bb = new_pred;
                }
            }
        }
    }
}

/// Canonicalizes every natural loop of the function:
///
/// * inserts a **dedicated preheader** if the header has multiple outside
///   predecessors or its outside predecessor has other successors;
/// * merges multiple **latches** into a single latch block.
///
/// The SPT transformation requires both. Returns `true` if the CFG changed.
pub fn loop_simplify(func: &mut Function) -> bool {
    let mut changed_any = false;
    loop {
        let cfg = Cfg::compute(func);
        let dom = DomTree::compute(&cfg);
        let forest = LoopForest::compute(func, &cfg, &dom);
        let mut changed = false;

        for lid in forest.ids() {
            let l = forest.get(lid).clone();
            let inside: HashSet<BlockId> = l.blocks.iter().copied().collect();

            // Preheader.
            if l.preheader(&cfg).is_none() {
                let outside_preds: Vec<BlockId> = cfg
                    .preds(l.header)
                    .iter()
                    .copied()
                    .filter(|p| !inside.contains(p))
                    .collect();
                if !outside_preds.is_empty() {
                    let pre = func.add_block();
                    func.append_inst(pre, Inst::new(InstKind::Jump { target: l.header }, None));
                    for p in &outside_preds {
                        retarget(func, *p, l.header, pre);
                    }
                    // Split header phis: incoming from outside preds now merge
                    // in the preheader.
                    split_phis(func, l.header, &outside_preds, pre);
                    changed = true;
                    break;
                }
            }

            // Single latch.
            if l.latches.len() > 1 {
                let latch = func.add_block();
                func.append_inst(latch, Inst::new(InstKind::Jump { target: l.header }, None));
                for p in &l.latches {
                    retarget(func, *p, l.header, latch);
                }
                split_phis(func, l.header, &l.latches, latch);
                changed = true;
                break;
            }
        }

        if changed {
            changed_any = true;
        } else {
            break;
        }
    }
    changed_any
}

/// Redirects `pred`'s terminator edges pointing at `old` to `new`.
fn retarget(func: &mut Function, pred: BlockId, old: BlockId, new: BlockId) {
    if let Some(term) = func.terminator(pred) {
        func.inst_mut(term)
            .kind
            .map_blocks(|b| if b == old { new } else { b });
    }
}

/// For each phi in `block`, moves the incoming entries from `from_preds` into
/// a new phi placed in `via` (the new intermediate block), and replaces them
/// with a single incoming entry `(via, new_phi)`.
fn split_phis(func: &mut Function, block: BlockId, from_preds: &[BlockId], via: BlockId) {
    let phi_ids: Vec<InstId> = func
        .block(block)
        .insts
        .iter()
        .copied()
        .filter(|&i| matches!(func.inst(i).kind, InstKind::Phi { .. }))
        .collect();
    for phi in phi_ids {
        let ty = func.inst(phi).ty;
        type PhiArgs = Vec<(BlockId, Operand)>;
        let (moved, kept): (PhiArgs, PhiArgs) = match &func.inst(phi).kind {
            InstKind::Phi { args } => args
                .iter()
                .copied()
                .partition(|(bb, _)| from_preds.contains(bb)),
            _ => unreachable!(),
        };
        if moved.is_empty() {
            continue;
        }
        let incoming = if moved.len() == 1 {
            moved[0].1
        } else {
            let new_phi = func.add_inst(Inst::new(InstKind::Phi { args: moved }, ty));
            // Phis go at the top of `via`.
            let via_block = func.block_mut(via);
            via_block.insts.insert(0, new_phi);
            Operand::Inst(new_phi)
        };
        if let InstKind::Phi { args } = &mut func.inst_mut(phi).kind {
            *args = kept;
            args.push((via, incoming));
        }
    }
}

/// Runs the standard cleanup pipeline: constant folding, copy propagation,
/// DCE and CFG simplification, to fixpoint (bounded). Returns the number of
/// iterations performed.
pub fn cleanup(func: &mut Function) -> usize {
    let mut iters = 0;
    loop {
        iters += 1;
        let f1 = const_fold(func);
        let c = copy_prop(func);
        let d = dce(func);
        let s = simplify_cfg(func);
        if (f1 == 0 && c == 0 && d == 0 && !s) || iters >= 10 {
            return iters;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::ops::{BinOp, CmpOp};
    use crate::types::Ty;

    #[test]
    fn copy_chains_resolve() {
        let mut b = FuncBuilder::new("c", vec![("x".into(), Ty::I64)], Some(Ty::I64));
        let x = b.param(0);
        let c1 = b.copy(x, Ty::I64);
        let c2 = b.copy(c1, Ty::I64);
        let y = b.binary(BinOp::Add, c2, Operand::const_i64(1));
        b.ret(Some(y));
        let mut f = b.finish();
        let n = copy_prop(&mut f);
        assert!(n >= 1);
        let removed = dce(&mut f);
        assert_eq!(removed, 2, "both copies die");
        crate::verify::verify_func(&f).unwrap();
    }

    #[test]
    fn dce_keeps_side_effects() {
        let mut b = FuncBuilder::new("s", vec![], None);
        let r = crate::ids::RegionId::new(0);
        let base = b.region_base(r);
        b.store(base, Operand::const_i64(1), r);
        let dead = b.binary(BinOp::Add, Operand::const_i64(1), Operand::const_i64(2));
        let _ = dead;
        b.ret(None);
        let mut f = b.finish();
        let removed = dce(&mut f);
        assert_eq!(removed, 1);
        assert_eq!(f.placed_inst_count(), 3);
    }

    #[test]
    fn const_fold_arithmetic() {
        let mut b = FuncBuilder::new("k", vec![], Some(Ty::I64));
        let v = b.binary(BinOp::Mul, Operand::const_i64(6), Operand::const_i64(7));
        let c = b.cmp(CmpOp::Eq, Ty::I64, v, Operand::const_i64(42));
        b.ret(Some(c));
        let mut f = b.finish();
        let folded = const_fold(&mut f);
        assert_eq!(folded, 1);
        copy_prop(&mut f);
        let folded2 = const_fold(&mut f);
        assert_eq!(folded2, 1, "cmp folds after mul's copy propagates");
        copy_prop(&mut f);
        // Now the ret returns constant 1.
        let term = f.terminator(f.entry).unwrap();
        match &f.inst(term).kind {
            InstKind::Ret { val } => assert_eq!(*val, Some(Operand::ConstI64(1))),
            _ => panic!("expected ret"),
        }
    }

    #[test]
    fn simplify_folds_constant_branch() {
        let mut b = FuncBuilder::new("b", vec![], Some(Ty::I64));
        let t = b.add_block();
        let e = b.add_block();
        b.branch(Operand::const_i64(1), t, e);
        b.switch_to(t);
        b.ret(Some(Operand::const_i64(10)));
        b.switch_to(e);
        b.ret(Some(Operand::const_i64(20)));
        let mut f = b.finish();
        assert!(simplify_cfg(&mut f));
        let cfg = Cfg::compute(&f);
        assert!(!cfg.is_reachable(e));
        // Entry merged with t: entry now returns directly.
        let term = f.terminator(f.entry).unwrap();
        assert!(matches!(f.inst(term).kind, InstKind::Ret { .. }));
    }

    #[test]
    fn loop_simplify_inserts_preheader() {
        // Header with two outside predecessors.
        let mut b = FuncBuilder::new("p", vec![("c".into(), Ty::I64)], None);
        let c = b.param(0);
        let a1 = b.add_block();
        let a2 = b.add_block();
        let header = b.add_block();
        let exit = b.add_block();
        b.branch(c, a1, a2);
        b.switch_to(a1);
        b.jump(header);
        b.switch_to(a2);
        b.jump(header);
        b.switch_to(header);
        b.branch(c, header, exit); // self-loop
        b.switch_to(exit);
        b.ret(None);
        let mut f = b.finish();
        assert!(loop_simplify(&mut f));
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&cfg);
        let forest = LoopForest::compute(&f, &cfg, &dom);
        assert_eq!(forest.len(), 1);
        let l = forest.get(crate::loops::LoopId::new(0));
        assert!(l.preheader(&cfg).is_some(), "preheader inserted");
        crate::verify::verify_func(&f).unwrap();
    }

    #[test]
    fn loop_simplify_merges_latches() {
        // Loop with two back edges.
        let mut b = FuncBuilder::new("m", vec![("c".into(), Ty::I64)], None);
        let c = b.param(0);
        let header = b.add_block();
        let l1 = b.add_block();
        let l2 = b.add_block();
        let exit = b.add_block();
        b.jump(header);
        b.switch_to(header);
        b.branch(c, l1, exit);
        b.switch_to(l1);
        b.branch(c, header, l2); // back edge 1
        b.switch_to(l2);
        b.jump(header); // back edge 2
        b.switch_to(exit);
        b.ret(None);
        let mut f = b.finish();
        assert!(loop_simplify(&mut f));
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&cfg);
        let forest = LoopForest::compute(&f, &cfg, &dom);
        let l = forest
            .ids()
            .map(|i| forest.get(i))
            .find(|l| l.header == header)
            .unwrap();
        assert_eq!(l.latches.len(), 1, "latches merged");
        crate::verify::verify_func(&f).unwrap();
    }

    #[test]
    fn cleanup_reaches_fixpoint() {
        let mut b = FuncBuilder::new("f", vec![], Some(Ty::I64));
        let v = b.binary(BinOp::Add, Operand::const_i64(1), Operand::const_i64(2));
        let w = b.binary(BinOp::Mul, v, Operand::const_i64(0));
        let t = b.add_block();
        let e = b.add_block();
        b.branch(w, t, e);
        b.switch_to(t);
        b.ret(Some(Operand::const_i64(1)));
        b.switch_to(e);
        b.ret(Some(Operand::const_i64(2)));
        let mut f = b.finish();
        let iters = cleanup(&mut f);
        assert!(iters < 10);
        let term = f.terminator(f.entry).unwrap();
        match &f.inst(term).kind {
            InstKind::Ret { val } => assert_eq!(*val, Some(Operand::ConstI64(2))),
            k => panic!("expected folded ret, got {k:?}"),
        }
    }
}

//! The scalar type system of the IR.

use std::fmt;

/// Scalar value types.
///
/// The source language (`minic`) has 64-bit integers and 64-bit floats;
/// addresses are plain `I64` cell indices into the module's flat memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ty {
    /// 64-bit signed integer (also used for booleans and addresses).
    I64,
    /// 64-bit IEEE-754 float.
    F64,
}

impl Ty {
    /// Returns `true` for [`Ty::I64`].
    #[inline]
    pub fn is_int(self) -> bool {
        matches!(self, Ty::I64)
    }

    /// Returns `true` for [`Ty::F64`].
    #[inline]
    pub fn is_float(self) -> bool {
        matches!(self, Ty::F64)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::I64 => write!(f, "i64"),
            Ty::F64 => write!(f, "f64"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(Ty::I64.to_string(), "i64");
        assert_eq!(Ty::F64.to_string(), "f64");
    }

    #[test]
    fn predicates() {
        assert!(Ty::I64.is_int());
        assert!(!Ty::I64.is_float());
        assert!(Ty::F64.is_float());
    }
}

//! Textual IR printer for debugging and golden tests.

use crate::inst::{InstKind, Operand};
use crate::module::{Function, Module};
use std::fmt::Write as _;

/// Renders a function as text.
///
/// The format is stable enough for golden tests:
///
/// ```text
/// fn sum(n: i64) -> i64 {
/// bb0:
///   v0 = param 0
///   ...
/// }
/// ```
pub fn print_func(func: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = func
        .params
        .iter()
        .map(|(n, t)| format!("{n}: {t}"))
        .collect();
    let ret = func.ret_ty.map(|t| format!(" -> {t}")).unwrap_or_default();
    let _ = writeln!(out, "fn {}({}){} {{", func.name, params.join(", "), ret);
    for bb in func.block_ids() {
        let block = func.block(bb);
        if block.insts.is_empty() {
            continue;
        }
        let _ = writeln!(out, "{bb}:");
        for &i in &block.insts {
            let inst = func.inst(i);
            let lhs = if inst.produces_value() {
                format!("{i} = ")
            } else {
                String::new()
            };
            let body = match &inst.kind {
                InstKind::Param { index } => format!("param {index}"),
                InstKind::Binary { op, lhs, rhs } => format!("{op} {lhs}, {rhs}"),
                InstKind::Unary { op, val } => format!("{op} {val}"),
                InstKind::Cmp {
                    op,
                    operand_ty,
                    lhs,
                    rhs,
                } => format!("cmp.{op}.{operand_ty} {lhs}, {rhs}"),
                InstKind::Phi { args } => {
                    let parts: Vec<String> =
                        args.iter().map(|(b, v)| format!("[{b}: {v}]")).collect();
                    format!("phi {}", parts.join(", "))
                }
                InstKind::Copy { val } => format!("copy {val}"),
                InstKind::RegionBase { region } => format!("region_base {region}"),
                InstKind::Load { addr, region } => format!("load {addr} @{region}"),
                InstKind::Store { addr, val, region } => {
                    format!("store {val} -> {addr} @{region}")
                }
                InstKind::Call { callee, args } => {
                    let parts: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                    format!("call {callee}({})", parts.join(", "))
                }
                InstKind::VarLoad { var } => format!("var_load {var}"),
                InstKind::VarStore { var, val } => format!("var_store {val} -> {var}"),
                InstKind::Jump { target } => format!("jump {target}"),
                InstKind::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => format!("br {cond}, {then_bb}, {else_bb}"),
                InstKind::Ret { val } => match val {
                    Some(v) => format!("ret {v}"),
                    None => "ret".to_string(),
                },
                InstKind::SptFork {
                    loop_tag,
                    spawn_target,
                } => format!("spt_fork #{loop_tag} -> {spawn_target}"),
                InstKind::SptKill { loop_tag } => format!("spt_kill #{loop_tag}"),
            };
            let ty = inst.ty.map(|t| format!(" : {t}")).unwrap_or_default();
            let _ = writeln!(out, "  {lhs}{body}{ty}");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a whole module (globals then functions).
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    for (idx, g) in module.globals.iter().enumerate() {
        let _ = writeln!(
            out,
            "global region{idx} {}: [{}; {}]",
            g.name, g.elem_ty, g.size
        );
    }
    if !module.globals.is_empty() {
        out.push('\n');
    }
    for func in &module.funcs {
        out.push_str(&print_func(func));
        out.push('\n');
    }
    out
}

/// Renders one operand (mirrors its `Display`); exposed for diagnostics in
/// other crates.
pub fn operand_str(op: Operand) -> String {
    op.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::ops::BinOp;
    use crate::types::Ty;

    #[test]
    fn prints_function() {
        let mut b = FuncBuilder::new("f", vec![("x".into(), Ty::I64)], Some(Ty::I64));
        let x = b.param(0);
        let y = b.binary(BinOp::Add, x, Operand::const_i64(1));
        b.ret(Some(y));
        let text = print_func(&b.finish());
        assert!(text.contains("fn f(x: i64) -> i64 {"));
        assert!(text.contains("v0 = param 0 : i64"));
        assert!(text.contains("v1 = add v0, 1 : i64"));
        assert!(text.contains("ret v1"));
    }

    #[test]
    fn prints_module_with_globals() {
        let mut m = Module::new();
        m.add_global("tab", 8, Ty::F64);
        let mut b = FuncBuilder::new("main", vec![], None);
        b.ret(None);
        m.add_func(b.finish());
        let text = print_module(&m);
        assert!(text.contains("global region0 tab: [f64; 8]"));
        assert!(text.contains("fn main()"));
    }
}

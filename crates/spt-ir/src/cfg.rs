//! Control-flow graph utilities: predecessor/successor maps, reachability
//! and reverse postorder.

use crate::ids::BlockId;
use crate::module::Function;

/// A snapshot of a function's control-flow graph.
///
/// The CFG is computed once from the function and does not track subsequent
/// mutations; recompute after CFG surgery.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Successors per block.
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessors per block.
    pub preds: Vec<Vec<BlockId>>,
    /// Blocks in reverse postorder from the entry (unreachable blocks are
    /// absent).
    pub rpo: Vec<BlockId>,
    /// Position of each block in `rpo` (`usize::MAX` for unreachable blocks).
    pub rpo_index: Vec<usize>,
    entry: BlockId,
}

impl Cfg {
    /// Computes the CFG of a function.
    pub fn compute(func: &Function) -> Self {
        let n = func.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for bb in func.block_ids() {
            for s in func.successors(bb) {
                succs[bb.index()].push(s);
                preds[s.index()].push(bb);
            }
        }

        // Iterative DFS computing postorder.
        let mut postorder = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        // Stack holds (block, next successor index).
        let mut stack: Vec<(BlockId, usize)> = vec![(func.entry, 0)];
        visited[func.entry.index()] = true;
        while let Some((bb, si)) = stack.last_mut() {
            let bb = *bb;
            if *si < succs[bb.index()].len() {
                let s = succs[bb.index()][*si];
                *si += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                postorder.push(bb);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = postorder.into_iter().rev().collect();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &bb) in rpo.iter().enumerate() {
            rpo_index[bb.index()] = i;
        }

        Cfg {
            succs,
            preds,
            rpo,
            rpo_index,
            entry: func.entry,
        }
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Successors of `bb`.
    pub fn succs(&self, bb: BlockId) -> &[BlockId] {
        &self.succs[bb.index()]
    }

    /// Predecessors of `bb`.
    pub fn preds(&self, bb: BlockId) -> &[BlockId] {
        &self.preds[bb.index()]
    }

    /// Returns `true` if `bb` is reachable from the entry.
    pub fn is_reachable(&self, bb: BlockId) -> bool {
        self.rpo_index[bb.index()] != usize::MAX
    }

    /// Number of blocks (including unreachable ones).
    pub fn num_blocks(&self) -> usize {
        self.succs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::inst::Operand;
    use crate::types::Ty;

    /// entry -> (a | b) -> join -> ret, plus an unreachable block.
    fn diamond() -> Function {
        let mut b = FuncBuilder::new("d", vec![("c".into(), Ty::I64)], None);
        let c = b.param(0);
        let a_bb = b.add_block();
        let b_bb = b.add_block();
        let join = b.add_block();
        let dead = b.add_block();
        b.branch(c, a_bb, b_bb);
        b.switch_to(a_bb);
        b.jump(join);
        b.switch_to(b_bb);
        b.jump(join);
        b.switch_to(join);
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn diamond_cfg() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.succs(f.entry).len(), 2);
        let join = BlockId::new(3);
        assert_eq!(cfg.preds(join).len(), 2);
        assert!(cfg.is_reachable(join));
        assert!(!cfg.is_reachable(BlockId::new(4)));
        // RPO starts at entry, and join comes after both arms.
        assert_eq!(cfg.rpo[0], f.entry);
        let ij = cfg.rpo_index[join.index()];
        assert!(ij > cfg.rpo_index[BlockId::new(1).index()]);
        assert!(ij > cfg.rpo_index[BlockId::new(2).index()]);
        assert_eq!(cfg.rpo.len(), 4);
    }

    #[test]
    fn loop_rpo() {
        // entry -> header <-> body; header -> exit
        let mut b = FuncBuilder::new("l", vec![("c".into(), Ty::I64)], None);
        let c = b.param(0);
        let header = b.add_block();
        let body = b.add_block();
        let exit = b.add_block();
        b.jump(header);
        b.switch_to(header);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.preds(header).len(), 2);
        assert!(cfg.rpo_index[header.index()] < cfg.rpo_index[body.index()]);
        // self-check: rpo visits all 4 blocks
        assert_eq!(cfg.rpo.len(), 4);
        let _ = Operand::const_i64(0);
    }
}

//! SSA construction (`mem2reg`): promotes frontend variable slots
//! (`VarLoad`/`VarStore`) to SSA values with phi nodes.
//!
//! Classic algorithm: phi insertion at iterated dominance frontiers of the
//! definition blocks, then renaming along a dominator-tree walk. `VarLoad`s
//! are rewritten into `Copy`s of the reaching definition so existing operand
//! references stay valid; `VarStore`s are deleted. Run
//! [`crate::passes::copy_prop`] and [`crate::passes::dce`] afterwards to
//! clean up, as the paper does after its own transformations ("the code is
//! immediately cleaned and optimized by applying SSA renaming, copy
//! propagation and dead code elimination", §6.2).

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::ids::{BlockId, InstId, VarId};
use crate::inst::{Inst, InstKind, Operand};
use crate::module::Function;
use crate::types::Ty;
use std::collections::{HashMap, HashSet};

/// Converts all variable slots of `func` into SSA form.
///
/// Returns the number of phi nodes inserted.
pub fn mem2reg(func: &mut Function) -> usize {
    let cfg = Cfg::compute(func);
    let dom = DomTree::compute(&cfg);

    // Gather variable types and definition sites.
    let mut var_ty: HashMap<VarId, Ty> = HashMap::new();
    let mut def_blocks: HashMap<VarId, Vec<BlockId>> = HashMap::new();
    for bb in func.block_ids() {
        for &i in &func.block(bb).insts {
            match &func.inst(i).kind {
                InstKind::VarLoad { var } => {
                    let ty = func.inst(i).ty.unwrap_or(Ty::I64);
                    var_ty.entry(*var).or_insert(ty);
                }
                InstKind::VarStore { var, val } => {
                    let ty = operand_ty(func, *val).unwrap_or(Ty::I64);
                    var_ty.entry(*var).or_insert(ty);
                    def_blocks.entry(*var).or_default().push(bb);
                }
                _ => {}
            }
        }
    }

    // Phi insertion at iterated dominance frontiers.
    // phi_of[(block, var)] -> phi inst id
    let mut phi_of: HashMap<(BlockId, VarId), InstId> = HashMap::new();
    let mut phis_in_block: HashMap<BlockId, Vec<(InstId, VarId)>> = HashMap::new();
    let mut vars: Vec<VarId> = var_ty.keys().copied().collect();
    vars.sort();
    for &var in &vars {
        let Some(defs) = def_blocks.get(&var) else {
            continue;
        };
        let ty = var_ty[&var];
        let mut work: Vec<BlockId> = defs.clone();
        let mut placed: HashSet<BlockId> = HashSet::new();
        let mut ever_on_work: HashSet<BlockId> = work.iter().copied().collect();
        while let Some(bb) = work.pop() {
            if !cfg.is_reachable(bb) {
                continue;
            }
            for &df in &dom.frontier[bb.index()] {
                if placed.insert(df) {
                    let phi =
                        func.add_inst(Inst::new(InstKind::Phi { args: Vec::new() }, Some(ty)));
                    phi_of.insert((df, var), phi);
                    phis_in_block.entry(df).or_default().push((phi, var));
                    if ever_on_work.insert(df) {
                        work.push(df);
                    }
                }
            }
        }
    }
    let num_phis = phi_of.len();
    let phi_var: HashMap<InstId, VarId> =
        phi_of.iter().map(|(&(_, var), &phi)| (phi, var)).collect();

    // Prepend phis to their blocks (in deterministic var order).
    for (bb, mut phis) in phis_in_block.clone() {
        phis.sort_by_key(|&(_, var)| var);
        let block = func.block_mut(bb);
        let old = std::mem::take(&mut block.insts);
        block.insts = phis.iter().map(|&(id, _)| id).collect();
        block.insts.extend(old);
    }

    // Renaming along the dominator tree.
    // Per-var stack of current definitions.
    let mut stacks: HashMap<VarId, Vec<Operand>> = HashMap::new();
    let default_of = |var: VarId| -> Operand {
        match var_ty.get(&var) {
            Some(Ty::F64) => Operand::const_f64(0.0),
            _ => Operand::const_i64(0),
        }
    };

    enum Action {
        Enter(BlockId),
        Exit(Vec<(VarId, usize)>), // pop counts
    }
    let mut stack = vec![Action::Enter(dom.entry())];
    while let Some(action) = stack.pop() {
        match action {
            Action::Exit(pops) => {
                for (var, count) in pops {
                    let s = stacks.get_mut(&var).expect("stack exists");
                    for _ in 0..count {
                        s.pop();
                    }
                }
            }
            Action::Enter(bb) => {
                let mut pushed: HashMap<VarId, usize> = HashMap::new();
                let insts: Vec<InstId> = func.block(bb).insts.clone();
                let mut to_delete: HashSet<InstId> = HashSet::new();
                for i in insts {
                    let kind = func.inst(i).kind.clone();
                    match kind {
                        InstKind::Phi { .. } => {
                            // If this phi belongs to a variable, it becomes
                            // the current definition.
                            if let Some(&var) = phi_var.get(&i) {
                                stacks.entry(var).or_default().push(Operand::Inst(i));
                                *pushed.entry(var).or_insert(0) += 1;
                            }
                        }
                        InstKind::VarLoad { var } => {
                            let cur = stacks
                                .get(&var)
                                .and_then(|s| s.last().copied())
                                .unwrap_or_else(|| default_of(var));
                            func.inst_mut(i).kind = InstKind::Copy { val: cur };
                        }
                        InstKind::VarStore { var, val } => {
                            stacks.entry(var).or_default().push(val);
                            *pushed.entry(var).or_insert(0) += 1;
                            to_delete.insert(i);
                        }
                        _ => {}
                    }
                }
                if !to_delete.is_empty() {
                    func.block_mut(bb).insts.retain(|i| !to_delete.contains(i));
                }

                // Fill phi operands of successors.
                for &succ in cfg.succs(bb) {
                    let phi_ids: Vec<(InstId, VarId)> =
                        phis_in_block.get(&succ).cloned().unwrap_or_default();
                    for (phi, var) in phi_ids {
                        let cur = stacks
                            .get(&var)
                            .and_then(|s| s.last().copied())
                            .unwrap_or_else(|| default_of(var));
                        if let InstKind::Phi { args } = &mut func.inst_mut(phi).kind {
                            args.push((bb, cur));
                        }
                    }
                }

                stack.push(Action::Exit(pushed.into_iter().collect()));
                for &child in dom.children[bb.index()].iter().rev() {
                    stack.push(Action::Enter(child));
                }
            }
        }
    }

    num_phis
}

/// Returns `true` if the function contains no `VarLoad`/`VarStore`
/// instructions (i.e. is in SSA form with respect to variable slots).
pub fn is_ssa(func: &Function) -> bool {
    for bb in func.block_ids() {
        for &i in &func.block(bb).insts {
            if matches!(
                func.inst(i).kind,
                InstKind::VarLoad { .. } | InstKind::VarStore { .. }
            ) {
                return false;
            }
        }
    }
    true
}

fn operand_ty(func: &Function, op: Operand) -> Option<Ty> {
    match op {
        Operand::Inst(id) => func.inst(id).ty,
        Operand::ConstI64(_) => Some(Ty::I64),
        Operand::ConstF64Bits(_) => Some(Ty::F64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::ops::{BinOp, CmpOp};
    use crate::passes;

    /// sum(n): s=0; i=0; while(i<n){s+=i; i+=1}; return s
    fn sum_func() -> Function {
        let mut b = FuncBuilder::new("sum", vec![("n".into(), Ty::I64)], Some(Ty::I64));
        let n = b.param(0);
        let s = b.declare_var(Ty::I64);
        let i = b.declare_var(Ty::I64);
        b.var_store(s, Operand::const_i64(0));
        b.var_store(i, Operand::const_i64(0));
        let header = b.add_block();
        let body = b.add_block();
        let exit = b.add_block();
        b.jump(header);
        b.switch_to(header);
        let iv = b.var_load(i, Ty::I64);
        let c = b.cmp(CmpOp::Lt, Ty::I64, iv, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let sv = b.var_load(s, Ty::I64);
        let iv2 = b.var_load(i, Ty::I64);
        let s2 = b.binary(BinOp::Add, sv, iv2);
        b.var_store(s, s2);
        let i2 = b.binary(BinOp::Add, iv2, Operand::const_i64(1));
        b.var_store(i, i2);
        b.jump(header);
        b.switch_to(exit);
        let out = b.var_load(s, Ty::I64);
        b.ret(Some(out));
        b.finish()
    }

    #[test]
    fn promotes_loop_variables() {
        let mut f = sum_func();
        assert!(!is_ssa(&f));
        let phis = mem2reg(&mut f);
        assert!(is_ssa(&f));
        // Two loop-carried variables => two phis at the header.
        assert_eq!(phis, 2);
        crate::verify::verify_func(&f).expect("ssa output verifies");
    }

    #[test]
    fn phi_args_cover_all_preds() {
        let mut f = sum_func();
        mem2reg(&mut f);
        let cfg = Cfg::compute(&f);
        for bb in f.block_ids() {
            for &i in &f.block(bb).insts {
                if let InstKind::Phi { args } = &f.inst(i).kind {
                    assert_eq!(
                        args.len(),
                        cfg.preds(bb).len(),
                        "phi {i} in {bb} must have one arg per pred"
                    );
                }
            }
        }
    }

    #[test]
    fn cleanup_after_mem2reg_leaves_lean_ir() {
        let mut f = sum_func();
        mem2reg(&mut f);
        passes::copy_prop(&mut f);
        let removed = passes::dce(&mut f);
        assert!(removed > 0, "copies should be cleaned up");
        // No Copy instructions should survive in blocks.
        for bb in f.block_ids() {
            for &i in &f.block(bb).insts {
                assert!(
                    !matches!(f.inst(i).kind, InstKind::Copy { .. }),
                    "copy survived cleanup"
                );
            }
        }
        crate::verify::verify_func(&f).expect("clean ir verifies");
    }

    #[test]
    fn uninitialized_var_reads_default() {
        let mut b = FuncBuilder::new("u", vec![], Some(Ty::I64));
        let x = b.declare_var(Ty::I64);
        let v = b.var_load(x, Ty::I64);
        b.ret(Some(v));
        let mut f = b.finish();
        mem2reg(&mut f);
        assert!(is_ssa(&f));
        // The load became a copy of the default constant 0.
        let has_zero_copy = f.insts.iter().any(|inst| {
            matches!(
                inst.kind,
                InstKind::Copy {
                    val: Operand::ConstI64(0)
                }
            )
        });
        assert!(has_zero_copy);
    }

    #[test]
    fn diamond_merge_gets_phi() {
        let mut b = FuncBuilder::new("d", vec![("c".into(), Ty::I64)], Some(Ty::I64));
        let c = b.param(0);
        let x = b.declare_var(Ty::I64);
        let t = b.add_block();
        let e = b.add_block();
        let j = b.add_block();
        b.branch(c, t, e);
        b.switch_to(t);
        b.var_store(x, Operand::const_i64(1));
        b.jump(j);
        b.switch_to(e);
        b.var_store(x, Operand::const_i64(2));
        b.jump(j);
        b.switch_to(j);
        let v = b.var_load(x, Ty::I64);
        b.ret(Some(v));
        let mut f = b.finish();
        let phis = mem2reg(&mut f);
        assert_eq!(phis, 1);
        crate::verify::verify_func(&f).expect("verifies");
    }
}

//! Superblock lowering: fused threaded-code compilation of the decoded IR.
//!
//! The dense engines ([`crate::DecodedModule`]) dispatch one [`DKind`] per
//! executed instruction. This module compiles each straight-line block body
//! once per module into an array of *superinstructions* ([`SInst`]) that the
//! engines' superblock tiers execute by threaded-code dispatch:
//!
//! * **constant folding** — pure ops whose operands are all immediates
//!   collapse to a single pre-computed [`SOpc::FoldedDef`];
//! * **immediate specialization** — every opcode comes in slot/slot and
//!   slot/immediate forms (`AddRR`/`AddImm`, `CmpRR`/`CmpImm`, `StoreRR`/
//!   `StoreRI`/…), so the hot dispatch loop never re-discriminates operand
//!   kinds: an [`SInst`] operand (`a`, `b`, `aux`) is always a value-array
//!   slot index, and constants live pre-extracted in `imm`;
//! * **peephole fusion** — the three dominant adjacent pairs (`CmpI64` +
//!   `Branch`, `Load` + `BinI64`, `BinI64` + `Store`) become single ops
//!   ([`SOpc::CmpBr`], [`SOpc::LoadBin`], [`SOpc::BinStore`] and their
//!   immediate forms);
//! * **register windows** — when a fused pair's intermediate value has no
//!   other use in the function (counting every operand, phi-source row and
//!   context copy), its write to the frame's value array is elided
//!   ([`NO_SLOT`]): the value flows through the pair in a register instead
//!   of round-tripping through the slot array. Fused pairs execute
//!   atomically in the interpreter and main-simulator tiers; the validation
//!   replay, which may stop mid-pair, rewrites constituent slots
//!   unconditionally (see `spt-sim`), so an elided slot can never be
//!   observed stale.
//!
//! The hot [`SInst`] is a 40-byte `Copy` record; the cold per-op metadata
//! engines need only for accounting and event replay (constituent
//! [`InstId`]s and static latencies) lives in a parallel [`SMeta`] array.
//!
//! **Fallback contract**: a block is lowered only if it is a straight-line
//! run — no `Call`, no [`DKind::Unsupported`], no stray [`DKind::SkippedPhi`],
//! at most [`MAX_FUSED_PHIS`] leading phis, exactly one terminator in tail
//! position, and every constant operand representable in the compact
//! encoding (a constant store address must fit in `u32`). Irregular blocks
//! keep `range: None` and the engines execute them on the dense tier,
//! instruction by instruction, with identical semantics; lowering commits a
//! block's ops and `op_at` marks only after the whole block lowers, so a
//! late bail-out leaves no stale state. A panic during one function's
//! lowering (exercised via the `superblock::lower` failpoint, injected
//! through [`set_lower_hook`]) degrades that whole function to the dense
//! tier and is reported in [`SuperblockModule::degraded`] instead of
//! propagating.
//!
//! Lowering is purely structural: per-instruction retire order, profiler
//! events and timing semantics are properties of the executing engine, which
//! replays them per constituent instruction ([`SMeta::inst`]/[`SMeta::inst2`])
//! of each fused op. [`SBlock::retires`]/[`SBlock::cycles`] additionally
//! pre-aggregate a fused block's retirement accounting so non-observing runs
//! can batch it per block entry.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::decoded::{DBlock, DInst, DKind, DVal, DecodedFunc, DecodedModule};
use crate::ids::{BlockId, FuncId, InstId};
use crate::ops::{BinOp, CmpOp, UnOp};
use std::sync::Mutex;

/// Slot sentinel: the op defines no slot (or the write is elided because the
/// fused consumer is the value's only use).
pub const NO_SLOT: u32 = u32::MAX;

/// Leading-phi cap for fused blocks; phi-heavier merges fall back to the
/// dense tier.
pub const MAX_FUSED_PHIS: usize = 16;

/// Flag bit on [`SInst::flags`]: the *swapped* operand order.
/// For `LoadBin`/`LoadBinImm` the loaded value is the **right** operand of
/// the binary op; for `BinStoreImm` the immediate is the **left** operand.
pub const F_SWAP: u8 = 1;

/// [`SOpc::Fuse2`] flag: the first op's second operand is the packed
/// immediate `imm1` (low 32 bits of `imm`, sign-extended) instead of slot
/// `b`.
pub const F2_IMM1: u8 = 2;
/// [`SOpc::Fuse2`] flag: the second op's other operand is the packed
/// immediate `imm2` (high 32 bits of `imm`, sign-extended) instead of slot
/// `aux`.
pub const F2_IMM2: u8 = 4;
/// [`SOpc::Fuse2`] flag: the intermediate value is the **right** operand of
/// the second op.
pub const F2_R_RIGHT: u8 = 8;
/// [`SOpc::Fuse2`] flag: the first op's operands are reversed (`bin(y, x)`
/// instead of `bin(x, y)`).
pub const F2_OP1_REV: u8 = 16;

/// Superinstruction opcodes. Field usage per opcode is documented on
/// [`SInst`]. `RR` suffixes read both operands from slots, `Imm` forms carry
/// one constant in [`SInst::imm`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SOpc {
    /// Parameter read: `dst = args[imm]` (missing arg reads 0). No def hook.
    Param,
    /// Constant materialization: `dst = imm`. No def hook.
    ConstV,
    /// Constant-folded pure op: `dst = imm`, def hook fires.
    FoldedDef,
    /// `dst = a + b` (wrapping `i64`).
    AddRR,
    /// `dst = a + imm` (wrapping `i64`).
    AddImm,
    /// `dst = a - b` (wrapping `i64`).
    SubRR,
    /// `dst = a - imm` (wrapping `i64`).
    SubImm,
    /// `dst = imm - a` (wrapping `i64`).
    RsbImm,
    /// `dst = a * b` (wrapping `i64`).
    MulRR,
    /// `dst = a * imm` (wrapping `i64`).
    MulImm,
    /// Generic integer binary op: `dst = bin(a, b)`.
    BinRR,
    /// Generic integer binary op: `dst = bin(a, imm)`.
    BinImm,
    /// Generic integer binary op, immediate on the left: `dst = bin(imm, a)`.
    BinImmL,
    /// Float binary op: `dst = bin(a, b)`.
    BinF64RR,
    /// Float binary op: `dst = bin(a, imm)`.
    BinF64Imm,
    /// Float binary op, immediate on the left: `dst = bin(imm, a)`.
    BinF64ImmL,
    /// Integer unary op `un` on `a`.
    UnI64,
    /// Float unary op `un` on `a`.
    UnF64,
    /// `i64 -> f64` conversion of `a`.
    IntToFloat,
    /// `f64 -> i64` conversion of `a`.
    FloatToInt,
    /// Value copy of slot `a`.
    Copy,
    /// Integer comparison: `dst = cmp(a, b)` as 0/1.
    CmpRR,
    /// Integer comparison: `dst = cmp(a, imm)` as 0/1. A constant left
    /// operand is canonicalized here via [`cmp_swapped`].
    CmpImm,
    /// Float comparison: `dst = cmp(a, b)` as 0/1.
    CmpF64RR,
    /// Float comparison: `dst = cmp(a, imm)` as 0/1 (left constants
    /// canonicalized via [`cmp_swapped`]; exact for NaN, which compares
    /// false under every ordering either way).
    CmpF64Imm,
    /// Memory load from address slot `a`.
    Load,
    /// Memory load from constant address `imm`.
    LoadImm,
    /// Store value slot `b` to address slot `a`.
    StoreRR,
    /// Store constant `imm` to address slot `a`.
    StoreRI,
    /// Store value slot `b` to constant address `imm`.
    StoreIR,
    /// Store constant `imm` to constant address `aux` (blocks whose constant
    /// address does not fit `u32` stay dense).
    StoreII,
    /// Unconditional jump to `t1`.
    Jump,
    /// Conditional branch on slot `a`: `t1` when non-zero, else `t2`.
    Branch,
    /// Branch on the constant condition `imm`.
    BranchImm,
    /// Return with value slot `a`.
    RetVal,
    /// Return with constant value `imm`.
    RetImm,
    /// Return without value.
    RetVoid,
    /// `SPT_FORK` marker: tag `imm`, spawn target `t1`.
    SptFork,
    /// `SPT_KILL` marker: tag `imm`.
    SptKill,
    /// Fused integer compare (`cmp`, `a`, `b`, def `dst`) feeding a branch
    /// (`t1`/`t2`).
    CmpBr,
    /// Fused integer compare against `imm` feeding a branch.
    CmpBrImm,
    /// Fused load from slot `a` (def `dst`) feeding a `BinI64` with slot
    /// operand `b` (def `aux`); [`F_SWAP`] means the loaded value is the
    /// right operand.
    LoadBin,
    /// Fused load from slot `a` (def `dst`) feeding a `BinI64` with constant
    /// operand `imm` (def `aux`); [`F_SWAP`] as for `LoadBin`.
    LoadBinImm,
    /// Fused `BinI64` on slots `a`, `b` (def `dst`) feeding a store to
    /// address slot `aux`.
    BinStore,
    /// Fused `BinI64` on slot `a` and constant `imm` (def `dst`) feeding a
    /// store to address slot `aux`; [`F_SWAP`] means the constant is the
    /// left operand.
    BinStoreImm,
    /// Address-generation fusion: `BinI64` on slots `a`, `b` (def `aux`,
    /// [`NO_SLOT`] when elided) computing the address of a load (def `dst`).
    AgenLoad,
    /// As [`SOpc::AgenLoad`] with constant operand `imm` ([`F_SWAP`] means
    /// the constant is the left operand).
    AgenLoadImm,
    /// Address-generation fusion: `BinI64` on slots `a`, `b` (def `dst`,
    /// [`NO_SLOT`] when elided) computing the address of a store of value
    /// slot `aux`.
    AgenStore,
    /// As [`SOpc::AgenStore`] with constant operand `imm` ([`F_SWAP`] means
    /// the constant is the left operand).
    AgenStoreImm,
    /// Fused loop backedge: `BinI64` on slots `a`, `b` (def `dst`) followed
    /// by an unconditional jump to `t1`. The def is kept (it typically feeds
    /// the header phi).
    BinJump,
    /// As [`SOpc::BinJump`] with constant operand `imm` ([`F_SWAP`] means
    /// the constant is the left operand).
    BinImmJump,
    /// Fused pure integer chain: `r = bin(x, y1)` then `dst = bin2(r, z)`,
    /// with `x` in slot `a`, `y1` in slot `b` or the packed immediate `imm1`
    /// ([`F2_IMM1`]; [`F2_OP1_REV`] reverses the first op's operands), and
    /// `z` in slot `aux` or the packed immediate `imm2` ([`F2_IMM2`];
    /// [`F2_R_RIGHT`] puts `r` on the right of `bin2`). The single-use
    /// intermediate `r` is elided. `imm` packs both sign-extended 32-bit
    /// immediates (`imm1` low, `imm2` high); wider constants decline.
    Fuse2,
    /// [`SOpc::Fuse2`] specialized to flags exactly [`F2_IMM1`]`|`[`F2_IMM2`]:
    /// `dst = bin2(bin(a, imm1), imm2)`, branch-free.
    Fuse2II,
    /// [`SOpc::Fuse2`] specialized to flags exactly [`F2_IMM1`]:
    /// `dst = bin2(bin(a, imm1), aux)`, branch-free.
    Fuse2IR,
    /// [`SOpc::Fuse2`] specialized to flags exactly
    /// [`F2_IMM1`]`|`[`F2_R_RIGHT`]: `dst = bin2(aux, bin(a, imm1))`,
    /// branch-free.
    Fuse2IRr,
}

/// One superinstruction: a compact 40-byte `Copy` record. `a`/`b`/`aux` are
/// always value-array slot indices (constants are pre-extracted into `imm`
/// by lowering), so the hot loops never re-discriminate operand kinds.
/// Unused fields hold inert defaults. The constituent [`DInst`] ids and
/// static latencies live in the parallel cold array
/// [`SuperblockFunc::meta`].
#[derive(Clone, Copy, Debug)]
pub struct SInst {
    /// Opcode.
    pub opc: SOpc,
    /// Per-opcode flag bits ([`F_SWAP`]).
    pub flags: u8,
    /// Binary operator, for the generic/fused binary opcodes.
    pub bin: BinOp,
    /// Second binary operator, for [`SOpc::Fuse2`].
    pub bin2: BinOp,
    /// Comparison operator, for the compare opcodes.
    pub cmp: CmpOp,
    /// Unary operator, for `UnI64`/`UnF64`.
    pub un: UnOp,
    /// Primary destination slot ([`NO_SLOT`] = none/elided).
    pub dst: u32,
    /// First operand slot.
    pub a: u32,
    /// Second operand slot.
    pub b: u32,
    /// Third slot: `LoadBin*`'s binary-op destination, `BinStore*`'s store
    /// address, `StoreII`'s (u32-ranged) constant address.
    pub aux: u32,
    /// Immediate payload (folded bits, specialized-op immediate, parameter
    /// index, or SPT tag).
    pub imm: u64,
    /// Primary control target.
    pub t1: BlockId,
    /// Secondary control target (`Branch`/`CmpBr*` else-target).
    pub t2: BlockId,
}

impl SInst {
    fn new(opc: SOpc) -> SInst {
        SInst {
            opc,
            flags: 0,
            bin: BinOp::Add,
            bin2: BinOp::Add,
            cmp: CmpOp::Eq,
            un: UnOp::Neg,
            dst: NO_SLOT,
            a: 0,
            b: 0,
            aux: 0,
            imm: 0,
            t1: BlockId(0),
            t2: BlockId(0),
        }
    }
}

/// Cold per-op metadata, parallel to [`SuperblockFunc::ops`]: the
/// constituent decoded instructions and their static latencies, read only by
/// the simulator tiers and the observing interpreter for per-instruction
/// event replay and accounting.
#[derive(Clone, Copy, Debug)]
pub struct SMeta {
    /// Primary constituent instruction.
    pub inst: InstId,
    /// Secondary constituent instruction (fused pairs; `inst` otherwise).
    pub inst2: InstId,
    /// Stream position of `inst` ([`DecodedFunc::stream`]). The gap to the
    /// previous op's end is the run of elided zero-latency constant defs
    /// crossed before this op; the simulator retires them here.
    pub pos: u32,
    /// Static latency of `inst`.
    pub lat: u32,
    /// Static latency of `inst2`.
    pub lat2: u32,
}

impl SMeta {
    fn new(inst: InstId, lat: u64) -> SMeta {
        SMeta {
            inst,
            inst2: inst,
            pos: 0,
            lat: u32::try_from(lat).unwrap_or(u32::MAX),
            lat2: 0,
        }
    }
}

/// One block's superblock view.
#[derive(Clone, Debug)]
pub struct SBlock {
    /// `[start, end)` into [`SuperblockFunc::ops`], or `None` when the block
    /// executes on the dense tier (irregular shape; see the module docs).
    pub range: Option<(u32, u32)>,
    /// Instructions retired by one entry to a fused block (leading phis +
    /// body). 0 for dense blocks.
    pub retires: u64,
    /// Summed static latency of one entry to a fused block. 0 for dense
    /// blocks.
    pub cycles: u64,
    /// Pre-resolved phi schedules, one per predecessor: entering from
    /// `preds[k]` performs the moves `(dst_slot, src)` of `phis[k].1`, all
    /// sources read before any destination is written. Empty when the block
    /// has no phis; a block whose phi rows cannot be fully resolved at
    /// build time (entry block, missing source) is left dense so the dense
    /// arm reproduces the exact runtime error.
    #[allow(clippy::type_complexity)]
    pub phis: Vec<(BlockId, Box<[(u32, DVal)]>)>,
    /// `(slot, bits)` of the block's elided region-base constant defs,
    /// written as raw data on fused entry instead of dispatching. Their
    /// reads inside fused ops are folded to immediates at build time; the
    /// slot writes keep every dense-fallback read of the same slots exact.
    pub consts: Box<[(u32, u64)]>,
}

/// One function's superblock code.
#[derive(Clone, Debug)]
pub struct SuperblockFunc {
    /// Per-block ranges, indexed by [`BlockId`].
    pub blocks: Box<[SBlock]>,
    /// All fused ops, grouped per block.
    pub ops: Box<[SInst]>,
    /// Cold constituent metadata, parallel to `ops`.
    pub meta: Box<[SMeta]>,
    /// Per position of [`DecodedFunc::stream`]: index of the fused op
    /// starting at that instruction, or `u32::MAX` when none does (dense
    /// block, or interior of a fused pair). Used by the simulator to
    /// resynchronize fused execution after a dense stretch.
    pub op_at: Box<[u32]>,
    /// Set when lowering this function panicked: every block is dense.
    pub degraded: Option<String>,
}

/// The superblock tier's code for a whole module, built once per
/// [`DecodedModule`].
#[derive(Clone, Debug)]
pub struct SuperblockModule {
    /// Per-function code, indexed by [`FuncId`].
    pub funcs: Vec<SuperblockFunc>,
    /// Functions degraded to the dense tier by a lowering fault, with the
    /// panic text, in function order.
    pub degraded: Vec<(FuncId, String)>,
}

/// Fault-injection hook type: called with each function's name before it is
/// lowered.
pub type LowerHook = fn(&str);

static LOWER_HOOK: Mutex<Option<LowerHook>> = Mutex::new(None);

/// Installs (or with `None` removes) a process-wide hook called at the start
/// of every function's lowering, *inside* the per-function fault domain. The
/// fault-isolation harness routes the `superblock::lower` failpoint through
/// this: a panicking hook degrades exactly the function it fires for.
pub fn set_lower_hook(hook: Option<LowerHook>) {
    *LOWER_HOOK.lock().unwrap_or_else(|e| e.into_inner()) = hook;
}

fn lower_hook() -> Option<LowerHook> {
    *LOWER_HOOK.lock().unwrap_or_else(|e| e.into_inner())
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl SuperblockModule {
    /// Lowers every function of `decoded`. Never panics: a fault while
    /// lowering one function degrades that function to the dense tier and
    /// records it in [`SuperblockModule::degraded`].
    pub fn build(decoded: &DecodedModule) -> SuperblockModule {
        let hook = lower_hook();
        let mut funcs = Vec::with_capacity(decoded.funcs.len());
        let mut degraded = Vec::new();
        for (fi, df) in decoded.funcs.iter().enumerate() {
            let lowered = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if let Some(h) = hook {
                    h(&df.name);
                }
                lower_func(df)
            }));
            match lowered {
                Ok(sf) => funcs.push(sf),
                Err(payload) => {
                    let why = panic_text(payload);
                    degraded.push((FuncId::new(fi), why.clone()));
                    funcs.push(degraded_func(df, why));
                }
            }
        }
        SuperblockModule { funcs, degraded }
    }

    /// The superblock code for `func`.
    #[inline]
    pub fn func(&self, func: FuncId) -> &SuperblockFunc {
        &self.funcs[func.index()]
    }
}

fn degraded_func(df: &DecodedFunc, why: String) -> SuperblockFunc {
    SuperblockFunc {
        blocks: df
            .blocks
            .iter()
            .map(|_| SBlock {
                range: None,
                retires: 0,
                cycles: 0,
                phis: Vec::new(),
                consts: Box::new([]),
            })
            .collect(),
        ops: Box::new([]),
        meta: Box::new([]),
        op_at: vec![u32::MAX; df.stream.len()].into_boxed_slice(),
        degraded: Some(why),
    }
}

/// Counts every read of each value slot in the function: instruction
/// operands (including call arguments, branch conditions, store
/// addresses/values and return operands) and phi-source rows. A slot with
/// exactly one counted use that is the consumer half of a fused pair never
/// needs its value-array write.
fn count_uses(df: &DecodedFunc) -> Vec<u32> {
    let mut uses = vec![0u32; df.num_values()];
    let mut touch = |dv: DVal| {
        if let DVal::Slot(s) = dv {
            uses[s as usize] = uses[s as usize].saturating_add(1);
        }
    };
    for di in df.insts.iter() {
        match &di.kind {
            DKind::Param { .. }
            | DKind::Const { .. }
            | DKind::Jump { .. }
            | DKind::SptFork { .. }
            | DKind::SptKill { .. }
            | DKind::SkippedPhi
            | DKind::Unsupported => {}
            DKind::BinI64 { lhs, rhs, .. }
            | DKind::BinF64 { lhs, rhs, .. }
            | DKind::CmpI64 { lhs, rhs, .. }
            | DKind::CmpF64 { lhs, rhs, .. } => {
                touch(*lhs);
                touch(*rhs);
            }
            DKind::UnI64 { val, .. }
            | DKind::UnF64 { val, .. }
            | DKind::IntToFloat { val }
            | DKind::FloatToInt { val }
            | DKind::Copy { val } => touch(*val),
            DKind::Load { addr } => touch(*addr),
            DKind::Store { addr, val } => {
                touch(*addr);
                touch(*val);
            }
            DKind::Call { args, .. } => {
                for a in args.iter() {
                    touch(*a);
                }
            }
            DKind::Branch { cond, .. } => touch(*cond),
            DKind::Ret { val } => {
                if let Some(v) = val {
                    touch(*v);
                }
            }
        }
    }
    for b in df.blocks.iter() {
        for row in b.phi_srcs.iter() {
            for src in row.iter().flatten() {
                touch(*src);
            }
        }
    }
    uses
}

fn is_terminator(kind: &DKind) -> bool {
    matches!(
        kind,
        DKind::Jump { .. } | DKind::Branch { .. } | DKind::Ret { .. }
    )
}

/// The comparison that computes `cmp(a, b)` as `swapped(b, a)`. Exact for
/// integers and floats alike: `Eq`/`Ne` are symmetric and the orderings
/// mirror (`<` ↔ `>`), including NaN operands, for which every ordered
/// comparison is false in both orders.
pub fn cmp_swapped(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// `slot -> bits` for every zero-latency constant def in the function
/// (region bases), used to fold their reads into immediates at build time.
fn const_map(df: &DecodedFunc) -> Vec<Option<u64>> {
    let mut cmap = vec![None; df.insts.len()];
    for (idx, di) in df.insts.iter().enumerate() {
        if let DKind::Const { bits } = di.kind {
            if di.latency == 0 {
                cmap[idx] = Some(bits);
            }
        }
    }
    cmap
}

fn resolve_dval(v: DVal, cmap: &[Option<u64>]) -> DVal {
    match v {
        DVal::Slot(s) => cmap
            .get(s as usize)
            .copied()
            .flatten()
            .map_or(v, DVal::Bits),
        b => b,
    }
}

/// Clones `di` with every slot operand that names a constant def rewritten
/// to its bits, so lowering encodes immediates and the const def's dispatch
/// can be elided from the fused stream.
fn resolve_inst(di: &DInst, cmap: &[Option<u64>]) -> DInst {
    let r = |v: DVal| resolve_dval(v, cmap);
    let kind = match &di.kind {
        DKind::BinI64 { op, lhs, rhs } => DKind::BinI64 {
            op: *op,
            lhs: r(*lhs),
            rhs: r(*rhs),
        },
        DKind::BinF64 { op, lhs, rhs } => DKind::BinF64 {
            op: *op,
            lhs: r(*lhs),
            rhs: r(*rhs),
        },
        DKind::UnI64 { op, val } => DKind::UnI64 {
            op: *op,
            val: r(*val),
        },
        DKind::UnF64 { op, val } => DKind::UnF64 {
            op: *op,
            val: r(*val),
        },
        DKind::IntToFloat { val } => DKind::IntToFloat { val: r(*val) },
        DKind::FloatToInt { val } => DKind::FloatToInt { val: r(*val) },
        DKind::CmpI64 { op, lhs, rhs } => DKind::CmpI64 {
            op: *op,
            lhs: r(*lhs),
            rhs: r(*rhs),
        },
        DKind::CmpF64 { op, lhs, rhs } => DKind::CmpF64 {
            op: *op,
            lhs: r(*lhs),
            rhs: r(*rhs),
        },
        DKind::Copy { val } => DKind::Copy { val: r(*val) },
        DKind::Load { addr } => DKind::Load { addr: r(*addr) },
        DKind::Store { addr, val } => DKind::Store {
            addr: r(*addr),
            val: r(*val),
        },
        DKind::Branch {
            cond,
            then_bb,
            else_bb,
        } => DKind::Branch {
            cond: r(*cond),
            then_bb: *then_bb,
            else_bb: *else_bb,
        },
        DKind::Ret { val } => DKind::Ret { val: val.map(r) },
        other => other.clone(),
    };
    DInst {
        kind,
        latency: di.latency,
    }
}

fn lower_func(df: &DecodedFunc) -> SuperblockFunc {
    let uses = count_uses(df);
    let cmap = const_map(df);
    let mut ops: Vec<SInst> = Vec::new();
    let mut meta: Vec<SMeta> = Vec::new();
    let mut op_at = vec![u32::MAX; df.stream.len()];
    let blocks: Box<[SBlock]> = df
        .blocks
        .iter()
        .enumerate()
        .map(|(bi, b)| {
            let is_entry = BlockId(bi as u32) == df.entry;
            lower_block(
                df, b, is_entry, &uses, &cmap, &mut ops, &mut meta, &mut op_at,
            )
        })
        .collect();
    SuperblockFunc {
        blocks,
        ops: ops.into_boxed_slice(),
        meta: meta.into_boxed_slice(),
        op_at: op_at.into_boxed_slice(),
        degraded: None,
    }
}

#[allow(clippy::too_many_arguments)]
fn lower_block(
    df: &DecodedFunc,
    b: &DBlock,
    is_entry: bool,
    uses: &[u32],
    cmap: &[Option<u64>],
    ops: &mut Vec<SInst>,
    meta: &mut Vec<SMeta>,
    op_at: &mut [u32],
) -> SBlock {
    let dense = SBlock {
        range: None,
        retires: 0,
        cycles: 0,
        phis: Vec::new(),
        consts: Box::new([]),
    };
    let body = &b.body;
    if b.phis.len() > MAX_FUSED_PHIS || body.is_empty() {
        return dense;
    }
    // Pre-resolve the phi rows into per-predecessor move schedules. A row
    // that cannot be resolved statically (phis in the entry block, or a
    // missing source) stays dense: the dense arm raises the exact
    // `Malformed` error the reference engine would.
    if !b.phis.is_empty() && is_entry {
        return dense;
    }
    let mut phi_scheds = Vec::with_capacity(if b.phis.is_empty() { 0 } else { b.preds.len() });
    if !b.phis.is_empty() {
        for (pi, &pred) in b.preds.iter().enumerate() {
            let mut moves = Vec::with_capacity(b.phis.len());
            for (k, &i) in b.phis.iter().enumerate() {
                match b.phi_srcs[pi][k] {
                    Some(src) => moves.push((i.index() as u32, resolve_dval(src, cmap))),
                    None => return dense,
                }
            }
            phi_scheds.push((pred, moves.into_boxed_slice()));
        }
    }
    let last = body.len() - 1;
    for (k, &i) in body.iter().enumerate() {
        let kind = &df.insts[i.index()].kind;
        let irregular = matches!(
            kind,
            DKind::Call { .. } | DKind::Unsupported | DKind::SkippedPhi
        ) || (is_terminator(kind) != (k == last));
        if irregular {
            return dense;
        }
    }

    // Lower into a scratch list first and commit `ops`/`op_at` only when the
    // whole block lowers: a late bail-out (e.g. an unencodable constant)
    // must not leave stale op-start marks behind. Zero-latency constant defs
    // are elided from the dispatch stream: their bits land in `consts`
    // (written as raw data on fused entry) and their reads were folded to
    // immediates by `resolve_inst`.
    let mut tmp: Vec<(usize, SInst, SMeta)> = Vec::with_capacity(body.len());
    let mut consts: Vec<(u32, u64)> = Vec::new();
    let mut elided: Vec<usize> = Vec::new();
    let mut k = 0usize;
    while k < body.len() {
        let i = body[k];
        let pos = b.body_start as usize + k;
        let raw = &df.insts[i.index()];
        if let DKind::Const { bits } = raw.kind {
            if raw.latency == 0 {
                consts.push((i.0, bits));
                elided.push(pos);
                k += 1;
                continue;
            }
        }
        let di = resolve_inst(raw, cmap);
        let nx = body
            .get(k + 1)
            .map(|&j| (j, resolve_inst(&df.insts[j.index()], cmap)));
        let lowered = match fuse_pair(i, &di, nx.as_ref().map(|(j, d)| (*j, d)), uses) {
            Some(pair) => Some((pair, 2usize)),
            None => lower_single(i, &di).map(|s| (s, 1usize)),
        };
        let Some(((op, mut m), consumed)) = lowered else {
            return dense;
        };
        m.pos = pos as u32;
        tmp.push((pos, op, m));
        k += consumed;
    }
    let start = ops.len() as u32;
    // Elided positions forward-map to the next emitted op, so block entries
    // and mid-block resumes that land on a skipped constant still find the
    // fused stream; the simulator retires the crossed constants from the
    // `SMeta::pos` gap.
    let mut e = 0usize;
    for (pos, op, m) in tmp {
        while e < elided.len() && elided[e] < pos {
            op_at[elided[e]] = ops.len() as u32;
            e += 1;
        }
        op_at[pos] = ops.len() as u32;
        ops.push(op);
        meta.push(m);
    }
    let end = ops.len() as u32;
    SBlock {
        range: Some((start, end)),
        retires: (b.phis.len() + body.len()) as u64,
        cycles: body.iter().map(|&i| df.insts[i.index()].latency).sum(),
        phis: phi_scheds,
        consts: consts.into_boxed_slice(),
    }
}

/// Encodes the binary-op operand shape shared by the address-generation
/// fusions: slots in `a`/`b`, or one constant in `imm` with [`F_SWAP`]
/// marking a constant left operand. Const/const declines so constant
/// folding applies instead.
fn agen(rr: SOpc, ri: SOpc, lhs: &DVal, rhs: &DVal) -> Option<SInst> {
    Some(match (lhs, rhs) {
        (DVal::Slot(x), DVal::Slot(y)) => {
            let mut s = SInst::new(rr);
            s.a = *x;
            s.b = *y;
            s
        }
        (DVal::Slot(x), DVal::Bits(c)) => {
            let mut s = SInst::new(ri);
            s.a = *x;
            s.imm = *c;
            s
        }
        (DVal::Bits(c), DVal::Slot(y)) => {
            let mut s = SInst::new(ri);
            s.a = *y;
            s.imm = *c;
            s.flags |= F_SWAP;
            s
        }
        (DVal::Bits(_), DVal::Bits(_)) => return None,
    })
}

/// Attempts to fuse `i` with the following instruction. Both constituents
/// must be adjacent, the intermediate must feed the consumer directly, and
/// (for the slot-write elision) `uses[..] == 1` proves the elided write
/// unobservable (see the module docs for the mid-pair-stop contract).
/// Const/const shapes are declined so constant folding applies instead.
fn fuse_pair(
    i: InstId,
    di: &DInst,
    next: Option<(InstId, &DInst)>,
    uses: &[u32],
) -> Option<(SInst, SMeta)> {
    let (j, dj) = next?;
    let elide = |slot: InstId| {
        if uses[slot.index()] == 1 {
            NO_SLOT
        } else {
            slot.0
        }
    };
    let mut m = SMeta::new(i, di.latency);
    m.inst2 = j;
    m.lat2 = u32::try_from(dj.latency).unwrap_or(u32::MAX);
    match (&di.kind, &dj.kind) {
        (
            DKind::CmpI64 { op, lhs, rhs },
            DKind::Branch {
                cond,
                then_bb,
                else_bb,
            },
        ) if *cond == DVal::Slot(i.0) => {
            let mut s = match (lhs, rhs) {
                (DVal::Slot(x), DVal::Slot(y)) => {
                    let mut s = SInst::new(SOpc::CmpBr);
                    s.cmp = *op;
                    s.a = *x;
                    s.b = *y;
                    s
                }
                (DVal::Slot(x), DVal::Bits(c)) => {
                    let mut s = SInst::new(SOpc::CmpBrImm);
                    s.cmp = *op;
                    s.a = *x;
                    s.imm = *c;
                    s
                }
                (DVal::Bits(c), DVal::Slot(y)) => {
                    let mut s = SInst::new(SOpc::CmpBrImm);
                    s.cmp = cmp_swapped(*op);
                    s.a = *y;
                    s.imm = *c;
                    s
                }
                // Both constant: let folding produce the def instead.
                (DVal::Bits(_), DVal::Bits(_)) => return None,
            };
            s.dst = elide(i);
            s.t1 = *then_bb;
            s.t2 = *else_bb;
            Some((s, m))
        }
        (DKind::Load { addr }, DKind::BinI64 { op, lhs, rhs }) => {
            let DVal::Slot(addr_slot) = addr else {
                return None;
            };
            let loaded = DVal::Slot(i.0);
            let (other, swap) = if *lhs == loaded && *rhs != loaded {
                (*rhs, false)
            } else if *rhs == loaded && *lhs != loaded {
                (*lhs, true)
            } else {
                return None;
            };
            let mut s = match other {
                DVal::Slot(o) => {
                    let mut s = SInst::new(SOpc::LoadBin);
                    s.b = o;
                    s
                }
                DVal::Bits(c) => {
                    let mut s = SInst::new(SOpc::LoadBinImm);
                    s.imm = c;
                    s
                }
            };
            s.bin = *op;
            s.a = *addr_slot;
            s.dst = elide(i);
            s.aux = j.0;
            if swap {
                s.flags |= F_SWAP;
            }
            Some((s, m))
        }
        (DKind::BinI64 { op, lhs, rhs }, DKind::Store { addr, val }) if *val == DVal::Slot(i.0) => {
            let DVal::Slot(addr_slot) = addr else {
                return None;
            };
            let mut s = match (lhs, rhs) {
                (DVal::Slot(x), DVal::Slot(y)) => {
                    let mut s = SInst::new(SOpc::BinStore);
                    s.a = *x;
                    s.b = *y;
                    s
                }
                (DVal::Slot(x), DVal::Bits(c)) => {
                    let mut s = SInst::new(SOpc::BinStoreImm);
                    s.a = *x;
                    s.imm = *c;
                    s
                }
                (DVal::Bits(c), DVal::Slot(y)) => {
                    let mut s = SInst::new(SOpc::BinStoreImm);
                    s.a = *y;
                    s.imm = *c;
                    s.flags |= F_SWAP;
                    s
                }
                // Both constant: let folding produce the def instead.
                (DVal::Bits(_), DVal::Bits(_)) => return None,
            };
            s.bin = *op;
            s.dst = elide(i);
            s.aux = *addr_slot;
            Some((s, m))
        }
        // Address-generation fusion: the binary op computes the address of
        // the following load/store.
        (DKind::BinI64 { op, lhs, rhs }, DKind::Jump { target }) => {
            // Loop backedge: the counter increment feeding the header phi
            // plus the unconditional jump. The def is always kept.
            let mut s = agen(SOpc::BinJump, SOpc::BinImmJump, lhs, rhs)?;
            s.bin = *op;
            s.dst = i.0;
            s.t1 = *target;
            Some((s, m))
        }
        (DKind::BinI64 { op, lhs, rhs }, DKind::Load { addr }) if *addr == DVal::Slot(i.0) => {
            let mut s = agen(SOpc::AgenLoad, SOpc::AgenLoadImm, lhs, rhs)?;
            s.bin = *op;
            s.dst = j.0;
            s.aux = elide(i);
            Some((s, m))
        }
        (DKind::BinI64 { op, lhs, rhs }, DKind::Store { addr, val })
            if *addr == DVal::Slot(i.0) && *val != DVal::Slot(i.0) =>
        {
            // The store value must be a slot: the immediate field may
            // already carry the address computation's constant.
            let DVal::Slot(v) = val else {
                return None;
            };
            let mut s = agen(SOpc::AgenStore, SOpc::AgenStoreImm, lhs, rhs)?;
            s.bin = *op;
            s.dst = elide(i);
            s.aux = *v;
            Some((s, m))
        }
        (
            DKind::BinI64 { op: op1, lhs, rhs },
            DKind::BinI64 {
                op: op2,
                lhs: l2,
                rhs: r2,
            },
        ) => {
            // Pure arithmetic chain. The intermediate must be single-use so
            // its slot write can be elided outright (no second dst field),
            // and both constants must fit a sign-extended i32 since they
            // share the packed immediate.
            if uses[i.index()] != 1 {
                return None;
            }
            let r = DVal::Slot(i.0);
            let (z, r_right) = if *l2 == r && *r2 != r {
                (*r2, false)
            } else if *r2 == r && *l2 != r {
                (*l2, true)
            } else {
                return None;
            };
            let imm32 = |c: u64| i32::try_from(c as i64).ok().map(|w| w as u32);
            let mut s = SInst::new(SOpc::Fuse2);
            match (lhs, rhs) {
                (DVal::Slot(x), DVal::Slot(y)) => {
                    s.a = *x;
                    s.b = *y;
                }
                (DVal::Slot(x), DVal::Bits(c)) => {
                    s.a = *x;
                    s.imm |= u64::from(imm32(*c)?);
                    s.flags |= F2_IMM1;
                }
                (DVal::Bits(c), DVal::Slot(y)) => {
                    s.a = *y;
                    s.imm |= u64::from(imm32(*c)?);
                    s.flags |= F2_IMM1 | F2_OP1_REV;
                }
                // Both constant: let folding produce the def instead.
                (DVal::Bits(_), DVal::Bits(_)) => return None,
            }
            match z {
                DVal::Slot(o) => s.aux = o,
                DVal::Bits(c) => {
                    s.imm |= u64::from(imm32(c)?) << 32;
                    s.flags |= F2_IMM2;
                }
            }
            if r_right {
                s.flags |= F2_R_RIGHT;
            }
            s.bin = *op1;
            s.bin2 = *op2;
            s.dst = j.0;
            // The dominant flag shapes get dedicated branch-free opcodes;
            // the generic decoder stays for the long tail.
            s.opc = match s.flags {
                f if f == F2_IMM1 | F2_IMM2 => SOpc::Fuse2II,
                f if f == F2_IMM1 => SOpc::Fuse2IR,
                f if f == F2_IMM1 | F2_R_RIGHT => SOpc::Fuse2IRr,
                _ => SOpc::Fuse2,
            };
            Some((s, m))
        }
        _ => None,
    }
}

/// Folds a pure op with all-immediate operands to its result bits, using the
/// exact evaluation rules of both engines.
fn fold_const(kind: &DKind) -> Option<u64> {
    let bits = |dv: DVal| match dv {
        DVal::Bits(b) => Some(b),
        DVal::Slot(_) => None,
    };
    Some(match kind {
        DKind::BinI64 { op, lhs, rhs } => {
            op.eval_i64(bits(*lhs)? as i64, bits(*rhs)? as i64) as u64
        }
        DKind::BinF64 { op, lhs, rhs } => op
            .eval_f64(f64::from_bits(bits(*lhs)?), f64::from_bits(bits(*rhs)?))
            .to_bits(),
        DKind::UnI64 { op, val } => op.eval_i64(bits(*val)? as i64) as u64,
        DKind::UnF64 { op, val } => op.eval_f64(f64::from_bits(bits(*val)?)).to_bits(),
        DKind::IntToFloat { val } => ((bits(*val)? as i64) as f64).to_bits(),
        DKind::FloatToInt { val } => (f64::from_bits(bits(*val)?) as i64) as u64,
        DKind::CmpI64 { op, lhs, rhs } => {
            (op.eval_i64(bits(*lhs)? as i64, bits(*rhs)? as i64) as i64) as u64
        }
        DKind::CmpF64 { op, lhs, rhs } => {
            (op.eval_f64(f64::from_bits(bits(*lhs)?), f64::from_bits(bits(*rhs)?)) as i64) as u64
        }
        DKind::Copy { val } => bits(*val)?,
        _ => return None,
    })
}

/// Lowers one instruction, or `None` when it has no compact encoding (the
/// whole block then stays dense).
fn lower_single(i: InstId, di: &DInst) -> Option<(SInst, SMeta)> {
    let m = SMeta::new(i, di.latency);
    if let Some(folded) = fold_const(&di.kind) {
        let mut s = SInst::new(SOpc::FoldedDef);
        s.dst = i.0;
        s.imm = folded;
        return Some((s, m));
    }
    let def = |mut s: SInst| {
        s.dst = i.0;
        Some((s, m))
    };
    match &di.kind {
        DKind::Param { index } => {
            let mut s = SInst::new(SOpc::Param);
            s.imm = *index as u64;
            def(s)
        }
        DKind::Const { bits } => {
            let mut s = SInst::new(SOpc::ConstV);
            s.imm = *bits;
            def(s)
        }
        DKind::BinI64 { op, lhs, rhs } => {
            // Specialized shapes for the dominant operators; a constant on
            // either side becomes an immediate form (reverse-subtract and
            // generic left-immediate opcodes keep non-commutative operators
            // exact).
            let mut s = SInst::new(SOpc::BinRR);
            s.bin = *op;
            match (lhs, rhs) {
                (DVal::Slot(x), DVal::Slot(y)) => {
                    s.opc = match op {
                        BinOp::Add => SOpc::AddRR,
                        BinOp::Sub => SOpc::SubRR,
                        BinOp::Mul => SOpc::MulRR,
                        _ => SOpc::BinRR,
                    };
                    s.a = *x;
                    s.b = *y;
                }
                (DVal::Slot(x), DVal::Bits(c)) => {
                    s.opc = match op {
                        BinOp::Add => SOpc::AddImm,
                        BinOp::Sub => SOpc::SubImm,
                        BinOp::Mul => SOpc::MulImm,
                        _ => SOpc::BinImm,
                    };
                    s.a = *x;
                    s.imm = *c;
                }
                (DVal::Bits(c), DVal::Slot(y)) => {
                    s.opc = match op {
                        BinOp::Add => SOpc::AddImm,
                        BinOp::Sub => SOpc::RsbImm,
                        BinOp::Mul => SOpc::MulImm,
                        _ => SOpc::BinImmL,
                    };
                    s.a = *y;
                    s.imm = *c;
                }
                // All-constant operands fold above.
                (DVal::Bits(_), DVal::Bits(_)) => return None,
            }
            def(s)
        }
        DKind::BinF64 { op, lhs, rhs } => {
            let mut s = SInst::new(SOpc::BinF64RR);
            s.bin = *op;
            match (lhs, rhs) {
                (DVal::Slot(x), DVal::Slot(y)) => {
                    s.a = *x;
                    s.b = *y;
                }
                (DVal::Slot(x), DVal::Bits(c)) => {
                    s.opc = SOpc::BinF64Imm;
                    s.a = *x;
                    s.imm = *c;
                }
                (DVal::Bits(c), DVal::Slot(y)) => {
                    s.opc = SOpc::BinF64ImmL;
                    s.a = *y;
                    s.imm = *c;
                }
                (DVal::Bits(_), DVal::Bits(_)) => return None,
            }
            def(s)
        }
        DKind::CmpI64 { op, lhs, rhs } => {
            let mut s = SInst::new(SOpc::CmpRR);
            match (lhs, rhs) {
                (DVal::Slot(x), DVal::Slot(y)) => {
                    s.cmp = *op;
                    s.a = *x;
                    s.b = *y;
                }
                (DVal::Slot(x), DVal::Bits(c)) => {
                    s.opc = SOpc::CmpImm;
                    s.cmp = *op;
                    s.a = *x;
                    s.imm = *c;
                }
                (DVal::Bits(c), DVal::Slot(y)) => {
                    s.opc = SOpc::CmpImm;
                    s.cmp = cmp_swapped(*op);
                    s.a = *y;
                    s.imm = *c;
                }
                (DVal::Bits(_), DVal::Bits(_)) => return None,
            }
            def(s)
        }
        DKind::CmpF64 { op, lhs, rhs } => {
            let mut s = SInst::new(SOpc::CmpF64RR);
            match (lhs, rhs) {
                (DVal::Slot(x), DVal::Slot(y)) => {
                    s.cmp = *op;
                    s.a = *x;
                    s.b = *y;
                }
                (DVal::Slot(x), DVal::Bits(c)) => {
                    s.opc = SOpc::CmpF64Imm;
                    s.cmp = *op;
                    s.a = *x;
                    s.imm = *c;
                }
                (DVal::Bits(c), DVal::Slot(y)) => {
                    s.opc = SOpc::CmpF64Imm;
                    s.cmp = cmp_swapped(*op);
                    s.a = *y;
                    s.imm = *c;
                }
                (DVal::Bits(_), DVal::Bits(_)) => return None,
            }
            def(s)
        }
        DKind::UnI64 { op, val } => {
            let DVal::Slot(x) = val else { return None };
            let mut s = SInst::new(SOpc::UnI64);
            s.un = *op;
            s.a = *x;
            def(s)
        }
        DKind::UnF64 { op, val } => {
            let DVal::Slot(x) = val else { return None };
            let mut s = SInst::new(SOpc::UnF64);
            s.un = *op;
            s.a = *x;
            def(s)
        }
        DKind::IntToFloat { val } => {
            let DVal::Slot(x) = val else { return None };
            let mut s = SInst::new(SOpc::IntToFloat);
            s.a = *x;
            def(s)
        }
        DKind::FloatToInt { val } => {
            let DVal::Slot(x) = val else { return None };
            let mut s = SInst::new(SOpc::FloatToInt);
            s.a = *x;
            def(s)
        }
        DKind::Copy { val } => {
            let DVal::Slot(x) = val else { return None };
            let mut s = SInst::new(SOpc::Copy);
            s.a = *x;
            def(s)
        }
        DKind::Load { addr } => {
            let mut s = SInst::new(SOpc::Load);
            match addr {
                DVal::Slot(x) => s.a = *x,
                DVal::Bits(c) => {
                    s.opc = SOpc::LoadImm;
                    s.imm = *c;
                }
            }
            def(s)
        }
        DKind::Store { addr, val } => {
            let mut s = SInst::new(SOpc::StoreRR);
            match (addr, val) {
                (DVal::Slot(x), DVal::Slot(y)) => {
                    s.a = *x;
                    s.b = *y;
                }
                (DVal::Slot(x), DVal::Bits(c)) => {
                    s.opc = SOpc::StoreRI;
                    s.a = *x;
                    s.imm = *c;
                }
                (DVal::Bits(c), DVal::Slot(y)) => {
                    s.opc = SOpc::StoreIR;
                    s.imm = *c;
                    s.b = *y;
                }
                (DVal::Bits(c), DVal::Bits(v)) => {
                    // The compact form keeps the constant address in `aux`;
                    // an address outside u32 range stays dense so the dense
                    // arm raises the exact out-of-bounds fault.
                    let addr_i = *c as i64;
                    if !(0..=u32::MAX as i64).contains(&addr_i) {
                        return None;
                    }
                    s.opc = SOpc::StoreII;
                    s.aux = addr_i as u32;
                    s.imm = *v;
                }
            }
            Some((s, m))
        }
        DKind::Jump { target } => {
            let mut s = SInst::new(SOpc::Jump);
            s.t1 = *target;
            Some((s, m))
        }
        DKind::Branch {
            cond,
            then_bb,
            else_bb,
        } => {
            let mut s = SInst::new(SOpc::Branch);
            match cond {
                DVal::Slot(x) => s.a = *x,
                DVal::Bits(c) => {
                    s.opc = SOpc::BranchImm;
                    s.imm = *c;
                }
            }
            s.t1 = *then_bb;
            s.t2 = *else_bb;
            Some((s, m))
        }
        DKind::Ret { val } => match val {
            Some(DVal::Slot(x)) => {
                let mut s = SInst::new(SOpc::RetVal);
                s.a = *x;
                Some((s, m))
            }
            Some(DVal::Bits(c)) => {
                let mut s = SInst::new(SOpc::RetImm);
                s.imm = *c;
                Some((s, m))
            }
            None => Some((SInst::new(SOpc::RetVoid), m)),
        },
        DKind::SptFork { tag, target } => {
            let mut s = SInst::new(SOpc::SptFork);
            s.imm = *tag as u64;
            s.t1 = *target;
            Some((s, m))
        }
        DKind::SptKill { tag } => {
            let mut s = SInst::new(SOpc::SptKill);
            s.imm = *tag as u64;
            Some((s, m))
        }
        DKind::Call { .. } | DKind::Unsupported | DKind::SkippedPhi => {
            // Unreachable by the block classification; lowering them is a
            // structural bug, and the per-function fault domain turns the
            // panic into a dense-tier degradation.
            panic!("irregular instruction {i} reached superblock lowering")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::inst::Operand;
    use crate::module::Module;
    use crate::types::Ty;

    /// `fn f(n) { s = 0; for (i = 0; i < n; i++) { s = s + i } return s }`
    /// built by hand: a header with phis + CmpBr shape and a straight-line
    /// latch.
    fn loop_module() -> Module {
        let mut b = FuncBuilder::new("f", vec![("n".into(), Ty::I64)], Some(Ty::I64));
        let n = b.param(0);
        let entry = b.entry();
        let header = b.add_block();
        let body = b.add_block();
        let exit = b.add_block();
        b.switch_to(entry);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi(Ty::I64, vec![(entry, Operand::const_i64(0))]);
        let s = b.phi(Ty::I64, vec![(entry, Operand::const_i64(0))]);
        let c = b.cmp(crate::ops::CmpOp::Lt, Ty::I64, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let s2 = b.binary(BinOp::Add, s, i);
        let i2 = b.binary(BinOp::Add, i, Operand::const_i64(1));
        b.jump(header);
        b.switch_to(exit);
        b.ret(Some(s));
        let func = b.finish();
        // Complete the phis' latch arguments.
        let mut func = func;
        let (iid, sid) = match (i, s) {
            (Operand::Inst(a), Operand::Inst(bb)) => (a, bb),
            _ => unreachable!(),
        };
        let (i2id, s2id) = match (i2, s2) {
            (Operand::Inst(a), Operand::Inst(bb)) => (a, bb),
            _ => unreachable!(),
        };
        for (phi, val) in [(iid, i2id), (sid, s2id)] {
            if let crate::inst::InstKind::Phi { args } = &mut func.insts[phi.index()].kind {
                args.push((body, Operand::Inst(val)));
            }
        }
        let mut m = Module::new();
        m.add_func(func);
        m
    }

    #[test]
    fn sinst_stays_compact() {
        // The hot dispatch loop's working set: one 40-byte record per op.
        assert!(std::mem::size_of::<SInst>() <= 40, "SInst grew");
        assert!(std::mem::size_of::<SMeta>() <= 24, "SMeta grew");
    }

    #[test]
    fn loop_blocks_fuse_and_account() {
        let m = loop_module();
        let decoded = DecodedModule::new(&m);
        let sup = SuperblockModule::build(&decoded);
        assert!(sup.degraded.is_empty());
        let sf = sup.func(FuncId::new(0));
        assert!(sf.degraded.is_none());
        // The header ends in cmp+branch: fused.
        let has_cmpbr = sf
            .ops
            .iter()
            .any(|o| matches!(o.opc, SOpc::CmpBr | SOpc::CmpBrImm));
        assert!(has_cmpbr, "cmp+branch must fuse: {:?}", sf.ops);
        // `i + 1` feeding the backedge fuses into the jump.
        assert!(sf
            .ops
            .iter()
            .any(|o| o.opc == SOpc::BinImmJump && o.bin == crate::BinOp::Add));
        // The cold metadata stays parallel to the hot array.
        assert_eq!(sf.meta.len(), sf.ops.len());
        // Per-block totals match the decoded bodies.
        let df = decoded.func(FuncId::new(0));
        for (bi, sb) in sf.blocks.iter().enumerate() {
            let db = &df.blocks[bi];
            if sb.range.is_some() {
                assert_eq!(sb.retires, (db.phis.len() + db.body.len()) as u64);
                let lat: u64 = db.body.iter().map(|&i| df.insts[i.index()].latency).sum();
                assert_eq!(sb.cycles, lat);
            }
        }
        // op_at marks every op start plus a forward-mapped mark per elided
        // constant; pair interiors stay MAX.
        let n_elided: usize = sf.blocks.iter().map(|sb| sb.consts.len()).sum();
        let n_starts = sf.op_at.iter().filter(|&&x| x != u32::MAX).count();
        assert_eq!(n_starts, sf.ops.len() + n_elided);
        let distinct: std::collections::BTreeSet<u32> = sf
            .op_at
            .iter()
            .copied()
            .filter(|&x| x != u32::MAX)
            .collect();
        assert_eq!(distinct.len(), sf.ops.len());
    }

    #[test]
    fn cmp_feeding_fused_branch_elides_its_slot_when_single_use() {
        let m = loop_module();
        let decoded = DecodedModule::new(&m);
        let sup = SuperblockModule::build(&decoded);
        let sf = sup.func(FuncId::new(0));
        let cmpbr = sf
            .ops
            .iter()
            .find(|o| matches!(o.opc, SOpc::CmpBr | SOpc::CmpBrImm))
            .expect("fused cmp+branch");
        // The comparison feeds only the branch, so its slot write is elided.
        assert_eq!(cmpbr.dst, NO_SLOT);
    }

    #[test]
    fn blocks_with_calls_stay_dense() {
        let mut m = Module::new();
        let mut cal = FuncBuilder::new("leaf", vec![("x".into(), Ty::I64)], Some(Ty::I64));
        let x = cal.param(0);
        let r = cal.binary(BinOp::Mul, x, Operand::const_i64(3));
        cal.ret(Some(r));
        let leaf = m.add_func(cal.finish());
        let mut b = FuncBuilder::new("main", vec![("n".into(), Ty::I64)], Some(Ty::I64));
        let n = b.param(0);
        let r = b.call(leaf, vec![n], Some(Ty::I64)).expect("call");
        b.ret(Some(r));
        m.add_func(b.finish());
        let decoded = DecodedModule::new(&m);
        let sup = SuperblockModule::build(&decoded);
        let caller = sup.func(FuncId::new(1));
        assert!(caller.blocks.iter().all(|sb| sb.range.is_none()));
        // The leaf itself is straight-line and fuses.
        let leaf_sf = sup.func(FuncId::new(0));
        assert!(leaf_sf.blocks.iter().any(|sb| sb.range.is_some()));
    }

    #[test]
    fn constant_operands_fold_to_a_single_def() {
        let mut b = FuncBuilder::new("k", vec![], Some(Ty::I64));
        let v = b.binary(BinOp::Mul, Operand::const_i64(6), Operand::const_i64(7));
        b.ret(Some(v));
        let mut m = Module::new();
        m.add_func(b.finish());
        let decoded = DecodedModule::new(&m);
        let sup = SuperblockModule::build(&decoded);
        let folded = sup.funcs[0]
            .ops
            .iter()
            .find(|o| o.opc == SOpc::FoldedDef)
            .expect("folded def");
        assert_eq!(folded.imm, 42);
    }

    #[test]
    fn swapped_comparisons_stay_exact() {
        let vals: [i64; 4] = [-3, 0, 7, i64::MIN];
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for &a in &vals {
                for &b in &vals {
                    assert_eq!(op.eval_i64(a, b), cmp_swapped(op).eval_i64(b, a));
                }
            }
            let fvals = [-1.5, 0.0, 2.25, f64::NAN, f64::INFINITY];
            for &a in &fvals {
                for &b in &fvals {
                    assert_eq!(op.eval_f64(a, b), cmp_swapped(op).eval_f64(b, a));
                }
            }
        }
    }

    #[test]
    fn lowering_panic_degrades_only_that_function() {
        let m = loop_module();
        let decoded = DecodedModule::new(&m);
        set_lower_hook(Some(|name| {
            if name == "f" {
                panic!("injected lowering fault");
            }
        }));
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let sup = SuperblockModule::build(&decoded);
        std::panic::set_hook(prev);
        set_lower_hook(None);
        assert_eq!(sup.degraded.len(), 1);
        assert_eq!(sup.degraded[0].0, FuncId::new(0));
        assert!(sup.degraded[0].1.contains("injected"));
        let sf = sup.func(FuncId::new(0));
        assert!(sf.degraded.is_some());
        assert!(sf.blocks.iter().all(|sb| sb.range.is_none()));
    }
}

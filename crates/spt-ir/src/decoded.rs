//! Pre-decoded execution form shared by the profiling interpreter and the
//! SPT simulator.
//!
//! Both engines used to re-inspect [`InstKind`]/[`Ty`]/[`Operand`] on every
//! executed instruction: a nested `match` over the instruction kind, a second
//! over the result type, and an `Operand` match per operand read — plus
//! per-transfer scans for leading phis and per-block loop-forest probes.
//! [`DecodedModule`] does all of that resolution once per module:
//!
//! * every instruction becomes a [`DInst`] — one flat opcode ([`DKind`]) with
//!   the type already folded in (`BinI64` vs `BinF64`), operands pre-resolved
//!   to value slots or constant bits ([`DVal`]), `RegionBase` folded to its
//!   concrete base address, and the static latency precomputed;
//! * every block becomes a [`DBlock`] with its leading phis split off, its
//!   predecessor list materialized, and one pre-decoded phi-source row per
//!   incoming edge, so a control transfer is an indexed copy instead of a
//!   per-phi argument search;
//! * per-function loop facts ([`DLoopFacts`]) — a flat loop×block membership
//!   table, the header→loop map, and the dominance-derived back-edge
//!   predecessor of every block — replace repeated `LoopForest` scans and the
//!   simulator's lazily cached dominator queries.
//!
//! Decoding is semantics-preserving by construction: each `DKind` variant is
//! in one-to-one correspondence with an `(InstKind, Ty)` case of the original
//! interpreters, including the degenerate ones (non-leading phis are kept as
//! [`DKind::SkippedPhi`], pre-SSA variable accesses as [`DKind::Unsupported`])
//! so the engines can reproduce the exact legacy behavior for them.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::ids::{BlockId, FuncId, InstId};
use crate::inst::{Inst, InstKind, Operand};
use crate::loops::{LoopForest, LoopId};
use crate::module::{Function, Module};
use crate::ops::{BinOp, CmpOp, UnOp};
use crate::types::Ty;

/// A pre-resolved operand: a value slot of a defining instruction, or
/// constant bits (`i64` reinterpreted, or raw IEEE-754 `f64` bits — exactly
/// the representation both engines use for register values).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DVal {
    /// Value slot of the defining instruction (its `InstId` index).
    Slot(u32),
    /// Immediate constant bits.
    Bits(u64),
}

impl DVal {
    fn decode(op: Operand) -> DVal {
        match op {
            Operand::Inst(id) => DVal::Slot(id.0),
            Operand::ConstI64(v) => DVal::Bits(v as u64),
            Operand::ConstF64Bits(bits) => DVal::Bits(bits),
        }
    }

    /// Reads the operand against a frame's value array.
    #[inline(always)]
    pub fn read(self, values: &[u64]) -> u64 {
        match self {
            DVal::Slot(i) => values[i as usize],
            DVal::Bits(b) => b,
        }
    }
}

/// A fully decoded opcode: instruction kind and result type merged, operands
/// pre-resolved. One variant per `(InstKind, Ty)` case the engines execute.
#[derive(Clone, Debug)]
pub enum DKind {
    /// Function parameter read.
    Param {
        /// Zero-based parameter index.
        index: u32,
    },
    /// Integer binary op.
    BinI64 {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: DVal,
        /// Right operand.
        rhs: DVal,
    },
    /// Float binary op (operands and result are `f64` bits).
    BinF64 {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: DVal,
        /// Right operand.
        rhs: DVal,
    },
    /// Integer unary op.
    UnI64 {
        /// Operator.
        op: UnOp,
        /// Operand.
        val: DVal,
    },
    /// Float unary op.
    UnF64 {
        /// Operator.
        op: UnOp,
        /// Operand.
        val: DVal,
    },
    /// `i64 -> f64` conversion (`Unary(IntToFloat)` with `F64` result).
    IntToFloat {
        /// Operand (integer bits).
        val: DVal,
    },
    /// `f64 -> i64` conversion (`Unary(FloatToInt)` with `I64` result).
    FloatToInt {
        /// Operand (float bits).
        val: DVal,
    },
    /// Integer comparison; result is 0/1 as `i64`.
    CmpI64 {
        /// Comparison.
        op: CmpOp,
        /// Left operand.
        lhs: DVal,
        /// Right operand.
        rhs: DVal,
    },
    /// Float comparison; result is 0/1 as `i64`.
    CmpF64 {
        /// Comparison.
        op: CmpOp,
        /// Left operand.
        lhs: DVal,
        /// Right operand.
        rhs: DVal,
    },
    /// Value copy.
    Copy {
        /// Copied operand.
        val: DVal,
    },
    /// Pre-resolved constant: `RegionBase` folded to its base cell address
    /// (0 for [`crate::ids::RegionId::UNKNOWN`], matching both engines).
    Const {
        /// Constant bits.
        bits: u64,
    },
    /// Memory load.
    Load {
        /// Cell address operand (an `i64`).
        addr: DVal,
    },
    /// Memory store.
    Store {
        /// Cell address operand (an `i64`).
        addr: DVal,
        /// Stored bits.
        val: DVal,
    },
    /// Direct call.
    Call {
        /// Callee.
        callee: FuncId,
        /// Pre-resolved argument operands.
        args: Box<[DVal]>,
    },
    /// Unconditional jump.
    Jump {
        /// Target block.
        target: BlockId,
    },
    /// Conditional branch (non-zero condition = taken).
    Branch {
        /// Condition operand.
        cond: DVal,
        /// Taken target.
        then_bb: BlockId,
        /// Fall-through target.
        else_bb: BlockId,
    },
    /// Function return.
    Ret {
        /// Returned operand, if any.
        val: Option<DVal>,
    },
    /// Speculative-thread spawn marker.
    SptFork {
        /// SPT loop tag.
        tag: u32,
        /// Spawn target (the loop header).
        target: BlockId,
    },
    /// Speculative-thread kill marker.
    SptKill {
        /// SPT loop tag.
        tag: u32,
    },
    /// A phi that is *not* in its block's leading phi group. The reference
    /// interpreter silently skips these (no retire, no events); the reference
    /// simulator reports them as malformed when fetched. Both behaviors are
    /// reproduced by the dense engines.
    SkippedPhi,
    /// Pre-SSA `VarLoad`/`VarStore`: rejected with the legacy "requires SSA
    /// form" error when executed.
    Unsupported,
}

/// A decoded instruction: opcode plus precomputed static latency.
#[derive(Clone, Debug)]
pub struct DInst {
    /// The decoded opcode.
    pub kind: DKind,
    /// Static latency in cycles ([`Inst::latency`]).
    pub latency: u64,
}

/// A decoded basic block.
#[derive(Clone, Debug)]
pub struct DBlock {
    /// The block's leading phis, in block order.
    pub phis: Box<[InstId]>,
    /// Everything after the leading phis, in block order (stray non-leading
    /// phis stay in place as [`DKind::SkippedPhi`]).
    pub body: Box<[InstId]>,
    /// Start of this block's body in [`DecodedFunc::stream`].
    pub body_start: u32,
    /// End (exclusive) of this block's body in [`DecodedFunc::stream`].
    pub body_end: u32,
    /// Predecessor blocks, in CFG order.
    pub preds: Box<[BlockId]>,
    /// Per predecessor (parallel to `preds`), per leading phi (parallel to
    /// `phis`): the phi's incoming operand along that edge, or `None` when
    /// the phi has no argument for it (the interpreter faults on this; the
    /// simulator reads 0 — both behaviors are preserved by the engines).
    pub phi_srcs: Box<[Box<[Option<DVal>]>]>,
}

/// Precomputed loop/dominator facts for one function.
#[derive(Clone, Debug)]
pub struct DLoopFacts {
    num_loops: usize,
    num_blocks: usize,
    /// Flat loop×block membership: `contains[l * num_blocks + b]`.
    contains: Box<[bool]>,
    /// For each block: the first loop (in id order) headed by it, matching
    /// `forest.ids().find(|l| get(l).header == b)`.
    pub header_loop: Box<[Option<LoopId>]>,
    /// For each block: its first CFG predecessor that it dominates — the
    /// latch of a natural-loop header, `None` for ordinary blocks. Replaces
    /// the simulator's per-query dominator walks.
    pub back_pred: Box<[Option<BlockId>]>,
}

impl DLoopFacts {
    /// Whether loop `l` contains block `b`.
    #[inline(always)]
    pub fn loop_contains(&self, l: LoopId, b: BlockId) -> bool {
        self.contains[l.index() * self.num_blocks + b.index()]
    }

    /// Number of loops in the function's forest.
    #[inline]
    pub fn num_loops(&self) -> usize {
        self.num_loops
    }
}

/// One decoded function.
#[derive(Clone, Debug)]
pub struct DecodedFunc {
    /// Function name (diagnostics only).
    pub name: Box<str>,
    /// Entry block.
    pub entry: BlockId,
    /// Decoded instructions, indexed by [`InstId`].
    pub insts: Box<[DInst]>,
    /// Decoded blocks, indexed by [`BlockId`].
    pub blocks: Box<[DBlock]>,
    /// All block bodies concatenated in block order; each block occupies
    /// `[DBlock::body_start, DBlock::body_end)`. Per-step fetch reads this
    /// flat array directly (one bounds compare + one load) instead of
    /// chasing `blocks[b].body`.
    pub stream: Box<[InstId]>,
    /// Loop and dominator facts.
    pub facts: DLoopFacts,
}

impl DecodedFunc {
    /// Number of value slots a frame for this function needs.
    #[inline]
    pub fn num_values(&self) -> usize {
        self.insts.len()
    }

    /// Decodes one function against already-computed analyses.
    pub fn decode(
        func: &Function,
        cfg: &Cfg,
        dom: &DomTree,
        forest: &LoopForest,
        region_bases: &[usize],
    ) -> DecodedFunc {
        let insts: Box<[DInst]> = func
            .insts
            .iter()
            .map(|inst| decode_inst(inst, region_bases))
            .collect();

        let nblocks = func.blocks.len();
        let mut stream: Vec<InstId> = Vec::new();
        let blocks: Box<[DBlock]> = (0..nblocks)
            .map(|bi| {
                let block = &func.blocks[bi];
                let nphis = block
                    .insts
                    .iter()
                    .take_while(|&&i| matches!(func.inst(i).kind, InstKind::Phi { .. }))
                    .count();
                let phis: Box<[InstId]> = block.insts[..nphis].into();
                let body: Box<[InstId]> = block.insts[nphis..].into();
                let body_start = stream.len() as u32;
                stream.extend_from_slice(&body);
                let body_end = stream.len() as u32;
                let preds: Box<[BlockId]> = cfg.preds(BlockId::new(bi)).into();
                let phi_srcs: Box<[Box<[Option<DVal>]>]> = preds
                    .iter()
                    .map(|&pred| {
                        phis.iter()
                            .map(|&p| match &func.inst(p).kind {
                                InstKind::Phi { args } => args
                                    .iter()
                                    .find(|(b, _)| *b == pred)
                                    .map(|(_, v)| DVal::decode(*v)),
                                _ => unreachable!("leading phi is a phi"),
                            })
                            .collect()
                    })
                    .collect();
                DBlock {
                    phis,
                    body,
                    body_start,
                    body_end,
                    preds,
                    phi_srcs,
                }
            })
            .collect();

        let nloops = forest.len();
        let mut contains = vec![false; nloops * nblocks].into_boxed_slice();
        let mut header_loop = vec![None; nblocks].into_boxed_slice();
        for lid in forest.ids() {
            let l = forest.get(lid);
            for &b in &l.blocks {
                contains[lid.index() * nblocks + b.index()] = true;
            }
            let slot = &mut header_loop[l.header.index()];
            if slot.is_none() {
                *slot = Some(lid);
            }
        }
        let back_pred: Box<[Option<BlockId>]> = (0..nblocks)
            .map(|bi| {
                let b = BlockId::new(bi);
                cfg.preds(b).iter().copied().find(|&p| dom.dominates(b, p))
            })
            .collect();

        DecodedFunc {
            name: func.name.as_str().into(),
            entry: func.entry,
            insts,
            blocks,
            stream: stream.into_boxed_slice(),
            facts: DLoopFacts {
                num_loops: nloops,
                num_blocks: nblocks,
                contains,
                header_loop,
                back_pred,
            },
        }
    }
}

fn decode_inst(inst: &Inst, region_bases: &[usize]) -> DInst {
    let latency = inst.latency();
    let d = DVal::decode;
    let kind = match &inst.kind {
        InstKind::Param { index } => DKind::Param {
            index: *index as u32,
        },
        InstKind::Binary { op, lhs, rhs } => match inst.ty.unwrap_or(Ty::I64) {
            Ty::I64 => DKind::BinI64 {
                op: *op,
                lhs: d(*lhs),
                rhs: d(*rhs),
            },
            Ty::F64 => DKind::BinF64 {
                op: *op,
                lhs: d(*lhs),
                rhs: d(*rhs),
            },
        },
        InstKind::Unary { op, val } => {
            // Mirrors the interpreters' `(ty, op)` match order: the two
            // conversions first, then dispatch on the result type.
            match (inst.ty.unwrap_or(Ty::I64), op) {
                (Ty::F64, UnOp::IntToFloat) => DKind::IntToFloat { val: d(*val) },
                (Ty::I64, UnOp::FloatToInt) => DKind::FloatToInt { val: d(*val) },
                (Ty::I64, _) => DKind::UnI64 {
                    op: *op,
                    val: d(*val),
                },
                (Ty::F64, _) => DKind::UnF64 {
                    op: *op,
                    val: d(*val),
                },
            }
        }
        InstKind::Cmp {
            op,
            operand_ty,
            lhs,
            rhs,
        } => match operand_ty {
            Ty::I64 => DKind::CmpI64 {
                op: *op,
                lhs: d(*lhs),
                rhs: d(*rhs),
            },
            Ty::F64 => DKind::CmpF64 {
                op: *op,
                lhs: d(*lhs),
                rhs: d(*rhs),
            },
        },
        // Leading phis execute through `DBlock::phi_srcs`; a phi fetched from
        // a block body is by construction non-leading.
        InstKind::Phi { .. } => DKind::SkippedPhi,
        InstKind::Copy { val } => DKind::Copy { val: d(*val) },
        InstKind::RegionBase { region } => {
            let base = if region.is_unknown() {
                0i64
            } else {
                region_bases.get(region.index()).copied().unwrap_or(0) as i64
            };
            DKind::Const { bits: base as u64 }
        }
        InstKind::Load { addr, .. } => DKind::Load { addr: d(*addr) },
        InstKind::Store { addr, val, .. } => DKind::Store {
            addr: d(*addr),
            val: d(*val),
        },
        InstKind::Call { callee, args } => DKind::Call {
            callee: *callee,
            args: args.iter().map(|a| d(*a)).collect(),
        },
        InstKind::VarLoad { .. } | InstKind::VarStore { .. } => DKind::Unsupported,
        InstKind::Jump { target } => DKind::Jump { target: *target },
        InstKind::Branch {
            cond,
            then_bb,
            else_bb,
        } => DKind::Branch {
            cond: d(*cond),
            then_bb: *then_bb,
            else_bb: *else_bb,
        },
        InstKind::Ret { val } => DKind::Ret { val: val.map(d) },
        InstKind::SptFork {
            loop_tag,
            spawn_target,
        } => DKind::SptFork {
            tag: *loop_tag,
            target: *spawn_target,
        },
        InstKind::SptKill { loop_tag } => DKind::SptKill { tag: *loop_tag },
    };
    DInst { kind, latency }
}

/// A whole module in decoded form, plus the resolved memory layout.
#[derive(Clone, Debug)]
pub struct DecodedModule {
    /// Decoded functions, indexed by [`FuncId`].
    pub funcs: Vec<DecodedFunc>,
    /// Base cell address per region ([`Module::memory_layout`]).
    pub region_bases: Vec<usize>,
    /// Total memory size in cells.
    pub memory_size: usize,
}

impl DecodedModule {
    /// Decodes a module, computing CFG/dominator/loop analyses per function.
    pub fn new(module: &Module) -> DecodedModule {
        let (region_bases, memory_size) = module.memory_layout();
        let funcs = module
            .funcs
            .iter()
            .map(|func| {
                let cfg = Cfg::compute(func);
                let dom = DomTree::compute(&cfg);
                let forest = LoopForest::compute(func, &cfg, &dom);
                DecodedFunc::decode(func, &cfg, &dom, &forest, &region_bases)
            })
            .collect();
        DecodedModule {
            funcs,
            region_bases,
            memory_size,
        }
    }

    /// Borrow a decoded function.
    #[inline(always)]
    pub fn func(&self, id: FuncId) -> &DecodedFunc {
        &self.funcs[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;

    fn loop_func() -> Module {
        // fn count(n): s = 0; for i in 0..n { s += i }; return s
        let mut module = Module::new();
        let mut b = FuncBuilder::new("count", vec![("n".into(), Ty::I64)], Some(Ty::I64));
        let n = b.param(0);
        let header = b.add_block();
        let body = b.add_block();
        let exit = b.add_block();
        b.jump(header);
        b.switch_to(header);
        let i_op = b.phi(Ty::I64, vec![(BlockId::new(0), Operand::const_i64(0))]);
        let s_op = b.phi(Ty::I64, vec![(BlockId::new(0), Operand::const_i64(0))]);
        let cond = b.cmp(CmpOp::Lt, Ty::I64, i_op, n);
        b.branch(cond, body, exit);
        b.switch_to(body);
        let s2 = b.binary(BinOp::Add, s_op, i_op);
        let i2 = b.binary(BinOp::Add, i_op, Operand::const_i64(1));
        b.jump(header);
        b.switch_to(exit);
        b.ret(Some(s_op));
        let mut func = b.finish();
        // Patch in the back-edge phi arguments (forward references).
        for (phi, v) in [(i_op, i2), (s_op, s2)] {
            let id = phi.as_inst().unwrap();
            if let InstKind::Phi { args } = &mut func.inst_mut(id).kind {
                args.push((body, v));
            }
        }
        module.add_func(func);
        module
    }

    #[test]
    fn decodes_loop_function() {
        let module = loop_func();
        let dm = DecodedModule::new(&module);
        let df = dm.func(FuncId::new(0));
        assert_eq!(df.blocks.len(), 4);

        // Header has two leading phis with one pre-decoded source row per
        // predecessor.
        let header = &df.blocks[1];
        assert_eq!(header.phis.len(), 2);
        assert_eq!(header.preds.len(), 2);
        for row in header.phi_srcs.iter() {
            assert_eq!(row.len(), 2);
            assert!(row.iter().all(Option::is_some));
        }

        // Loop facts: one loop over {header, body}; header maps to it; the
        // body block is the header's dominated (back-edge) predecessor.
        let facts = &df.facts;
        assert_eq!(facts.num_loops(), 1);
        let lid = facts.header_loop[1].expect("header heads a loop");
        assert!(facts.loop_contains(lid, BlockId::new(1)));
        assert!(facts.loop_contains(lid, BlockId::new(2)));
        assert!(!facts.loop_contains(lid, BlockId::new(3)));
        assert_eq!(facts.back_pred[1], Some(BlockId::new(2)));
        assert_eq!(facts.back_pred[0], None);
    }

    #[test]
    fn decodes_opcodes_and_latencies() {
        let module = loop_func();
        let dm = DecodedModule::new(&module);
        let df = dm.func(FuncId::new(0));
        let mut saw_cmp = false;
        let mut saw_bin = false;
        for di in df.insts.iter() {
            match &di.kind {
                DKind::CmpI64 { .. } => {
                    saw_cmp = true;
                    assert_eq!(di.latency, 1);
                }
                DKind::BinI64 { op: BinOp::Add, .. } => {
                    saw_bin = true;
                    assert_eq!(di.latency, 1);
                }
                DKind::SkippedPhi => assert_eq!(di.latency, 0),
                _ => {}
            }
        }
        assert!(saw_cmp && saw_bin);
    }
}

//! A convenience builder for constructing IR functions.
//!
//! The builder keeps a *current block* cursor and provides one method per
//! instruction kind. The frontend and the transformation passes both use it;
//! tests use it to write IR fixtures compactly.

use crate::ids::{BlockId, FuncId, InstId, RegionId, VarId};
use crate::inst::{Inst, InstKind, Operand};
use crate::module::Function;
use crate::ops::{BinOp, CmpOp, UnOp};
use crate::types::Ty;

/// Incrementally builds a [`Function`].
///
/// # Example
///
/// ```
/// use spt_ir::{FuncBuilder, Ty, BinOp, CmpOp, Operand};
///
/// // fn sum(n) { s = 0; i = 0; while (i < n) { s = s + i; i = i + 1 } return s }
/// let mut b = FuncBuilder::new("sum", vec![("n".into(), Ty::I64)], Some(Ty::I64));
/// let n = b.param(0);
/// let s = b.declare_var(Ty::I64);
/// let i = b.declare_var(Ty::I64);
/// b.var_store(s, Operand::const_i64(0));
/// b.var_store(i, Operand::const_i64(0));
/// let header = b.add_block();
/// let body = b.add_block();
/// let exit = b.add_block();
/// b.jump(header);
/// b.switch_to(header);
/// let iv = b.var_load(i, Ty::I64);
/// let c = b.cmp(CmpOp::Lt, Ty::I64, iv, n);
/// b.branch(c, body, exit);
/// b.switch_to(body);
/// let sv = b.var_load(s, Ty::I64);
/// let iv2 = b.var_load(i, Ty::I64);
/// let s2 = b.binary(BinOp::Add, sv, iv2);
/// b.var_store(s, s2);
/// let i2 = b.binary(BinOp::Add, iv2, Operand::const_i64(1));
/// b.var_store(i, i2);
/// b.jump(header);
/// b.switch_to(exit);
/// let out = b.var_load(s, Ty::I64);
/// b.ret(Some(out));
/// let func = b.finish();
/// assert_eq!(func.blocks.len(), 4);
/// ```
#[derive(Debug)]
pub struct FuncBuilder {
    func: Function,
    current: BlockId,
    param_insts: Vec<InstId>,
}

impl FuncBuilder {
    /// Starts building a function. Parameter instructions are pre-inserted in
    /// the entry block.
    pub fn new(name: impl Into<String>, params: Vec<(String, Ty)>, ret_ty: Option<Ty>) -> Self {
        let mut func = Function::new(name, params, ret_ty);
        let entry = func.entry;
        let mut param_insts = Vec::new();
        for (index, (_, ty)) in func.params.clone().iter().enumerate() {
            let id = func.append_inst(entry, Inst::new(InstKind::Param { index }, Some(*ty)));
            param_insts.push(id);
        }
        FuncBuilder {
            func,
            current: entry,
            param_insts,
        }
    }

    /// The value of the `index`-th parameter.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn param(&self, index: usize) -> Operand {
        Operand::Inst(self.param_insts[index])
    }

    /// Declares a frontend variable slot (pre-SSA mutable local).
    pub fn declare_var(&mut self, _ty: Ty) -> VarId {
        let id = VarId::new(self.func.num_vars);
        self.func.num_vars += 1;
        id
    }

    /// Adds a new empty block.
    pub fn add_block(&mut self) -> BlockId {
        self.func.add_block()
    }

    /// Moves the insertion cursor to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = block;
    }

    /// The block currently being appended to.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.func.entry
    }

    fn emit(&mut self, kind: InstKind, ty: Option<Ty>) -> InstId {
        self.func.append_inst(self.current, Inst::new(kind, ty))
    }

    /// Emits a binary operation; the result type is inferred from `lhs` (or
    /// `rhs` when `lhs` is an integer immediate and `rhs` is a float).
    pub fn binary(&mut self, op: BinOp, lhs: Operand, rhs: Operand) -> Operand {
        let ty = self
            .operand_ty(lhs)
            .or_else(|| self.operand_ty(rhs))
            .unwrap_or(Ty::I64);
        Operand::Inst(self.emit(InstKind::Binary { op, lhs, rhs }, Some(ty)))
    }

    /// Emits a typed binary operation.
    pub fn binary_ty(&mut self, op: BinOp, ty: Ty, lhs: Operand, rhs: Operand) -> Operand {
        Operand::Inst(self.emit(InstKind::Binary { op, lhs, rhs }, Some(ty)))
    }

    /// Emits a unary operation.
    pub fn unary(&mut self, op: UnOp, val: Operand) -> Operand {
        let in_ty = self.operand_ty(val).unwrap_or(Ty::I64);
        let ty = op.result_ty(in_ty);
        Operand::Inst(self.emit(InstKind::Unary { op, val }, Some(ty)))
    }

    /// Emits a comparison over operands of type `operand_ty`.
    pub fn cmp(&mut self, op: CmpOp, operand_ty: Ty, lhs: Operand, rhs: Operand) -> Operand {
        Operand::Inst(self.emit(
            InstKind::Cmp {
                op,
                operand_ty,
                lhs,
                rhs,
            },
            Some(Ty::I64),
        ))
    }

    /// Emits a copy.
    pub fn copy(&mut self, val: Operand, ty: Ty) -> Operand {
        Operand::Inst(self.emit(InstKind::Copy { val }, Some(ty)))
    }

    /// Emits a phi with the given incoming `(block, value)` pairs.
    pub fn phi(&mut self, ty: Ty, args: Vec<(BlockId, Operand)>) -> Operand {
        Operand::Inst(self.emit(InstKind::Phi { args }, Some(ty)))
    }

    /// Emits the base address of a region.
    pub fn region_base(&mut self, region: RegionId) -> Operand {
        Operand::Inst(self.emit(InstKind::RegionBase { region }, Some(Ty::I64)))
    }

    /// Emits a load of `elem_ty` from `addr`, attributed to `region`.
    pub fn load_ty(&mut self, addr: Operand, region: RegionId, elem_ty: Ty) -> Operand {
        Operand::Inst(self.emit(InstKind::Load { addr, region }, Some(elem_ty)))
    }

    /// Emits an `i64` load from `addr`, attributed to `region`.
    pub fn load(&mut self, addr: Operand, region: RegionId) -> Operand {
        self.load_ty(addr, region, Ty::I64)
    }

    /// Emits a store of `val` to `addr`, attributed to `region`.
    pub fn store(&mut self, addr: Operand, val: Operand, region: RegionId) -> InstId {
        self.emit(InstKind::Store { addr, val, region }, None)
    }

    /// Emits a call; `ret_ty` is the callee's return type.
    pub fn call(
        &mut self,
        callee: FuncId,
        args: Vec<Operand>,
        ret_ty: Option<Ty>,
    ) -> Option<Operand> {
        let id = self.emit(InstKind::Call { callee, args }, ret_ty);
        ret_ty.map(|_| Operand::Inst(id))
    }

    /// Emits a read of a frontend variable slot.
    pub fn var_load(&mut self, var: VarId, ty: Ty) -> Operand {
        Operand::Inst(self.emit(InstKind::VarLoad { var }, Some(ty)))
    }

    /// Emits a write of a frontend variable slot.
    pub fn var_store(&mut self, var: VarId, val: Operand) -> InstId {
        self.emit(InstKind::VarStore { var, val }, None)
    }

    /// Emits an unconditional jump terminator.
    pub fn jump(&mut self, target: BlockId) -> InstId {
        self.emit(InstKind::Jump { target }, None)
    }

    /// Emits a conditional branch terminator.
    pub fn branch(&mut self, cond: Operand, then_bb: BlockId, else_bb: BlockId) -> InstId {
        self.emit(
            InstKind::Branch {
                cond,
                then_bb,
                else_bb,
            },
            None,
        )
    }

    /// Emits a return terminator.
    pub fn ret(&mut self, val: Option<Operand>) -> InstId {
        self.emit(InstKind::Ret { val }, None)
    }

    /// Emits an `SPT_FORK` marker.
    pub fn spt_fork(&mut self, loop_tag: u32, spawn_target: BlockId) -> InstId {
        self.emit(
            InstKind::SptFork {
                loop_tag,
                spawn_target,
            },
            None,
        )
    }

    /// Emits an `SPT_KILL` marker.
    pub fn spt_kill(&mut self, loop_tag: u32) -> InstId {
        self.emit(InstKind::SptKill { loop_tag }, None)
    }

    /// The result type of an operand, when determinable.
    pub fn operand_ty(&self, op: Operand) -> Option<Ty> {
        match op {
            Operand::Inst(id) => self.func.inst(id).ty,
            Operand::ConstI64(_) => Some(Ty::I64),
            Operand::ConstF64Bits(_) => Some(Ty::F64),
        }
    }

    /// Finishes construction, returning the function.
    pub fn finish(self) -> Function {
        self.func
    }

    /// Read-only access to the function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_straightline_function() {
        let mut b = FuncBuilder::new(
            "f",
            vec![("a".into(), Ty::I64), ("b".into(), Ty::F64)],
            Some(Ty::F64),
        );
        let a = b.param(0);
        let bf = b.param(1);
        let af = b.unary(UnOp::IntToFloat, a);
        let sum = b.binary(BinOp::Add, af, bf);
        b.ret(Some(sum));
        let f = b.finish();
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.block(f.entry).insts.len(), 5);
        assert_eq!(f.param_insts().len(), 2);
    }

    #[test]
    fn type_inference_in_builder() {
        let mut b = FuncBuilder::new("g", vec![], Some(Ty::F64));
        // int imm + float imm => float (inferred from rhs)
        let v = b.binary(BinOp::Add, Operand::const_f64(1.0), Operand::const_f64(2.0));
        assert_eq!(b.operand_ty(v), Some(Ty::F64));
        let w = b.binary(BinOp::Add, Operand::const_i64(1), Operand::const_i64(2));
        assert_eq!(b.operand_ty(w), Some(Ty::I64));
        let c = b.unary(UnOp::IntToFloat, w);
        assert_eq!(b.operand_ty(c), Some(Ty::F64));
        b.ret(Some(c));
    }

    #[test]
    fn memory_ops() {
        let mut b = FuncBuilder::new("h", vec![], None);
        let r = RegionId::new(0);
        let base = b.region_base(r);
        let addr = b.binary(BinOp::Add, base, Operand::const_i64(3));
        let v = b.load(addr, r);
        b.store(addr, v, r);
        b.ret(None);
        let f = b.finish();
        assert_eq!(f.block(f.entry).insts.len(), 5);
    }

    #[test]
    fn var_slots() {
        let mut b = FuncBuilder::new("v", vec![], None);
        let x = b.declare_var(Ty::I64);
        let y = b.declare_var(Ty::F64);
        assert_ne!(x, y);
        b.var_store(x, Operand::const_i64(1));
        let got = b.var_load(x, Ty::I64);
        b.var_store(y, Operand::const_f64(0.5));
        b.ret(None);
        assert!(got.as_inst().is_some());
        assert_eq!(b.func().num_vars, 2);
    }
}

//! IR verifier: structural and SSA well-formedness checks.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::ids::{BlockId, InstId};
use crate::inst::{InstKind, Operand};
use crate::module::{Function, Module};
use crate::types::Ty;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A verifier diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// The function in which the problem was found.
    pub func: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verify error in `{}`: {}", self.func, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies every function of a module.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered.
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    for func in &module.funcs {
        verify_func_in(func, Some(module))?;
    }
    Ok(())
}

/// Verifies a single function (without cross-function checks).
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered.
pub fn verify_func(func: &Function) -> Result<(), VerifyError> {
    verify_func_in(func, None)
}

fn err(func: &Function, message: impl Into<String>) -> VerifyError {
    VerifyError {
        func: func.name.clone(),
        message: message.into(),
    }
}

fn verify_func_in(func: &Function, module: Option<&Module>) -> Result<(), VerifyError> {
    let cfg = Cfg::compute(func);

    // Each placed instruction appears exactly once; ids are in range.
    let mut placed: HashMap<InstId, BlockId> = HashMap::new();
    for bb in func.block_ids() {
        for &i in &func.block(bb).insts {
            if i.index() >= func.insts.len() {
                return Err(err(func, format!("{i} out of range in {bb}")));
            }
            if let Some(prev) = placed.insert(i, bb) {
                return Err(err(func, format!("{i} placed in both {prev} and {bb}")));
            }
        }
    }

    // Blocks: reachable blocks end in exactly one terminator, terminators
    // only at the end; phis only at block start.
    for bb in func.block_ids() {
        let insts = &func.block(bb).insts;
        if insts.is_empty() {
            if cfg.is_reachable(bb) {
                return Err(err(func, format!("reachable {bb} is empty")));
            }
            continue;
        }
        let last = *insts.last().expect("nonempty");
        if !func.inst(last).kind.is_terminator() {
            return Err(err(func, format!("{bb} does not end in a terminator")));
        }
        let mut seen_nonphi = false;
        for (pos, &i) in insts.iter().enumerate() {
            let kind = &func.inst(i).kind;
            if kind.is_terminator() && pos + 1 != insts.len() {
                return Err(err(func, format!("terminator {i} not at end of {bb}")));
            }
            match kind {
                InstKind::Phi { .. } => {
                    if seen_nonphi {
                        return Err(err(func, format!("phi {i} not at start of {bb}")));
                    }
                }
                InstKind::Param { .. } => {
                    if bb != func.entry {
                        return Err(err(func, format!("param {i} outside entry block")));
                    }
                }
                _ => seen_nonphi = true,
            }
        }
    }

    // Branch/jump targets in range.
    for bb in func.block_ids() {
        if let Some(term) = func.terminator(bb) {
            let mut bad = None;
            func.inst(term).kind.for_each_target(|t| {
                if t.index() >= func.blocks.len() {
                    bad = Some(t);
                }
            });
            if let Some(t) = bad {
                return Err(err(func, format!("{bb} targets out-of-range block {t}")));
            }
        }
    }

    // Phi args match predecessors.
    for bb in func.block_ids() {
        if !cfg.is_reachable(bb) {
            continue;
        }
        let preds: HashSet<BlockId> = cfg.preds(bb).iter().copied().collect();
        for &i in &func.block(bb).insts {
            if let InstKind::Phi { args } = &func.inst(i).kind {
                let mut seen: HashSet<BlockId> = HashSet::new();
                for (p, _) in args {
                    if !preds.contains(p) {
                        return Err(err(
                            func,
                            format!("phi {i} in {bb} has arg from non-pred {p}"),
                        ));
                    }
                    if !seen.insert(*p) {
                        return Err(err(
                            func,
                            format!("phi {i} in {bb} has duplicate arg for {p}"),
                        ));
                    }
                }
                for p in &preds {
                    if !seen.contains(p) {
                        return Err(err(
                            func,
                            format!("phi {i} in {bb} missing arg for pred {p}"),
                        ));
                    }
                }
            }
        }
    }

    // SSA dominance: every operand's definition dominates the use (with the
    // usual phi-edge relaxation), and referenced values are placed and
    // value-producing.
    let dom = DomTree::compute(&cfg);
    // Position index within block for intra-block ordering.
    let mut pos_in_block: HashMap<InstId, usize> = HashMap::new();
    for bb in func.block_ids() {
        for (pos, &i) in func.block(bb).insts.iter().enumerate() {
            pos_in_block.insert(i, pos);
        }
    }
    for bb in func.block_ids() {
        if !cfg.is_reachable(bb) {
            continue;
        }
        for &i in &func.block(bb).insts {
            let kind = &func.inst(i).kind;
            let mut operands: Vec<(Option<BlockId>, Operand)> = Vec::new();
            if let InstKind::Phi { args } = kind {
                for (p, v) in args {
                    operands.push((Some(*p), *v));
                }
            } else {
                kind.for_each_operand(|o| operands.push((None, o)));
            }
            for (via_edge, op) in operands {
                let Operand::Inst(def) = op else { continue };
                if def.index() >= func.insts.len() {
                    return Err(err(func, format!("{i} uses out-of-range value {def}")));
                }
                if !func.inst(def).produces_value() {
                    return Err(err(func, format!("{i} uses non-value {def}")));
                }
                let Some(&def_bb) = placed.get(&def) else {
                    return Err(err(func, format!("{i} uses unplaced value {def}")));
                };
                match via_edge {
                    // Phi operand must dominate the incoming edge's source.
                    Some(pred) => {
                        if !dom.dominates(def_bb, pred) {
                            return Err(err(
                                func,
                                format!("phi {i}: def {def} in {def_bb} does not dominate edge from {pred}"),
                            ));
                        }
                    }
                    None => {
                        if def_bb == bb {
                            if pos_in_block[&def] >= pos_in_block[&i] {
                                return Err(err(
                                    func,
                                    format!("{i} uses {def} before its definition in {bb}"),
                                ));
                            }
                        } else if !dom.dominates(def_bb, bb) {
                            return Err(err(
                                func,
                                format!("{i}: def {def} in {def_bb} does not dominate use in {bb}"),
                            ));
                        }
                    }
                }
            }
        }
    }

    // Type checks.
    for bb in func.block_ids() {
        for &i in &func.block(bb).insts {
            let inst = func.inst(i);
            let op_ty = |o: Operand| -> Option<Ty> {
                match o {
                    Operand::Inst(d) => func.inst(d).ty,
                    Operand::ConstI64(_) => Some(Ty::I64),
                    Operand::ConstF64Bits(_) => Some(Ty::F64),
                }
            };
            match &inst.kind {
                InstKind::Binary { op, lhs, rhs } => {
                    let ty = inst.ty.ok_or_else(|| err(func, format!("{i} untyped")))?;
                    if !op.supports(ty) {
                        return Err(err(func, format!("{i}: {op} unsupported on {ty}")));
                    }
                    for o in [lhs, rhs] {
                        if let Some(t) = op_ty(*o) {
                            if t != ty {
                                return Err(err(
                                    func,
                                    format!("{i}: operand type {t} != result type {ty}"),
                                ));
                            }
                        }
                    }
                }
                InstKind::Unary { op, val } => {
                    let in_ty = op_ty(*val).unwrap_or(Ty::I64);
                    if !op.supports(in_ty) {
                        return Err(err(func, format!("{i}: {op} unsupported on {in_ty}")));
                    }
                    if inst.ty != Some(op.result_ty(in_ty)) {
                        return Err(err(func, format!("{i}: wrong unary result type")));
                    }
                }
                InstKind::Cmp {
                    operand_ty,
                    lhs,
                    rhs,
                    ..
                } => {
                    if inst.ty != Some(Ty::I64) {
                        return Err(err(func, format!("{i}: cmp must produce i64")));
                    }
                    for o in [lhs, rhs] {
                        if let Some(t) = op_ty(*o) {
                            if t != *operand_ty {
                                return Err(err(func, format!("{i}: cmp operand type mismatch")));
                            }
                        }
                    }
                }
                InstKind::Load { addr, .. } => {
                    if op_ty(*addr) != Some(Ty::I64) {
                        return Err(err(func, format!("{i}: load address must be i64")));
                    }
                    if inst.ty.is_none() {
                        return Err(err(func, format!("{i}: load must produce a value")));
                    }
                }
                InstKind::Store { addr, .. } if op_ty(*addr) != Some(Ty::I64) => {
                    return Err(err(func, format!("{i}: store address must be i64")));
                }
                InstKind::Call { callee, args } => {
                    if let Some(m) = module {
                        if callee.index() >= m.funcs.len() {
                            return Err(err(func, format!("{i}: call to unknown {callee}")));
                        }
                        let target = m.func(*callee);
                        if target.params.len() != args.len() {
                            return Err(err(
                                func,
                                format!(
                                    "{i}: call to `{}` with {} args, expected {}",
                                    target.name,
                                    args.len(),
                                    target.params.len()
                                ),
                            ));
                        }
                        if inst.ty != target.ret_ty {
                            return Err(err(func, format!("{i}: call result type mismatch")));
                        }
                    }
                }
                InstKind::Branch { cond, .. } if op_ty(*cond) != Some(Ty::I64) => {
                    return Err(err(func, format!("{i}: branch condition must be i64")));
                }
                InstKind::Ret { val } => match (val, func.ret_ty) {
                    (Some(v), Some(rt)) => {
                        if let Some(t) = op_ty(*v) {
                            if t != rt {
                                return Err(err(func, format!("{i}: return type mismatch")));
                            }
                        }
                    }
                    (None, None) => {}
                    (Some(_), None) => {
                        return Err(err(func, format!("{i}: value returned from void fn")))
                    }
                    (None, Some(_)) => return Err(err(func, format!("{i}: missing return value"))),
                },
                InstKind::RegionBase { region } => {
                    if let Some(m) = module {
                        if !region.is_unknown() && region.index() >= m.globals.len() {
                            return Err(err(func, format!("{i}: unknown region {region}")));
                        }
                    }
                }
                _ => {}
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::inst::Inst;
    use crate::ops::BinOp;

    #[test]
    fn accepts_valid_function() {
        let mut b = FuncBuilder::new("ok", vec![("x".into(), Ty::I64)], Some(Ty::I64));
        let x = b.param(0);
        let y = b.binary(BinOp::Add, x, Operand::const_i64(1));
        b.ret(Some(y));
        assert!(verify_func(&b.finish()).is_ok());
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut f = Function::new("bad", vec![], None);
        f.append_inst(
            f.entry,
            Inst::new(
                InstKind::Copy {
                    val: Operand::const_i64(0),
                },
                Some(Ty::I64),
            ),
        );
        let e = verify_func(&f).unwrap_err();
        assert!(e.message.contains("terminator"), "{e}");
    }

    #[test]
    fn rejects_use_before_def() {
        let mut f = Function::new("ubd", vec![], Some(Ty::I64));
        // v0 = add v1, 1 ; v1 = copy 0 ; ret v0  -- v0 uses v1 before def
        let v0 = f.add_inst(Inst::new(
            InstKind::Binary {
                op: BinOp::Add,
                lhs: Operand::Inst(InstId::new(1)),
                rhs: Operand::const_i64(1),
            },
            Some(Ty::I64),
        ));
        let v1 = f.add_inst(Inst::new(
            InstKind::Copy {
                val: Operand::const_i64(0),
            },
            Some(Ty::I64),
        ));
        let r = f.add_inst(Inst::new(
            InstKind::Ret {
                val: Some(Operand::Inst(v0)),
            },
            None,
        ));
        let entry = f.entry;
        f.block_mut(entry).insts = vec![v0, v1, r];
        let e = verify_func(&f).unwrap_err();
        assert!(e.message.contains("before its definition"), "{e}");
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut b = FuncBuilder::new("ty", vec![("x".into(), Ty::F64)], Some(Ty::F64));
        let x = b.param(0);
        // i64-typed add over an f64 operand
        let y = b.binary_ty(BinOp::Add, Ty::I64, x, Operand::const_i64(1));
        let z = b.unary(crate::ops::UnOp::IntToFloat, y);
        b.ret(Some(z));
        let e = verify_func(&b.finish()).unwrap_err();
        assert!(e.message.contains("operand type"), "{e}");
    }

    #[test]
    fn rejects_bad_phi() {
        let mut b = FuncBuilder::new("phi", vec![("c".into(), Ty::I64)], Some(Ty::I64));
        let c = b.param(0);
        let t = b.add_block();
        let j = b.add_block();
        b.branch(c, t, j);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(j);
        // Phi missing the edge from entry.
        let p = b.phi(Ty::I64, vec![(t, Operand::const_i64(1))]);
        b.ret(Some(p));
        let e = verify_func(&b.finish()).unwrap_err();
        assert!(e.message.contains("missing arg"), "{e}");
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let mut m = Module::new();
        let mut callee = FuncBuilder::new("callee", vec![("a".into(), Ty::I64)], None);
        callee.ret(None);
        let callee_id = m.add_func(callee.finish());
        let mut caller = FuncBuilder::new("caller", vec![], None);
        caller.call(callee_id, vec![], None);
        caller.ret(None);
        m.add_func(caller.finish());
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("args"), "{e}");
    }

    #[test]
    fn rejects_return_mismatch() {
        let mut b = FuncBuilder::new("r", vec![], None);
        b.ret(Some(Operand::const_i64(1)));
        let e = verify_func(&b.finish()).unwrap_err();
        assert!(e.message.contains("void"), "{e}");
    }
}

//! Natural-loop discovery and the loop-nest forest.
//!
//! Loops are the unit of speculative parallelization in the paper: pass 1
//! evaluates *every nesting level* of every loop nest as an SPT candidate, so
//! the forest records parent/child relations and per-loop block membership.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::ids::BlockId;
use crate::module::Function;
use std::collections::HashSet;
use std::fmt;

/// Identifies a loop within a [`LoopForest`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopId(pub u32);

impl LoopId {
    /// Creates a loop id from a raw index.
    pub fn new(index: usize) -> Self {
        LoopId(index as u32)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loop{}", self.0)
    }
}

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loop{}", self.0)
    }
}

/// A natural loop.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The loop header (target of the back edge(s); dominates all blocks in
    /// the loop).
    pub header: BlockId,
    /// Source blocks of back edges (`latch -> header`).
    pub latches: Vec<BlockId>,
    /// All blocks in the loop, header first; the rest in discovery order.
    pub blocks: Vec<BlockId>,
    /// Parent loop in the nest, if any.
    pub parent: Option<LoopId>,
    /// Immediate child loops.
    pub children: Vec<LoopId>,
    /// Nesting depth (outermost = 1).
    pub depth: usize,
}

impl Loop {
    /// Returns `true` if `bb` belongs to the loop.
    pub fn contains(&self, bb: BlockId) -> bool {
        self.blocks.contains(&bb)
    }

    /// Blocks outside the loop that are targets of edges leaving the loop.
    pub fn exit_targets(&self, cfg: &Cfg) -> Vec<BlockId> {
        let inside: HashSet<BlockId> = self.blocks.iter().copied().collect();
        let mut out = Vec::new();
        for &bb in &self.blocks {
            for &s in cfg.succs(bb) {
                if !inside.contains(&s) && !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        out
    }

    /// Blocks inside the loop with an edge leaving the loop.
    pub fn exiting_blocks(&self, cfg: &Cfg) -> Vec<BlockId> {
        let inside: HashSet<BlockId> = self.blocks.iter().copied().collect();
        let mut out = Vec::new();
        for &bb in &self.blocks {
            if cfg.succs(bb).iter().any(|s| !inside.contains(s)) && !out.contains(&bb) {
                out.push(bb);
            }
        }
        out
    }

    /// The unique block outside the loop that jumps to the header, if there
    /// is exactly one (the preheader).
    pub fn preheader(&self, cfg: &Cfg) -> Option<BlockId> {
        let inside: HashSet<BlockId> = self.blocks.iter().copied().collect();
        let outside_preds: Vec<BlockId> = cfg
            .preds(self.header)
            .iter()
            .copied()
            .filter(|p| !inside.contains(p))
            .collect();
        match outside_preds.as_slice() {
            [single] => {
                // A true preheader has the header as its only successor.
                if cfg.succs(*single) == [self.header] {
                    Some(*single)
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

/// All natural loops of a function, with nesting structure.
#[derive(Clone, Debug, Default)]
pub struct LoopForest {
    /// Loop arena indexed by [`LoopId`].
    pub loops: Vec<Loop>,
    /// Innermost loop containing each block (`None` if not in any loop).
    pub block_loop: Vec<Option<LoopId>>,
}

impl LoopForest {
    /// Discovers all natural loops of `func`.
    ///
    /// Irreducible control flow (a cycle whose entry does not dominate its
    /// other blocks) produces no loop entry, matching the paper's restriction
    /// to well-structured loops.
    pub fn compute(func: &Function, cfg: &Cfg, dom: &DomTree) -> Self {
        // Find back edges: bb -> header where header dominates bb.
        let mut headers: Vec<BlockId> = Vec::new();
        let mut back_edges: Vec<(BlockId, BlockId)> = Vec::new();
        for &bb in &cfg.rpo {
            for &s in cfg.succs(bb) {
                if dom.dominates(s, bb) {
                    back_edges.push((bb, s));
                    if !headers.contains(&s) {
                        headers.push(s);
                    }
                }
            }
        }
        // Deterministic order: headers by RPO, so outer loops (earlier
        // headers) get smaller ids only coincidentally; nesting is computed
        // explicitly below.
        headers.sort_by_key(|h| cfg.rpo_index[h.index()]);

        let mut loops: Vec<Loop> = Vec::new();
        for &header in &headers {
            let latches: Vec<BlockId> = back_edges
                .iter()
                .filter(|(_, h)| *h == header)
                .map(|(l, _)| *l)
                .collect();
            // Standard natural-loop body computation: walk predecessors
            // backwards from each latch until the header.
            let mut body: Vec<BlockId> = vec![header];
            let mut seen: HashSet<BlockId> = body.iter().copied().collect();
            let mut stack: Vec<BlockId> = Vec::new();
            for &l in &latches {
                if seen.insert(l) {
                    body.push(l);
                    stack.push(l);
                } else if l == header {
                    // self-loop; nothing further to walk
                }
            }
            while let Some(bb) = stack.pop() {
                for &p in cfg.preds(bb) {
                    if cfg.is_reachable(p) && seen.insert(p) {
                        body.push(p);
                        stack.push(p);
                    }
                }
            }
            loops.push(Loop {
                header,
                latches,
                blocks: body,
                parent: None,
                children: Vec::new(),
                depth: 0,
            });
        }

        // Nesting: loop A is an ancestor of loop B iff A contains B's header
        // and A != B. The parent is the smallest such container.
        let n = loops.len();
        for i in 0..n {
            let mut best: Option<(usize, usize)> = None; // (loop index, size)
            for j in 0..n {
                if i == j {
                    continue;
                }
                if loops[j].contains(loops[i].header) && loops[j].header != loops[i].header {
                    let size = loops[j].blocks.len();
                    if best.is_none_or(|(_, bs)| size < bs) {
                        best = Some((j, size));
                    }
                }
            }
            if let Some((j, _)) = best {
                loops[i].parent = Some(LoopId::new(j));
            }
        }
        for i in 0..n {
            if let Some(p) = loops[i].parent {
                let child = LoopId::new(i);
                loops[p.index()].children.push(child);
            }
        }
        // Depths.
        for i in 0..n {
            let mut depth = 1;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                depth += 1;
                cur = loops[p.index()].parent;
            }
            loops[i].depth = depth;
        }

        // Innermost loop per block: the containing loop with the greatest
        // depth.
        let mut block_loop: Vec<Option<LoopId>> = vec![None; func.blocks.len()];
        for (i, l) in loops.iter().enumerate() {
            for &bb in &l.blocks {
                let cur = block_loop[bb.index()];
                let replace = match cur {
                    None => true,
                    Some(c) => loops[c.index()].depth < l.depth,
                };
                if replace {
                    block_loop[bb.index()] = Some(LoopId::new(i));
                }
            }
        }

        LoopForest { loops, block_loop }
    }

    /// Borrow a loop.
    pub fn get(&self, id: LoopId) -> &Loop {
        &self.loops[id.index()]
    }

    /// Iterates over all loop ids.
    pub fn ids(&self) -> impl Iterator<Item = LoopId> + '_ {
        (0..self.loops.len()).map(LoopId::new)
    }

    /// Number of loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// Returns `true` if the function has no loops.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// The innermost loop containing `bb`, if any.
    pub fn innermost(&self, bb: BlockId) -> Option<LoopId> {
        self.block_loop.get(bb.index()).copied().flatten()
    }

    /// Loop ids ordered innermost-first (children before parents).
    pub fn inner_to_outer(&self) -> Vec<LoopId> {
        let mut ids: Vec<LoopId> = self.ids().collect();
        ids.sort_by_key(|l| std::cmp::Reverse(self.get(*l).depth));
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::types::Ty;

    /// Builds a double nest:
    /// entry -> oh; oh -> ob|oexit; ob -> ih; ih -> ib|olatch; ib -> ih; olatch -> oh
    fn nest() -> (Function, BlockId, BlockId) {
        let mut b = FuncBuilder::new("n", vec![("c".into(), Ty::I64)], None);
        let c = b.param(0);
        let oh = b.add_block();
        let ob = b.add_block();
        let ih = b.add_block();
        let ib = b.add_block();
        let olatch = b.add_block();
        let oexit = b.add_block();
        b.jump(oh);
        b.switch_to(oh);
        b.branch(c, ob, oexit);
        b.switch_to(ob);
        b.jump(ih);
        b.switch_to(ih);
        b.branch(c, ib, olatch);
        b.switch_to(ib);
        b.jump(ih);
        b.switch_to(olatch);
        b.jump(oh);
        b.switch_to(oexit);
        b.ret(None);
        (b.finish(), oh, ih)
    }

    #[test]
    fn finds_nested_loops() {
        let (f, oh, ih) = nest();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&cfg);
        let forest = LoopForest::compute(&f, &cfg, &dom);
        assert_eq!(forest.len(), 2);

        let outer = forest
            .ids()
            .find(|&l| forest.get(l).header == oh)
            .expect("outer loop");
        let inner = forest
            .ids()
            .find(|&l| forest.get(l).header == ih)
            .expect("inner loop");
        assert_eq!(forest.get(outer).depth, 1);
        assert_eq!(forest.get(inner).depth, 2);
        assert_eq!(forest.get(inner).parent, Some(outer));
        assert!(forest.get(outer).children.contains(&inner));
        assert!(forest.get(outer).contains(ih));
        assert!(!forest.get(inner).contains(oh));
    }

    #[test]
    fn innermost_lookup() {
        let (f, oh, ih) = nest();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&cfg);
        let forest = LoopForest::compute(&f, &cfg, &dom);
        let inner = forest.innermost(ih).unwrap();
        assert_eq!(forest.get(inner).header, ih);
        let outer = forest.innermost(oh).unwrap();
        assert_eq!(forest.get(outer).header, oh);
        assert_eq!(forest.innermost(f.entry), None);
    }

    #[test]
    fn exits_and_preheader() {
        let (f, oh, _) = nest();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&cfg);
        let forest = LoopForest::compute(&f, &cfg, &dom);
        let outer = forest.ids().find(|&l| forest.get(l).header == oh).unwrap();
        let l = forest.get(outer);
        assert_eq!(l.exit_targets(&cfg).len(), 1);
        assert_eq!(l.exiting_blocks(&cfg), vec![oh]);
        assert_eq!(l.preheader(&cfg), Some(f.entry));
        assert_eq!(l.latches.len(), 1);
    }

    #[test]
    fn inner_to_outer_order() {
        let (f, _, _) = nest();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&cfg);
        let forest = LoopForest::compute(&f, &cfg, &dom);
        let order = forest.inner_to_outer();
        assert_eq!(forest.get(order[0]).depth, 2);
        assert_eq!(forest.get(order[1]).depth, 1);
    }

    #[test]
    fn self_loop() {
        let mut b = FuncBuilder::new("s", vec![("c".into(), Ty::I64)], None);
        let c = b.param(0);
        let h = b.add_block();
        let exit = b.add_block();
        b.jump(h);
        b.switch_to(h);
        b.branch(c, h, exit);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&cfg);
        let forest = LoopForest::compute(&f, &cfg, &dom);
        assert_eq!(forest.len(), 1);
        let l = forest.get(LoopId::new(0));
        assert_eq!(l.blocks, vec![h]);
        assert_eq!(l.latches, vec![h]);
    }
}

//! Functions, blocks, globals and modules.

use crate::ids::{BlockId, FuncId, InstId, RegionId};
use crate::inst::{Inst, InstKind, Operand};
use crate::types::Ty;
use std::collections::HashMap;

/// A basic block: an ordered list of instruction ids ending in a terminator.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Block {
    /// Instructions in execution order. The final instruction must be a
    /// terminator once the function is complete.
    pub insts: Vec<InstId>,
}

impl Block {
    /// Creates an empty block.
    pub fn new() -> Self {
        Block::default()
    }
}

/// A function: an instruction arena plus a CFG of basic blocks.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// Function name (unique within the module).
    pub name: String,
    /// Parameter names and types.
    pub params: Vec<(String, Ty)>,
    /// Return type, if any.
    pub ret_ty: Option<Ty>,
    /// Instruction arena indexed by [`InstId`].
    pub insts: Vec<Inst>,
    /// Block arena indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// Entry block.
    pub entry: BlockId,
    /// Number of frontend variable slots (pre-SSA only; informational after
    /// `mem2reg`).
    pub num_vars: usize,
}

impl Function {
    /// Creates an empty function with a single (empty) entry block.
    pub fn new(name: impl Into<String>, params: Vec<(String, Ty)>, ret_ty: Option<Ty>) -> Self {
        Function {
            name: name.into(),
            params,
            ret_ty,
            insts: Vec::new(),
            blocks: vec![Block::new()],
            entry: BlockId::new(0),
            num_vars: 0,
        }
    }

    /// Borrow an instruction.
    #[inline]
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.index()]
    }

    /// Mutably borrow an instruction.
    #[inline]
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        &mut self.insts[id.index()]
    }

    /// Borrow a block.
    #[inline]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutably borrow a block.
    #[inline]
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Appends a new empty block and returns its id.
    pub fn add_block(&mut self) -> BlockId {
        let id = BlockId::new(self.blocks.len());
        self.blocks.push(Block::new());
        id
    }

    /// Adds an instruction to the arena (not yet placed in a block).
    pub fn add_inst(&mut self, inst: Inst) -> InstId {
        let id = InstId::new(self.insts.len());
        self.insts.push(inst);
        id
    }

    /// Adds an instruction to the arena and appends it to `block`.
    pub fn append_inst(&mut self, block: BlockId, inst: Inst) -> InstId {
        let id = self.add_inst(inst);
        self.blocks[block.index()].insts.push(id);
        id
    }

    /// Iterates over all block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len()).map(BlockId::new)
    }

    /// The terminator instruction id of a block, if the block is non-empty
    /// and properly terminated.
    pub fn terminator(&self, block: BlockId) -> Option<InstId> {
        let last = *self.block(block).insts.last()?;
        if self.inst(last).kind.is_terminator() {
            Some(last)
        } else {
            None
        }
    }

    /// Successor blocks of `block` (empty for `ret`-terminated blocks).
    pub fn successors(&self, block: BlockId) -> Vec<BlockId> {
        let mut out = Vec::new();
        if let Some(term) = self.terminator(block) {
            match &self.inst(term).kind {
                InstKind::Jump { target } => out.push(*target),
                InstKind::Branch {
                    then_bb, else_bb, ..
                } => {
                    out.push(*then_bb);
                    if then_bb != else_bb {
                        out.push(*else_bb);
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Total number of instructions placed in blocks.
    pub fn placed_inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Maps each placed instruction to its containing block.
    pub fn inst_blocks(&self) -> HashMap<InstId, BlockId> {
        let mut map = HashMap::new();
        for bb in self.block_ids() {
            for &i in &self.block(bb).insts {
                map.insert(i, bb);
            }
        }
        map
    }

    /// The ids of the `Param` instructions, in parameter order.
    pub fn param_insts(&self) -> Vec<InstId> {
        let mut params = vec![None; self.params.len()];
        for &i in &self.block(self.entry).insts {
            if let InstKind::Param { index } = self.inst(i).kind {
                params[index] = Some(i);
            }
        }
        params.into_iter().flatten().collect()
    }

    /// A content hash of this function alone (FNV-1a over its canonical
    /// `Debug` rendering): two functions hash equal exactly when they are
    /// structurally equal. This is the Merkle *leaf* of
    /// [`Module::content_hash`] and the key half of every function-granular
    /// cache entry — editing one function changes only its own leaf.
    pub fn content_hash(&self) -> u64 {
        fnv_debug_hash(self)
    }
}

/// A module-level memory region: a global scalar cell or array.
///
/// All globals live in one flat cell-addressed memory; a global occupies
/// `size` consecutive cells starting at a base assigned at layout time.
#[derive(Clone, Debug, PartialEq)]
pub struct Global {
    /// Global name (unique within the module).
    pub name: String,
    /// Number of 8-byte cells.
    pub size: usize,
    /// Element type stored in the region.
    pub elem_ty: Ty,
    /// Optional initial cell values (raw bits); zero-filled when `None` or
    /// shorter than `size`.
    pub init: Option<Vec<u64>>,
}

/// Conservative memory-effect summary of a function, used when analyzing
/// calls inside candidate loops. The paper observes (Fig. 19 discussion) that
/// calls which "modify and use some global variables unknown to the caller"
/// are the main source of cost-model inaccuracy; this summary is how the
/// compiler approximates callee effects.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EffectSummary {
    /// The callee (or its transitive callees) may read global memory.
    pub reads_memory: bool,
    /// The callee (or its transitive callees) may write global memory.
    pub writes_memory: bool,
}

impl EffectSummary {
    /// A pure summary: no memory effects.
    pub const PURE: EffectSummary = EffectSummary {
        reads_memory: false,
        writes_memory: false,
    };

    /// Returns `true` when the function has no memory effects at all.
    pub fn is_pure(self) -> bool {
        !self.reads_memory && !self.writes_memory
    }
}

/// A compilation unit: functions plus global memory regions.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Module {
    /// Function arena indexed by [`FuncId`].
    pub funcs: Vec<Function>,
    /// Global/region arena indexed by [`RegionId`].
    pub globals: Vec<Global>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Adds a function, returning its id.
    pub fn add_func(&mut self, func: Function) -> FuncId {
        let id = FuncId::new(self.funcs.len());
        self.funcs.push(func);
        id
    }

    /// Adds a zero-initialized global region, returning its id.
    pub fn add_global(&mut self, name: impl Into<String>, size: usize, elem_ty: Ty) -> RegionId {
        let id = RegionId::new(self.globals.len());
        self.globals.push(Global {
            name: name.into(),
            size,
            elem_ty,
            init: None,
        });
        id
    }

    /// Borrow a function.
    #[inline]
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Mutably borrow a function.
    #[inline]
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// Looks a function up by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(FuncId::new)
    }

    /// Looks a global up by name.
    pub fn global_by_name(&self, name: &str) -> Option<RegionId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(RegionId::new)
    }

    /// Iterates over all function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> + '_ {
        (0..self.funcs.len()).map(FuncId::new)
    }

    /// Assigns each global a base cell address (in arena order) and returns
    /// the bases plus the total memory size in cells.
    pub fn memory_layout(&self) -> (Vec<usize>, usize) {
        let mut bases = Vec::with_capacity(self.globals.len());
        let mut next = 0usize;
        for g in &self.globals {
            bases.push(next);
            next += g.size;
        }
        (bases, next)
    }

    /// Computes a conservative memory-effect summary for every function by a
    /// fixed-point walk over the call graph.
    pub fn effect_summaries(&self) -> Vec<EffectSummary> {
        let mut summaries = vec![EffectSummary::PURE; self.funcs.len()];
        // Local effects first.
        for (fi, func) in self.funcs.iter().enumerate() {
            for bb in func.block_ids() {
                for &i in &func.block(bb).insts {
                    match &func.inst(i).kind {
                        InstKind::Load { .. } => summaries[fi].reads_memory = true,
                        InstKind::Store { .. } => summaries[fi].writes_memory = true,
                        _ => {}
                    }
                }
            }
        }
        // Propagate through calls until fixed point.
        let mut changed = true;
        while changed {
            changed = false;
            for fi in 0..self.funcs.len() {
                let func = &self.funcs[fi];
                let mut acc = summaries[fi];
                for bb in func.block_ids() {
                    for &i in &func.block(bb).insts {
                        if let InstKind::Call { callee, .. } = &func.inst(i).kind {
                            let callee_sum = summaries[callee.index()];
                            acc.reads_memory |= callee_sum.reads_memory;
                            acc.writes_memory |= callee_sum.writes_memory;
                        }
                    }
                }
                if acc != summaries[fi] {
                    summaries[fi] = acc;
                    changed = true;
                }
            }
        }
        summaries
    }

    /// A content hash of the whole module: a Merkle root folding every
    /// function's [`Function::content_hash`] (in index order) with a hash of
    /// the globals table. Two modules hash equal exactly when they are
    /// structurally equal, and — the property the incremental pipeline
    /// relies on — editing one function perturbs only that function's leaf
    /// hash, so per-function cache keys derived from the leaves survive the
    /// edit while the root (and every whole-module artifact key) changes.
    pub fn content_hash(&self) -> u64 {
        let mut h = FnvHasher::new();
        h.write_u64(self.funcs.len() as u64);
        for func in &self.funcs {
            h.write_u64(func.content_hash());
        }
        h.write_u64(fnv_debug_hash(&self.globals));
        h.0
    }
}

/// The same incremental FNV-1a fold the trace codec uses, exposed here as a
/// `fmt::Write` sink so content hashing never materialises the `Debug`
/// rendering it consumes.
struct FnvHasher(u64);

impl FnvHasher {
    fn new() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, v: u64) {
        use std::fmt::Write as _;
        let _ = write!(self, "{v:016x}");
    }
}

impl std::fmt::Write for FnvHasher {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for b in s.bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
        Ok(())
    }
}

/// FNV-1a over a value's `Debug` rendering, streamed (never allocated).
fn fnv_debug_hash<T: std::fmt::Debug + ?Sized>(v: &T) -> u64 {
    use std::fmt::Write as _;
    let mut h = FnvHasher::new();
    let _ = write!(h, "{v:?}");
    h.0
}

/// Convenience helper: an operand referring to instruction `id`.
pub fn val(id: InstId) -> Operand {
    Operand::Inst(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::ops::BinOp;

    #[test]
    fn content_hash_tracks_structure() {
        let mut m1 = Module::new();
        m1.add_global("g", 4, Ty::I64);
        let mut m2 = m1.clone();
        assert_eq!(m1.content_hash(), m2.content_hash());
        m2.add_global("h", 1, Ty::I64);
        assert_ne!(m1.content_hash(), m2.content_hash());
        m1.add_global("h", 2, Ty::I64);
        assert_ne!(m1.content_hash(), m2.content_hash());
    }

    #[test]
    fn function_hash_is_a_merkle_leaf() {
        let mut m = Module::new();
        m.add_func(Function::new("a", vec![], None));
        m.add_func(Function::new("b", vec![], None));
        let before_root = m.content_hash();
        let before_leaves: Vec<u64> = m.funcs.iter().map(Function::content_hash).collect();

        // Editing one function changes its leaf and the root, but no other
        // leaf — the property per-function cache keys rely on.
        let fb = m.func_by_name("b").unwrap();
        let bb = m.func_mut(fb).add_block();
        m.func_mut(fb)
            .append_inst(bb, Inst::new(InstKind::Ret { val: None }, None));
        let after_leaves: Vec<u64> = m.funcs.iter().map(Function::content_hash).collect();
        assert_ne!(m.content_hash(), before_root);
        assert_eq!(after_leaves[0], before_leaves[0]);
        assert_ne!(after_leaves[1], before_leaves[1]);

        // Structurally equal functions hash equal regardless of the module
        // around them.
        let solo = Function::new("a", vec![], None);
        assert_eq!(solo.content_hash(), after_leaves[0]);
    }

    #[test]
    fn function_arena_basics() {
        let mut f = Function::new("f", vec![], None);
        let bb = f.add_block();
        assert_eq!(bb, BlockId::new(1));
        let id = f.append_inst(f.entry, Inst::new(InstKind::Jump { target: bb }, None));
        assert_eq!(f.terminator(f.entry), Some(id));
        assert_eq!(f.successors(f.entry), vec![bb]);
        assert_eq!(f.placed_inst_count(), 1);
    }

    #[test]
    fn successors_dedup_same_target_branch() {
        let mut f = Function::new("f", vec![], None);
        let bb = f.add_block();
        f.append_inst(
            f.entry,
            Inst::new(
                InstKind::Branch {
                    cond: Operand::const_i64(1),
                    then_bb: bb,
                    else_bb: bb,
                },
                None,
            ),
        );
        assert_eq!(f.successors(f.entry), vec![bb]);
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new();
        let g = m.add_global("table", 16, Ty::I64);
        let f = m.add_func(Function::new("main", vec![], None));
        assert_eq!(m.func_by_name("main"), Some(f));
        assert_eq!(m.global_by_name("table"), Some(g));
        assert_eq!(m.func_by_name("nope"), None);
        let (bases, total) = m.memory_layout();
        assert_eq!(bases, vec![0]);
        assert_eq!(total, 16);
    }

    #[test]
    fn memory_layout_is_contiguous() {
        let mut m = Module::new();
        m.add_global("a", 4, Ty::I64);
        m.add_global("b", 8, Ty::F64);
        m.add_global("c", 1, Ty::I64);
        let (bases, total) = m.memory_layout();
        assert_eq!(bases, vec![0, 4, 12]);
        assert_eq!(total, 13);
    }

    #[test]
    fn effect_summaries_propagate_through_calls() {
        let mut m = Module::new();
        let g = m.add_global("g", 1, Ty::I64);

        // leaf: writes memory
        let mut leaf = FuncBuilder::new("leaf", vec![], None);
        let base = leaf.region_base(g);
        leaf.store(base, Operand::const_i64(1), g);
        leaf.ret(None);
        let leaf_id = m.add_func(leaf.finish());

        // mid: calls leaf
        let mut mid = FuncBuilder::new("mid", vec![], None);
        mid.call(leaf_id, vec![], None);
        mid.ret(None);
        let mid_id = m.add_func(mid.finish());

        // pure
        let mut pure = FuncBuilder::new("pure", vec![("x".into(), Ty::I64)], Some(Ty::I64));
        let x = pure.param(0);
        let y = pure.binary(BinOp::Add, x, Operand::const_i64(1));
        pure.ret(Some(y));
        let pure_id = m.add_func(pure.finish());

        let sums = m.effect_summaries();
        assert!(sums[leaf_id.index()].writes_memory);
        assert!(sums[mid_id.index()].writes_memory);
        assert!(sums[pure_id.index()].is_pure());
    }
}
